//! Differential fuzzing subsystem: oracle-vs-compiler equivalence over a
//! configuration matrix, with divergence minimization and a committed
//! regression corpus.
//!
//! The pieces, in pipeline order:
//!
//! * [`generate`] — deterministic, seedable pattern and input generation
//!   covering the full supported grammar plus adversarial shapes;
//! * [`harness`] — the equivalence matrix: reference Pike VM × compiled
//!   programs at `O0`/`O2` × interpreter × cycle-level simulator over
//!   `CC_ID` 1–3 organizations × parallel batch execution at 1/2/4
//!   workers;
//! * [`shrink`] — greedy delta debugging that reduces a failing
//!   `(pattern, inputs)` pair to a minimal reproducer;
//! * [`corpus`] — the committed TOML regression corpus, replayed as a
//!   normal `cargo test` (see `tests/corpus_replay.rs`).
//!
//! The [`fuzz`] entry point ties them together and is what the
//! `cicero difftest` subcommand invokes.

pub mod corpus;
pub mod generate;
pub mod harness;
pub mod shrink;

use cicero_telemetry::Telemetry;

pub use corpus::{default_corpus_dir, load_dir, CorpusCase};
pub use generate::Generator;
pub use harness::{check_all, check_batch, check_case, Divergence, Outcome, PatternUnderTest};
pub use shrink::{shrink, Shrunk};

/// Options for one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Base seed; the whole run is a pure function of
    /// `(seed, iters, jobs)`.
    pub seed: u64,
    /// Number of generated patterns (each checked against its full input
    /// set and the batch-determinism cells).
    pub iters: usize,
    /// Worker threads; `0` means all host cores.
    pub jobs: usize,
    /// Telemetry sink for `difftest.*` counters.
    pub telemetry: Option<Telemetry>,
}

impl FuzzOptions {
    /// A single-threaded run with the given seed and iteration count.
    pub fn new(seed: u64, iters: usize) -> FuzzOptions {
        FuzzOptions { seed, iters, jobs: 1, telemetry: None }
    }
}

/// One minimized divergence found by [`fuzz`].
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// The first disagreeing cell, as found (pre-minimization).
    pub divergence: Divergence,
    /// The generated pattern that exposed it.
    pub pattern: String,
    /// The generated input set that exposed it.
    pub inputs: Vec<Vec<u8>>,
    /// The minimized reproducer.
    pub shrunk: Shrunk,
    /// The disagreeing cell of the *minimized* reproducer (minimization
    /// keeps "some cell diverges", not necessarily the same cell).
    pub shrunk_divergence: Divergence,
}

impl DivergenceReport {
    /// Convert to a corpus entry named `name`.
    pub fn to_corpus_case(&self, name: &str) -> CorpusCase {
        CorpusCase {
            name: name.to_owned(),
            pattern: self.shrunk.pattern.clone(),
            inputs: self.shrunk.inputs.clone(),
            kind: "divergence".to_owned(),
            note: format!(
                "minimized from {:?}; diverged at {}",
                self.pattern, self.shrunk_divergence
            ),
        }
    }
}

/// Aggregate results of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Patterns generated and checked.
    pub patterns: usize,
    /// `(pattern, input)` cases checked across the matrix.
    pub cases: usize,
    /// Patterns skipped (capacity limits — never divergences).
    pub skipped: usize,
    /// Shrink steps spent minimizing, summed over all divergences.
    pub shrink_steps: usize,
    /// Every divergence found, minimized.
    pub divergences: Vec<DivergenceReport>,
}

impl FuzzReport {
    fn merge(&mut self, other: FuzzReport) {
        self.patterns += other.patterns;
        self.cases += other.cases;
        self.skipped += other.skipped;
        self.shrink_steps += other.shrink_steps;
        self.divergences.extend(other.divergences);
    }
}

/// The failure predicate used for minimization: *any* cell diverges.
///
/// Minimization deliberately does not pin the original cell — a smaller
/// reproducer that trips a different cell is still a compiler bug, and
/// chasing "the same cell" makes shrinking much weaker (classic ddmin
/// practice).
pub fn still_diverges(pattern: &str, inputs: &[Vec<u8>]) -> bool {
    check_all(pattern, inputs).diverged()
}

fn fuzz_worker(seed: u64, iters: usize) -> FuzzReport {
    let mut generator = Generator::new(seed);
    let mut report = FuzzReport::default();
    for _ in 0..iters {
        let (pattern, ast) = generator.pattern();
        let inputs = generator.inputs(&ast);
        report.patterns += 1;
        report.cases += inputs.len();
        match check_all(&pattern, &inputs) {
            Outcome::Pass => {}
            Outcome::Skip(_) => report.skipped += 1,
            Outcome::Diverged(divergence) => {
                let shrunk = shrink(&pattern, &inputs, &still_diverges);
                let shrunk_divergence = match check_all(&shrunk.pattern, &shrunk.inputs) {
                    Outcome::Diverged(d) => d,
                    // Unreachable by construction (shrink preserves the
                    // predicate), but stay total.
                    _ => divergence.clone(),
                };
                report.shrink_steps += shrunk.steps;
                report.divergences.push(DivergenceReport {
                    divergence,
                    pattern,
                    inputs,
                    shrunk,
                    shrunk_divergence,
                });
            }
        }
    }
    report
}

/// Mix a worker index into the base seed (SplitMix64 increment) so
/// workers explore disjoint pattern streams.
fn worker_seed(base: u64, worker: u64) -> u64 {
    base ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(worker)
}

/// Run the differential fuzzer.
///
/// Iterations are split across `jobs` workers, each with a seed derived
/// from `options.seed` and its worker index, so the run is reproducible
/// for a fixed `(seed, iters, jobs)` triple.
pub fn fuzz(options: &FuzzOptions) -> FuzzReport {
    let jobs = match options.jobs {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(options.iters.max(1));

    let mut report = FuzzReport::default();
    if jobs <= 1 {
        report = fuzz_worker(options.seed, options.iters);
    } else {
        let per = options.iters / jobs;
        let extra = options.iters % jobs;
        let partials = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    let iters = per + usize::from(w < extra);
                    let seed = worker_seed(options.seed, w as u64);
                    scope.spawn(move || fuzz_worker(seed, iters))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("fuzz worker panicked")).collect::<Vec<_>>()
        });
        for partial in partials {
            report.merge(partial);
        }
    }

    if let Some(telemetry) = &options.telemetry {
        telemetry.counter_add("difftest.patterns", report.patterns as u64);
        telemetry.counter_add("difftest.cases", report.cases as u64);
        telemetry.counter_add("difftest.skipped", report.skipped as u64);
        telemetry.counter_add("difftest.divergences", report.divergences.len() as u64);
        telemetry.counter_add("difftest.shrink_steps", report.shrink_steps as u64);
    }
    report
}

/// Replay every corpus case in `dir` through the full matrix, returning
/// each case with its outcome.
///
/// # Errors
///
/// Returns corpus I/O or parse errors; divergences are reported in the
/// outcomes, not as errors.
pub fn replay_corpus(dir: &std::path::Path) -> Result<Vec<(CorpusCase, Outcome)>, String> {
    let cases = corpus::load_dir(dir)?;
    Ok(cases
        .into_iter()
        .map(|case| {
            let outcome = check_all(&case.pattern, &case.inputs);
            (case, outcome)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_run_is_deterministic() {
        let a = fuzz(&FuzzOptions::new(7, 20));
        let b = fuzz(&FuzzOptions::new(7, 20));
        assert_eq!(a.patterns, 20);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.divergences.len(), b.divergences.len());
    }

    #[test]
    fn a_short_run_finds_no_divergences() {
        let report = fuzz(&FuzzOptions::new(42, 60));
        assert!(
            report.divergences.is_empty(),
            "unexpected divergences: {:?}",
            report
                .divergences
                .iter()
                .map(|d| (&d.shrunk.pattern, &d.shrunk_divergence))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.patterns, 60);
        assert!(report.cases >= 60, "each pattern contributes at least one input");
    }

    #[test]
    fn workers_split_the_iteration_budget() {
        let report = fuzz(&FuzzOptions { seed: 3, iters: 10, jobs: 4, telemetry: None });
        assert_eq!(report.patterns, 10);
    }

    #[test]
    fn telemetry_counters_are_exported() {
        let telemetry = Telemetry::new();
        let report =
            fuzz(&FuzzOptions { seed: 11, iters: 15, jobs: 1, telemetry: Some(telemetry.clone()) });
        assert_eq!(telemetry.counter("difftest.patterns"), 15);
        assert_eq!(telemetry.counter("difftest.cases"), report.cases as u64);
        assert_eq!(telemetry.counter("difftest.divergences"), 0);
    }

    /// End-to-end fault injection: emulate a miscompile (the "compiler"
    /// silently rewrites every `b` to `c`) and check the pipeline catches
    /// it and minimizes the reproducer to the acceptance bound of the
    /// differential-fuzzing issue (<= 20 chars of pattern + input).
    #[test]
    fn an_injected_miscompile_is_caught_and_minimized() {
        fn buggy_check(pattern: &str, inputs: &[Vec<u8>]) -> bool {
            let Ok(oracle) = regex_oracle::Oracle::new(pattern) else {
                return false;
            };
            let mangled = pattern.replace('b', "c");
            let Ok(compiled) = cicero_core::compile(&mangled) else {
                return false;
            };
            let program = compiled.into_program();
            inputs
                .iter()
                .any(|input| cicero_isa::run(&program, input).accepted != oracle.is_match(input))
        }

        let pattern = "x+(ab|cd)y{1,3}|qq*";
        let inputs: Vec<Vec<u8>> =
            vec![b"unrelated noise".to_vec(), b"zz xxabyy zz".to_vec(), b"xcdy".to_vec()];
        assert!(buggy_check(pattern, &inputs), "the injected fault must be visible");
        let shrunk = shrink(pattern, &inputs, &buggy_check);
        assert!(buggy_check(&shrunk.pattern, &shrunk.inputs));
        assert!(
            shrunk.size() <= 20,
            "expected <= 20 chars of pattern + input, got {:?} / {:?}",
            shrunk.pattern,
            shrunk.inputs
        );
    }

    #[test]
    fn worker_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..16).map(|w| worker_seed(42, w)).collect();
        assert_eq!(seeds.len(), 16);
    }
}
