//! End-to-end reproduction of *"Combining MLIR Dialects with
//! Domain-Specific Architecture for Efficient Regular Expression
//! Matching"* (CGO 2025): a multi-dialect regex compiler built on an
//! MLIR-like infrastructure, the legacy single-IR compiler it is compared
//! against, and a cycle-level simulator of both Cicero architecture
//! organizations.
//!
//! This facade crate re-exports the whole workspace; see the individual
//! crates for the full APIs:
//!
//! * [`mlir`] — the MLIR-like IR infrastructure (ops, dialects, passes);
//! * [`frontend`] — regex parsing to an AST;
//! * [`regex_dialect`] — the high-level dialect and its transformations;
//! * [`cicero_dialect`] — the low-level dialect, Jump Simplification,
//!   codegen;
//! * [`compiler`] — the new multi-dialect compiler driver;
//! * [`legacy`] — the old single-IR compiler with Code Restructuring;
//! * [`isa`] — the Cicero ISA, encoding, interpreter, `D_offset` metric;
//! * [`hostexec`] — the host-native backend: lowering from the ISA to a
//!   bit-parallel NFA engine (with a lazy-DFA tier and a literal
//!   prefilter) that executes on the host CPU instead of the simulator;
//! * [`sim`] — the cycle-level DSA simulator with power/resource models;
//! * [`runtime`] — the parallel batch-matching runtime: worker pool over
//!   the simulator fronted by an LRU compiled-program cache;
//! * [`server`] — the std-only HTTP/1.1 match-serving subsystem over the
//!   runtime: admission control, per-request budgets, graceful draining;
//! * [`telemetry`] — spans, metrics, and summary/JSON-lines sinks shared
//!   by the compiler, simulator, CLI, and benchmark drivers;
//! * [`tune`] — the autotuner: seeded search over pass orderings and
//!   architecture/runtime parameters, persisting winners to `tune.toml`;
//! * [`oracle`] — the reference Pike-VM matcher (ground truth);
//! * [`difftest`] — the differential fuzzing subsystem: oracle-vs-compiler
//!   equivalence over a configuration matrix, divergence minimization, and
//!   the committed regression corpus;
//! * [`workloads`] — Protomata/Brill-style benchmark generators.
//!
//! # Quick start
//!
//! ```
//! use cicero::prelude::*;
//!
//! // Compile a pattern with the multi-dialect compiler…
//! let compiled = Compiler::new().compile("th(is|at|ose)")?;
//!
//! // …execute it functionally…
//! assert!(cicero::isa::accepts(compiled.program(), b"take that!"));
//!
//! // …or cycle-accurately on the proposed 16-core engine.
//! let report = simulate(compiled.program(), b"take that!", &ArchConfig::new_organization(16, 1));
//! assert!(report.accepted);
//! # Ok::<(), cicero::compiler::CompileError>(())
//! ```

pub use cicero_core as compiler;
pub use cicero_dialect;
pub use cicero_difftest as difftest;
pub use cicero_hostexec as hostexec;
pub use cicero_isa as isa;
pub use cicero_legacy as legacy;
pub use cicero_runtime as runtime;
pub use cicero_server as server;
pub use cicero_sim as sim;
pub use cicero_telemetry as telemetry;
pub use cicero_tune as tune;
pub use mlir_lite as mlir;
pub use regex_dialect;
pub use regex_frontend as frontend;
pub use regex_oracle as oracle;
pub use workloads;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use cicero_core::{compile, Backend, Compiler, CompilerOptions};
    pub use cicero_hostexec::{HostOutcome, HostProgram};
    pub use cicero_isa::{Instruction, Program};
    pub use cicero_legacy::LegacyCompiler;
    pub use cicero_runtime::{
        Budget, BudgetKind, MatchOutcome, Runtime, RuntimeOptions, StreamError, StreamOptions,
        StreamReport,
    };
    pub use cicero_server::{DrainReport, Server, ServerHandle, ServerOptions};
    pub use cicero_sim::{
        simulate, simulate_batch, simulate_batch_parallel, simulate_with_telemetry, ArchConfig,
    };
    pub use cicero_telemetry::Telemetry;
    pub use regex_oracle::Oracle;
}
