//! Deep-packet-inspection scenario: a Snort/Suricata-style signature set
//! scanned over synthetic network payloads, comparing architecture
//! configurations — the paper's motivating use case ("SmartNIC for DPI,
//! where saving precious CPU cores for central tasks … is paramount").
//!
//! ```sh
//! cargo run --release --example deep_packet_inspection
//! ```

use cicero::prelude::*;

/// A small IDS-style rule set (inspired by public Snort community rules).
const SIGNATURES: &[(&str, &str)] = &[
    ("http-methods", "(GET|POST|HEAD|PUT) /"),
    ("dir-traversal", r"\.\./\.\./"),
    ("shellcode-nop-sled", "\\x90{8,}"),
    ("sql-injection", "(union|UNION).(select|SELECT)"),
    ("exe-download", r"\.(exe|dll|scr)"),
    ("suspicious-ua", "User.Agent: (curl|python|nikto)"),
    ("base64-blob", "[A-Za-z0-9+/]{32,}={0,2}"),
    ("cmd-injection", "(;|&&)\\s*(cat|rm|wget)\\s"),
];

fn synth_payload(seed: u64, len: usize, plant: Option<&[u8]>) -> Vec<u8> {
    // Simple xorshift byte stream biased towards printable ASCII.
    let mut state = seed | 1;
    let mut payload: Vec<u8> = (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 94 + 32) as u8
        })
        .collect();
    if let Some(plant) = plant {
        let at = len / 3;
        payload[at..at + plant.len()].copy_from_slice(plant);
    }
    payload
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("compiling {} signatures…", SIGNATURES.len());
    let compiler = Compiler::new();
    let compiled: Vec<(&str, Program)> = SIGNATURES
        .iter()
        .map(|(name, pattern)| {
            let program = compiler.compile(pattern)?.into_program();
            Ok::<_, cicero::compiler::CompileError>((*name, program))
        })
        .collect::<Result<_, _>>()?;
    for (name, program) in &compiled {
        println!(
            "  {name:<20} {:>3} instructions, D_offset {}",
            program.len(),
            program.total_jump_offset()
        );
    }

    // Build a packet stream: mostly clean, a few with planted attacks.
    let packets: Vec<(Vec<u8>, &str)> = vec![
        (synth_payload(1, 500, Some(b"GET /index.html HTTP/1.1")), "http-methods"),
        (synth_payload(2, 500, None), "-"),
        (synth_payload(3, 500, Some(b"../../../../etc/passwd")), "dir-traversal"),
        (synth_payload(4, 500, Some(b"UNION SELECT password FROM users")), "sql-injection"),
        (synth_payload(5, 500, None), "-"),
        (synth_payload(6, 500, Some(b"User-Agent: curl/8.1")), "suspicious-ua"),
    ];

    // Scan on both organizations and compare.
    for config in [ArchConfig::old_organization(9), ArchConfig::new_organization(16, 1)] {
        let watts = cicero::sim::power_watts(&config);
        let mut total_cycles = 0u64;
        let mut alerts = 0usize;
        for (payload, _) in &packets {
            for (_, program) in &compiled {
                let report = simulate(program, payload, &config);
                total_cycles += report.cycles;
                alerts += usize::from(report.accepted);
            }
        }
        let us = total_cycles as f64 / config.clock_mhz();
        println!(
            "\n{}: {} signature checks, {} alerts, {:.1} us total, {:.1} W·µs",
            config.name(),
            packets.len() * compiled.len(),
            alerts,
            us,
            us * watts,
        );
    }

    // Single-pass multi-matching (the Future Work ISA extension): all
    // signatures compiled into ONE program; the engine reports which rule
    // fired via AcceptPartialId.
    let set = Compiler::new()
        .compile_set(&SIGNATURES.iter().map(|(_, p)| *p).collect::<Vec<_>>())
        .expect("signature set compiles");
    println!(
        "\nsingle-pass set: {} instructions total (vs {} summed individually)",
        set.program().len(),
        compiled.iter().map(|(_, p)| p.len()).sum::<usize>()
    );
    let config = ArchConfig::new_organization(16, 1);
    let mut set_cycles = 0u64;
    for (payload, expected) in &packets {
        let report = simulate(set.program(), payload, &config);
        set_cycles += report.cycles;
        let fired = report.matched_id.map(|id| SIGNATURES[usize::from(id)].0);
        println!("  one-pass scan -> {:<18} (expected {expected})", fired.unwrap_or("-"));
        if *expected != "-" {
            assert!(report.accepted, "multi-match missed {expected}");
        }
    }
    println!("  one-pass total: {:.1} us", set_cycles as f64 / config.clock_mhz());

    // Sanity: planted packets alert on the right signature.
    let config = ArchConfig::new_organization(16, 1);
    println!();
    for (payload, expected) in &packets {
        let hits: Vec<&str> = compiled
            .iter()
            .filter(|(_, program)| simulate(program, payload, &config).accepted)
            .map(|(name, _)| *name)
            .collect();
        println!("packet expecting [{expected}] alerted: {hits:?}");
        if *expected != "-" {
            assert!(hits.contains(expected), "missed planted attack {expected}");
        }
    }
    Ok(())
}
