//! Divergence minimization: greedy delta debugging over the pattern AST
//! and the input set.
//!
//! The shrinker never interprets the failure itself — it is handed a
//! `still_fails` predicate (in production: "does [`check_all`] still
//! diverge?") and keeps the smallest reproducer that satisfies it.
//! Pattern candidates are *single AST edits* (drop an alternative, drop a
//! piece, unwrap a group, relax a quantifier, strip an anchor), so every
//! candidate is grammatical by construction; input candidates drop whole
//! inputs, chunks, or single bytes.
//!
//! Termination is by a strictly decreasing integer score (rendered
//! pattern length + total input bytes + input count): a candidate is only
//! accepted if it both still fails *and* lowers the score, so the loop
//! can run at most `score` iterations.
//!
//! [`check_all`]: crate::harness::check_all

use regex_frontend::{Alternation, Atom, Concatenation, Piece, Quantifier, RegexAst};

/// Predicate deciding whether a candidate reproducer still exhibits the
/// failure under minimization.
pub type StillFails<'a> = &'a dyn Fn(&str, &[Vec<u8>]) -> bool;

/// A minimized reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shrunk {
    /// The minimized pattern.
    pub pattern: String,
    /// The minimized input set.
    pub inputs: Vec<Vec<u8>>,
    /// Number of accepted shrink steps.
    pub steps: usize,
}

impl Shrunk {
    /// The reproducer's size: pattern chars + input bytes.
    pub fn size(&self) -> usize {
        self.pattern.len() + self.inputs.iter().map(Vec::len).sum::<usize>()
    }
}

fn score(pattern: &str, inputs: &[Vec<u8>]) -> usize {
    pattern.len() + inputs.iter().map(Vec::len).sum::<usize>() + inputs.len()
}

/// Greedily minimize `(pattern, inputs)` while `still_fails` holds.
///
/// The initial reproducer is assumed to fail; if it does not, it is
/// returned unchanged with zero steps.
pub fn shrink(pattern: &str, inputs: &[Vec<u8>], still_fails: StillFails<'_>) -> Shrunk {
    let mut pattern = pattern.to_owned();
    let mut inputs = inputs.to_vec();
    let mut steps = 0usize;
    loop {
        let current = score(&pattern, &inputs);
        let mut improved = false;

        if let Ok(ast) = regex_frontend::parse(&pattern) {
            for variant in ast_variants(&ast) {
                let candidate = variant.to_pattern();
                if score(&candidate, &inputs) < current
                    && regex_frontend::parse(&candidate).is_ok()
                    && still_fails(&candidate, &inputs)
                {
                    pattern = candidate;
                    steps += 1;
                    improved = true;
                    break;
                }
            }
        }
        if improved {
            continue;
        }

        let current = score(&pattern, &inputs);
        for candidate in input_set_variants(&inputs) {
            if score(&pattern, &candidate) < current && still_fails(&pattern, &candidate) {
                inputs = candidate;
                steps += 1;
                improved = true;
                break;
            }
        }
        if !improved {
            return Shrunk { pattern, inputs, steps };
        }
    }
}

/// Predicate for minimizing stream-axis failures: does the candidate
/// `(pattern, inputs)` still fail when streamed at the candidate splits?
pub type StillFailsStreamed<'a> = &'a dyn Fn(&str, &[Vec<u8>], &[usize]) -> bool;

/// A minimized streamed reproducer: [`Shrunk`] plus the minimized split
/// vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrunkStreamed {
    /// The minimized pattern and inputs.
    pub shrunk: Shrunk,
    /// The minimized chunk-split points.
    pub splits: Vec<usize>,
}

/// Minimize a stream-axis failure: alternate [`shrink`] passes over the
/// pattern and inputs (with the splits held fixed) with greedy passes
/// that drop split points (with the pattern and inputs held fixed), until
/// neither makes progress.
///
/// Termination: every accepted candidate strictly shrinks either the
/// `(pattern, inputs)` score or the split count, and neither pass ever
/// grows the other's quantity.
pub fn shrink_streamed(
    pattern: &str,
    inputs: &[Vec<u8>],
    splits: &[usize],
    still_fails: StillFailsStreamed<'_>,
) -> ShrunkStreamed {
    let mut pattern = pattern.to_owned();
    let mut inputs = inputs.to_vec();
    let mut splits = splits.to_vec();
    let mut steps = 0usize;
    loop {
        let fixed = splits.clone();
        let pass = shrink(&pattern, &inputs, &|p, i| still_fails(p, i, &fixed));
        let improved_case = pass.steps > 0;
        steps += pass.steps;
        pattern = pass.pattern;
        inputs = pass.inputs;

        let mut improved_splits = false;
        'splits: loop {
            for i in 0..splits.len() {
                let mut candidate = splits.clone();
                candidate.remove(i);
                if still_fails(&pattern, &inputs, &candidate) {
                    splits = candidate;
                    steps += 1;
                    improved_splits = true;
                    continue 'splits;
                }
            }
            break;
        }
        if !improved_case && !improved_splits {
            return ShrunkStreamed { shrunk: Shrunk { pattern, inputs, steps }, splits };
        }
    }
}

// ---------------------------------------------------------------------------
// Pattern variants: one AST edit each.
// ---------------------------------------------------------------------------

fn ast_variants(ast: &RegexAst) -> Vec<RegexAst> {
    let mut out = Vec::new();
    if !ast.has_prefix {
        out.push(RegexAst { has_prefix: true, ..ast.clone() });
    }
    if !ast.has_suffix {
        out.push(RegexAst { has_suffix: true, ..ast.clone() });
    }
    for alt in alternation_variants(&ast.alternation) {
        out.push(RegexAst { alternation: alt, ..ast.clone() });
    }
    out
}

fn alternation_variants(alt: &Alternation) -> Vec<Alternation> {
    let mut out = Vec::new();
    if alt.alternatives.len() > 1 {
        for i in 0..alt.alternatives.len() {
            let mut v = alt.clone();
            v.alternatives.remove(i);
            out.push(v);
        }
    }
    for (i, concat) in alt.alternatives.iter().enumerate() {
        for cv in concatenation_variants(concat) {
            let mut v = alt.clone();
            v.alternatives[i] = cv;
            out.push(v);
        }
    }
    out
}

fn concatenation_variants(concat: &Concatenation) -> Vec<Concatenation> {
    let mut out = Vec::new();
    for i in 0..concat.pieces.len() {
        let mut v = concat.clone();
        v.pieces.remove(i);
        out.push(v);
    }
    for (i, piece) in concat.pieces.iter().enumerate() {
        for pv in piece_variants(piece) {
            let mut v = concat.clone();
            v.pieces[i] = pv;
            out.push(v);
        }
    }
    out
}

fn piece_variants(piece: &Piece) -> Vec<Piece> {
    let mut out = Vec::new();
    if let Some(q) = piece.quantifier {
        out.push(Piece { quantifier: None, ..piece.clone() });
        if q.max.is_none() {
            // Bound the repetition: `a{2,}` → `a{2,2}`, `a*` → `a?`.
            let cap = q.min.max(1);
            out.push(Piece {
                quantifier: Some(Quantifier::range(q.min, Some(cap))),
                ..piece.clone()
            });
        } else if let Some(max) = q.max {
            if max > q.min {
                out.push(Piece {
                    quantifier: Some(Quantifier::range(q.min, Some(q.min.max(1)))),
                    ..piece.clone()
                });
            }
        }
        if q.min > 1 {
            out.push(Piece { quantifier: Some(Quantifier::range(1, q.max)), ..piece.clone() });
        }
    }
    match &piece.atom {
        Atom::Group(alt) => {
            // Unwrap a trivial group: `(x)` → `x` (keeping the quantifier
            // only when the inner piece has none).
            if alt.alternatives.len() == 1 && alt.alternatives[0].pieces.len() == 1 {
                let inner = &alt.alternatives[0].pieces[0];
                if piece.quantifier.is_none() {
                    out.push(inner.clone());
                } else if inner.quantifier.is_none() {
                    out.push(Piece {
                        atom: inner.atom.clone(),
                        quantifier: piece.quantifier,
                        span: piece.span,
                    });
                }
            }
            for av in alternation_variants(alt) {
                out.push(Piece { atom: Atom::Group(Box::new(av)), ..piece.clone() });
            }
        }
        // Collapse a class to one of its members (or, when negated, to one
        // byte it rejects as a literal probe of the complement lowering).
        Atom::Class { negated, set } => {
            let member = if *negated { set.complement() } else { set.clone() };
            let first = member.iter().next();
            if let Some(b) = first {
                out.push(Piece { atom: Atom::Char(b), ..piece.clone() });
            }
        }
        Atom::Any => {
            out.push(Piece { atom: Atom::Char(b'a'), ..piece.clone() });
        }
        Atom::Char(c) if !c.is_ascii_graphic() => {
            // `\xff` renders as four chars; `a` as one.
            out.push(Piece { atom: Atom::Char(b'a'), ..piece.clone() });
        }
        Atom::Char(_) => {}
    }
    out
}

// ---------------------------------------------------------------------------
// Input variants.
// ---------------------------------------------------------------------------

fn input_set_variants(inputs: &[Vec<u8>]) -> Vec<Vec<Vec<u8>>> {
    let mut out = Vec::new();
    for i in 0..inputs.len() {
        let mut v = inputs.to_vec();
        v.remove(i);
        out.push(v);
    }
    for (i, input) in inputs.iter().enumerate() {
        for reduced in byte_variants(input) {
            let mut v = inputs.to_vec();
            v[i] = reduced;
            out.push(v);
        }
    }
    out
}

fn byte_variants(input: &[u8]) -> Vec<Vec<u8>> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    out.push(input[..n / 2].to_vec());
    out.push(input[n / 2..].to_vec());
    let chunk = (n / 4).max(1);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        let mut v = Vec::with_capacity(n - (end - start));
        v.extend_from_slice(&input[..start]);
        v.extend_from_slice(&input[end..]);
        out.push(v);
        start = end;
    }
    if n <= 24 {
        for i in 0..n {
            let mut v = input.to_vec();
            v.remove(i);
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "bug": fails whenever the pattern contains a literal
    /// `b` and some input contains `0xff`.
    fn synthetic_bug(pattern: &str, inputs: &[Vec<u8>]) -> bool {
        pattern.contains('b') && inputs.iter().any(|i| i.contains(&0xff))
    }

    #[test]
    fn shrinks_a_synthetic_bug_to_its_essence() {
        let pattern = "x(a?|a*)y|ab{2,5}c|[^q]+";
        let inputs: Vec<Vec<u8>> = vec![
            b"irrelevant noise".to_vec(),
            [b"padding ".as_slice(), &[0xff], b" more padding"].concat(),
            vec![b'z'; 40],
        ];
        assert!(synthetic_bug(pattern, &inputs));
        let shrunk = shrink(pattern, &inputs, &synthetic_bug);
        assert!(synthetic_bug(&shrunk.pattern, &shrunk.inputs), "shrinker lost the failure");
        assert!(
            shrunk.size() <= 3,
            "expected an essentially minimal reproducer, got {:?} / {:?}",
            shrunk.pattern,
            shrunk.inputs
        );
        assert!(shrunk.steps > 0);
    }

    #[test]
    fn a_minimal_reproducer_is_a_fixed_point() {
        let shrunk = shrink("b", &[vec![0xff]], &synthetic_bug);
        assert_eq!(shrunk.pattern, "b");
        assert_eq!(shrunk.inputs, vec![vec![0xff]]);
        assert_eq!(shrunk.steps, 0);
    }

    #[test]
    fn a_passing_case_is_returned_unchanged() {
        let always_passes = |_: &str, _: &[Vec<u8>]| false;
        let shrunk = shrink("a+b", &[b"aab".to_vec()], &always_passes);
        assert_eq!(shrunk.pattern, "a+b");
        assert_eq!(shrunk.steps, 0);
    }

    #[test]
    fn shrink_streamed_minimizes_the_split_vector_too() {
        // Synthetic stream-axis bug: needs a `b` in the pattern, a 0xff
        // byte in some input, and at least one split point to fire.
        fn streamed_bug(pattern: &str, inputs: &[Vec<u8>], splits: &[usize]) -> bool {
            pattern.contains('b') && inputs.iter().any(|i| i.contains(&0xff)) && !splits.is_empty()
        }

        let pattern = "ab{2,5}c|[^q]+";
        let inputs: Vec<Vec<u8>> =
            vec![b"noise".to_vec(), [b"pad ".as_slice(), &[0xff], b" pad"].concat()];
        let splits = vec![1, 3, 5, 7];
        assert!(streamed_bug(pattern, &inputs, &splits));
        let minimized = shrink_streamed(pattern, &inputs, &splits, &streamed_bug);
        assert!(
            streamed_bug(&minimized.shrunk.pattern, &minimized.shrunk.inputs, &minimized.splits),
            "shrinker lost the failure"
        );
        assert_eq!(minimized.splits.len(), 1, "splits not minimized: {:?}", minimized.splits);
        assert!(minimized.shrunk.size() <= 3, "{:?}", minimized.shrunk);
        assert!(minimized.shrunk.steps > 0);
    }

    #[test]
    fn shrink_streamed_drops_all_splits_when_they_are_irrelevant() {
        let splitless_bug = |pattern: &str, _: &[Vec<u8>], _: &[usize]| pattern.contains('b');
        let minimized = shrink_streamed("ab", &[b"x".to_vec()], &[1, 2], &splitless_bug);
        assert_eq!(minimized.splits, Vec::<usize>::new());
    }

    #[test]
    fn every_pattern_variant_reparses() {
        for pattern in ["x(a?|a*)y", "^a{2,5}(b|[^cd])*$", "(ab(c|d)){1,3}e?", "\\xff[a-c]+"] {
            let ast = regex_frontend::parse(pattern).unwrap();
            for variant in ast_variants(&ast) {
                let rendered = variant.to_pattern();
                assert!(
                    regex_frontend::parse(&rendered).is_ok(),
                    "variant {rendered:?} of {pattern:?} does not reparse"
                );
            }
        }
    }
}
