//! Operation definitions and verifiers for the `regex` dialect.

use mlir_lite::{AttrKind, AttrSpec, Attribute, Dialect, OpDefinition, Operation, RegionCount};

/// Fully-qualified operation names.
pub mod names {
    /// Top-level operation: the whole RE pattern.
    pub const ROOT: &str = "regex.root";
    /// One alternative of an alternation (siblings are `|`-separated).
    pub const CONCATENATION: &str = "regex.concatenation";
    /// Atom + optional quantifier wrapper.
    pub const PIECE: &str = "regex.piece";
    /// Repetition bounds for the piece's atom.
    pub const QUANTIFIER: &str = "regex.quantifier";
    /// Match one specific character.
    pub const MATCH_CHAR: &str = "regex.match_char";
    /// Match any character.
    pub const MATCH_ANY_CHAR: &str = "regex.match_any_char";
    /// Match any character in a 256-entry bitmap.
    pub const GROUP: &str = "regex.group";
    /// A parenthesized sub-expression.
    pub const SUB_REGEX: &str = "regex.sub_regex";
    /// Match the end of the input.
    pub const DOLLAR: &str = "regex.dollar";
}

/// Attribute keys used by the dialect.
pub mod attrs {
    /// `regex.root`: implicit `.*` before the pattern.
    pub const HAS_PREFIX: &str = "has_prefix";
    /// `regex.root`: implicit `.*` after the pattern.
    pub const HAS_SUFFIX: &str = "has_suffix";
    /// `regex.quantifier`: minimum repetitions (≥ 0).
    pub const MIN: &str = "min";
    /// `regex.quantifier`: maximum repetitions, or −1 for unbounded.
    pub const MAX: &str = "max";
    /// `regex.match_char`: the character to match.
    pub const TARGET_CHAR: &str = "target_char";
    /// `regex.group`: the 256-entry acceptance bitmap.
    pub const TARGET_CHARS: &str = "target_chars";
}

/// The names of atom operations (valid as the first op of a piece).
pub const ATOM_OPS: [&str; 5] =
    [names::MATCH_CHAR, names::MATCH_ANY_CHAR, names::GROUP, names::SUB_REGEX, names::DOLLAR];

/// Whether `op` is an atom operation.
pub fn is_atom(op: &Operation) -> bool {
    ATOM_OPS.contains(&op.name().as_str())
}

/// Build the `regex` dialect with all op definitions and verifiers.
pub fn dialect() -> Dialect {
    let mut d = Dialect::new("regex");
    d.register_op(OpDefinition {
        name: "root",
        attrs: vec![
            AttrSpec::required(attrs::HAS_PREFIX, AttrKind::Bool),
            AttrSpec::required(attrs::HAS_SUFFIX, AttrKind::Bool),
        ],
        regions: RegionCount::Exact(1),
        verifier: Some(verify_alternation_container),
    });
    d.register_op(OpDefinition {
        name: "concatenation",
        attrs: vec![],
        regions: RegionCount::Exact(1),
        verifier: Some(verify_concatenation),
    });
    d.register_op(OpDefinition {
        name: "piece",
        attrs: vec![],
        regions: RegionCount::Exact(1),
        verifier: Some(verify_piece),
    });
    d.register_op(OpDefinition {
        name: "quantifier",
        attrs: vec![
            AttrSpec::required(attrs::MIN, AttrKind::Int),
            AttrSpec::required(attrs::MAX, AttrKind::Int),
        ],
        regions: RegionCount::Exact(0),
        verifier: Some(verify_quantifier),
    });
    d.register_op(OpDefinition {
        name: "match_char",
        attrs: vec![AttrSpec::required(attrs::TARGET_CHAR, AttrKind::Char)],
        regions: RegionCount::Exact(0),
        verifier: None,
    });
    d.register_op(OpDefinition::simple("match_any_char", 0));
    d.register_op(OpDefinition {
        name: "group",
        attrs: vec![AttrSpec::required(attrs::TARGET_CHARS, AttrKind::BoolArray)],
        regions: RegionCount::Exact(0),
        verifier: Some(verify_group),
    });
    d.register_op(OpDefinition {
        name: "sub_regex",
        attrs: vec![],
        regions: RegionCount::Exact(1),
        verifier: Some(verify_alternation_container),
    });
    d.register_op(OpDefinition::simple("dollar", 0));
    d
}

/// `regex.root` / `regex.sub_regex`: region children are concatenations.
fn verify_alternation_container(op: &Operation) -> Result<(), String> {
    for child in &op.only_region().ops {
        if !child.is(names::CONCATENATION) {
            return Err(format!(
                "children must be {}, found {}",
                names::CONCATENATION,
                child.name()
            ));
        }
    }
    if op.only_region().is_empty() {
        return Err("must contain at least one alternative".to_owned());
    }
    Ok(())
}

/// `regex.concatenation`: region children are pieces.
fn verify_concatenation(op: &Operation) -> Result<(), String> {
    for child in &op.only_region().ops {
        if !child.is(names::PIECE) {
            return Err(format!("children must be {}, found {}", names::PIECE, child.name()));
        }
    }
    Ok(())
}

/// `regex.piece`: exactly one atom, optionally followed by one quantifier.
fn verify_piece(op: &Operation) -> Result<(), String> {
    let ops = &op.only_region().ops;
    match ops.as_slice() {
        [atom] if is_atom(atom) => Ok(()),
        [atom, quant] if is_atom(atom) && quant.is(names::QUANTIFIER) => {
            if atom.is(names::DOLLAR) {
                Err("`regex.dollar` cannot be quantified".to_owned())
            } else {
                Ok(())
            }
        }
        [] => Err("piece is empty; expected an atom".to_owned()),
        [first, ..] if !is_atom(first) => {
            Err(format!("first op of a piece must be an atom, found {}", first.name()))
        }
        _ => Err("piece must be exactly [atom] or [atom, quantifier]".to_owned()),
    }
}

/// `regex.quantifier`: bounds sanity.
fn verify_quantifier(op: &Operation) -> Result<(), String> {
    let min = op.attr(attrs::MIN).and_then(Attribute::as_int).expect("declared attr");
    let max = op.attr(attrs::MAX).and_then(Attribute::as_int).expect("declared attr");
    if min < 0 {
        return Err(format!("min must be >= 0, got {min}"));
    }
    if max != -1 && max < min {
        return Err(format!("max ({max}) must be -1 or >= min ({min})"));
    }
    if max == 0 {
        return Err("max of 0 matches nothing".to_owned());
    }
    Ok(())
}

/// `regex.group`: bitmap must be 256 entries with at least one set.
fn verify_group(op: &Operation) -> Result<(), String> {
    let bits =
        op.attr(attrs::TARGET_CHARS).and_then(Attribute::as_bool_array).expect("declared attr");
    if bits.len() != 256 {
        return Err(format!("target_chars must have 256 entries, got {}", bits.len()));
    }
    if bits.iter().all(|b| !*b) {
        return Err("group accepts no character".to_owned());
    }
    Ok(())
}

// ---- construction helpers -------------------------------------------------

use mlir_lite::Region;

/// Build `regex.match_char`.
pub fn match_char(c: u8) -> Operation {
    Operation::new(names::MATCH_CHAR).with_attr(attrs::TARGET_CHAR, Attribute::Char(c))
}

/// Build `regex.match_any_char`.
pub fn match_any_char() -> Operation {
    Operation::new(names::MATCH_ANY_CHAR)
}

/// Build `regex.group` from a 256-entry bitmap.
pub fn group(bits: Vec<bool>) -> Operation {
    Operation::new(names::GROUP).with_attr(attrs::TARGET_CHARS, bits)
}

/// Build `regex.quantifier`; `max = None` means unbounded.
pub fn quantifier(min: u32, max: Option<u32>) -> Operation {
    Operation::new(names::QUANTIFIER)
        .with_attr(attrs::MIN, i64::from(min))
        .with_attr(attrs::MAX, max.map_or(-1i64, i64::from))
}

/// Build `regex.piece` from an atom and an optional quantifier.
pub fn piece(atom: Operation, quant: Option<Operation>) -> Operation {
    let mut ops = vec![atom];
    ops.extend(quant);
    Operation::new(names::PIECE).with_region(Region::with_ops(ops))
}

/// Build `regex.concatenation` from pieces.
pub fn concatenation(pieces: Vec<Operation>) -> Operation {
    Operation::new(names::CONCATENATION).with_region(Region::with_ops(pieces))
}

/// Build `regex.sub_regex` from alternatives (concatenations).
pub fn sub_regex(alternatives: Vec<Operation>) -> Operation {
    Operation::new(names::SUB_REGEX).with_region(Region::with_ops(alternatives))
}

/// Build `regex.root` from alternatives (concatenations).
pub fn root(has_prefix: bool, has_suffix: bool, alternatives: Vec<Operation>) -> Operation {
    Operation::new(names::ROOT)
        .with_attr(attrs::HAS_PREFIX, has_prefix)
        .with_attr(attrs::HAS_SUFFIX, has_suffix)
        .with_region(Region::with_ops(alternatives))
}

/// Read a quantifier op's `(min, max)` bounds; `max = None` is unbounded.
///
/// # Panics
///
/// Panics if `op` is not a verified `regex.quantifier`.
pub fn quantifier_bounds(op: &Operation) -> (u32, Option<u32>) {
    assert!(op.is(names::QUANTIFIER), "expected quantifier, got {}", op.name());
    let min = op.attr(attrs::MIN).and_then(Attribute::as_int).expect("verified");
    let max = op.attr(attrs::MAX).and_then(Attribute::as_int).expect("verified");
    (min as u32, if max == -1 { None } else { Some(max as u32) })
}

/// Split a verified piece region into `(atom, Option<quantifier>)`.
///
/// # Panics
///
/// Panics if `op` is not a verified `regex.piece`.
pub fn piece_parts(op: &Operation) -> (&Operation, Option<&Operation>) {
    assert!(op.is(names::PIECE), "expected piece, got {}", op.name());
    let ops = &op.only_region().ops;
    match ops.as_slice() {
        [atom] => (atom, None),
        [atom, quant] => (atom, Some(quant)),
        other => panic!("malformed piece with {} ops", other.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_lite::Context;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register_dialect(dialect());
        c
    }

    fn simple_root() -> Operation {
        root(
            true,
            true,
            vec![concatenation(vec![
                piece(match_char(b'a'), None),
                piece(match_char(b'b'), Some(quantifier(1, None))),
            ])],
        )
    }

    #[test]
    fn well_formed_ir_verifies() {
        ctx().verify(&simple_root()).unwrap();
    }

    #[test]
    fn root_requires_concatenation_children() {
        let bad = root(true, true, vec![piece(match_char(b'a'), None)]);
        let err = ctx().verify(&bad).unwrap_err();
        assert!(err.message.contains("must be regex.concatenation"), "{err}");
    }

    #[test]
    fn root_requires_an_alternative() {
        let bad = root(true, true, vec![]);
        let err = ctx().verify(&bad).unwrap_err();
        assert!(err.message.contains("at least one alternative"), "{err}");
    }

    #[test]
    fn piece_structure_is_enforced() {
        let bad =
            Operation::new(names::PIECE).with_region(Region::with_ops(vec![quantifier(1, None)]));
        let err = ctx().verify(&bad).unwrap_err();
        assert!(err.message.contains("must be an atom"), "{err}");

        let bad = Operation::new(names::PIECE)
            .with_region(Region::with_ops(vec![match_char(b'a'), match_char(b'b')]));
        let err = ctx().verify(&bad).unwrap_err();
        assert!(err.message.contains("[atom, quantifier]"), "{err}");
    }

    #[test]
    fn dollar_cannot_be_quantified() {
        let bad = root(
            true,
            false,
            vec![concatenation(vec![piece(
                Operation::new(names::DOLLAR),
                Some(quantifier(0, Some(1))),
            )])],
        );
        let err = ctx().verify(&bad).unwrap_err();
        assert!(err.message.contains("cannot be quantified"), "{err}");
    }

    #[test]
    fn quantifier_bounds_validated() {
        for (min, max, needle) in
            [(-1i64, 1i64, "min must be"), (3, 2, "must be -1 or >="), (0, 0, "matches nothing")]
        {
            let q = Operation::new(names::QUANTIFIER)
                .with_attr(attrs::MIN, min)
                .with_attr(attrs::MAX, max);
            let bad = root(true, true, vec![concatenation(vec![piece(match_char(b'a'), Some(q))])]);
            let err = ctx().verify(&bad).unwrap_err();
            assert!(err.message.contains(needle), "{err}");
        }
    }

    #[test]
    fn group_bitmap_validated() {
        let bad = root(true, true, vec![concatenation(vec![piece(group(vec![true; 8]), None)])]);
        let err = ctx().verify(&bad).unwrap_err();
        assert!(err.message.contains("256 entries"), "{err}");

        let bad = root(true, true, vec![concatenation(vec![piece(group(vec![false; 256]), None)])]);
        let err = ctx().verify(&bad).unwrap_err();
        assert!(err.message.contains("no character"), "{err}");
    }

    #[test]
    fn accessors() {
        let q = quantifier(3, Some(6));
        assert_eq!(quantifier_bounds(&q), (3, Some(6)));
        let q = quantifier(1, None);
        assert_eq!(quantifier_bounds(&q), (1, None));

        let p = piece(match_char(b'x'), Some(quantifier(2, Some(2))));
        let (atom, quant) = piece_parts(&p);
        assert!(atom.is(names::MATCH_CHAR));
        assert!(quant.is_some());
    }
}
