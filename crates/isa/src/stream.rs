//! Resumable interpreter: the reference semantics of [`interp::run`]
//! split at chunk boundaries.
//!
//! [`StreamMatcher`] carries the breadth-first frontier (the live thread
//! set at the current input position) across calls to [`StreamMatcher::feed`],
//! so an input of unbounded size can be matched one chunk at a time while
//! holding only `O(program)` state. The contract is *chunk-split
//! invariance*:
//!
//! ```
//! use cicero_isa::{Instruction, Program, StreamMatcher};
//!
//! let program = Program::from_instructions(vec![
//!     Instruction::Match(b'a'),
//!     Instruction::Match(b'b'),
//!     Instruction::Accept,
//! ])?;
//! let mut matcher = StreamMatcher::new(&program);
//! matcher.feed(b"a");
//! matcher.feed(b"b");
//! let streamed = matcher.finish();
//! assert_eq!(streamed, cicero_isa::run(&program, b"ab"));
//! # Ok::<(), cicero_isa::ProgramError>(())
//! ```
//!
//! The outcome — including the `instructions_executed` work metric — is
//! byte-identical to the whole-input run for *every* split of the input,
//! because the per-position drain order, deduplication, and early-exit
//! conditions are the same; the only difference is where the loop over
//! positions pauses. This is deliberately a second implementation rather
//! than a refactor of [`interp::run`] so the differential tests compare
//! two independently written paths.
//!
//! [`interp::run`]: crate::interp::run

use crate::instruction::Instruction;
use crate::interp::ExecOutcome;
use crate::program::Program;

/// A resumable breadth-first Thompson matcher.
///
/// Lifecycle: [`feed`] any number of chunks (each returns the final
/// outcome early if the match concluded mid-chunk), then [`finish`] to
/// apply end-of-input semantics. Feeding after conclusion is a no-op that
/// re-reports the outcome, so pipelines need not special-case early
/// acceptance.
///
/// [`feed`]: StreamMatcher::feed
/// [`finish`]: StreamMatcher::finish
#[derive(Debug, Clone)]
pub struct StreamMatcher<'p> {
    program: &'p Program,
    /// Live PCs at the current position, in discovery order.
    current: Vec<u16>,
    /// PCs scheduled for the next position.
    next: Vec<u16>,
    /// Dedup filter: whether a PC is already in `current`.
    in_current: Vec<bool>,
    /// Dedup filter for `next`.
    in_next: Vec<bool>,
    /// Absolute input position of the `current` frontier.
    position: usize,
    /// Instructions executed so far, across all threads.
    executed: u64,
    /// The concluded outcome, once the run ends (accept or dead frontier).
    done: Option<ExecOutcome>,
}

impl<'p> StreamMatcher<'p> {
    /// Start a match at position 0 with a single thread at PC 0.
    pub fn new(program: &'p Program) -> StreamMatcher<'p> {
        let mut matcher = StreamMatcher {
            program,
            current: Vec::with_capacity(program.len()),
            next: Vec::with_capacity(program.len()),
            in_current: vec![false; program.len()],
            in_next: vec![false; program.len()],
            position: 0,
            executed: 0,
            done: None,
        };
        matcher.push_current(0);
        matcher
    }

    /// Absolute input position of the live frontier (bytes consumed).
    pub fn position(&self) -> usize {
        self.position
    }

    /// Whether the run has concluded (no more input can change the verdict).
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }

    /// Consume one chunk. Returns `Some(outcome)` as soon as the run
    /// concludes (acceptance, or every thread died); `None` means the
    /// matcher suspended at the chunk boundary and wants more input.
    pub fn feed(&mut self, chunk: &[u8]) -> Option<ExecOutcome> {
        if self.done.is_some() {
            return self.done;
        }
        for &byte in chunk {
            if let Some(outcome) = self.advance(Some(byte)) {
                self.done = Some(outcome);
                return self.done;
            }
        }
        None
    }

    /// Signal end of input and return the final outcome.
    ///
    /// Idempotent: calling again (or after [`feed`](StreamMatcher::feed)
    /// already concluded) re-reports the same outcome.
    pub fn finish(&mut self) -> ExecOutcome {
        if let Some(outcome) = self.done {
            return outcome;
        }
        let outcome = self.advance(None).expect("end of input always concludes the run");
        self.done = Some(outcome);
        outcome
    }

    /// Process exactly one input position (`ch == None` is end of input).
    /// Returns the final outcome if the run concluded here.
    fn advance(&mut self, ch: Option<u8>) -> Option<ExecOutcome> {
        // Drain the current frontier; Split/Jump/NotMatch push back onto
        // it (same position), Match/MatchAny push onto `next`. Indexing
        // instead of iterating because the drain appends as it goes.
        let mut i = 0;
        while i < self.current.len() {
            let pc = self.current[i];
            i += 1;
            self.executed += 1;
            let ins = self.program.get(pc).expect("validated program");
            match ins {
                Instruction::Accept => {
                    if ch.is_none() {
                        return Some(self.outcome(true, None));
                    }
                }
                Instruction::AcceptPartial => {
                    return Some(self.outcome(true, None));
                }
                Instruction::AcceptPartialId(id) => {
                    return Some(self.outcome(true, Some(id)));
                }
                Instruction::Split(target) => {
                    self.push_current(pc + 1);
                    self.push_current(target);
                }
                Instruction::Jump(target) => {
                    self.push_current(target);
                }
                Instruction::MatchAny => {
                    if ch.is_some() {
                        self.push_next(pc + 1);
                    }
                }
                Instruction::Match(expected) => {
                    if ch == Some(expected) {
                        self.push_next(pc + 1);
                    }
                }
                Instruction::NotMatch(unexpected) => {
                    // Non-consuming: stays at this position. At end of
                    // input it kills the thread like the other matchers.
                    if ch.is_some() && ch != Some(unexpected) {
                        self.push_current(pc + 1);
                    }
                }
            }
        }
        if ch.is_none() || self.next.is_empty() {
            // End of input, or no thread survived into the next position.
            return Some(self.outcome(false, None));
        }
        for pc in self.current.drain(..) {
            self.in_current[usize::from(pc)] = false;
        }
        std::mem::swap(&mut self.current, &mut self.next);
        std::mem::swap(&mut self.in_current, &mut self.in_next);
        self.position += 1;
        None
    }

    fn outcome(&self, accepted: bool, matched_id: Option<u16>) -> ExecOutcome {
        ExecOutcome {
            accepted,
            match_position: accepted.then_some(self.position),
            matched_id,
            instructions_executed: self.executed,
        }
    }

    fn push_current(&mut self, pc: u16) {
        let seen = &mut self.in_current[usize::from(pc)];
        if !*seen {
            *seen = true;
            self.current.push(pc);
        }
    }

    fn push_next(&mut self, pc: u16) {
        let seen = &mut self.in_next[usize::from(pc)];
        if !*seen {
            *seen = true;
            self.next.push(pc);
        }
    }
}

/// Execute `program` over `chunks` as if they were one concatenated
/// input. Equivalent to `run(program, concat(chunks))` for every split.
pub fn run_chunked<'a, I>(program: &Program, chunks: I) -> ExecOutcome
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut matcher = StreamMatcher::new(program);
    for chunk in chunks {
        if let Some(outcome) = matcher.feed(chunk) {
            return outcome;
        }
    }
    matcher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction::*;
    use crate::interp::run;

    fn ab_or_cd() -> Program {
        Program::from_instructions(vec![
            Split(3),
            MatchAny,
            Jump(0),
            Split(7),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            AcceptPartial,
        ])
        .unwrap()
    }

    fn test_programs() -> Vec<Program> {
        vec![
            ab_or_cd(),
            // `^ab$`
            Program::from_instructions(vec![Match(b'a'), Match(b'b'), Accept]).unwrap(),
            // `[^ab]` with no implicit prefix.
            Program::from_instructions(vec![
                NotMatch(b'a'),
                NotMatch(b'b'),
                MatchAny,
                AcceptPartial,
            ])
            .unwrap(),
            // Pathological split loop (terminates via dedup).
            Program::from_instructions(vec![Split(2), Jump(0), Match(b'a'), Jump(0), Accept])
                .unwrap(),
            // Multi-match id reporting.
            Program::from_instructions(vec![
                Split(3),
                MatchAny,
                Jump(0),
                Split(6),
                Match(b'a'),
                AcceptPartialId(7),
                Match(b'b'),
                AcceptPartialId(9),
            ])
            .unwrap(),
        ]
    }

    fn test_inputs() -> Vec<&'static [u8]> {
        vec![
            b"",
            b"a",
            b"b",
            b"ab",
            b"ba",
            b"abab",
            b"xxabyy",
            b"xcdab",
            b"zzzzzzzz",
            b"aaabbb",
            &[0x00, 0xff, b'a', b'b'],
        ]
    }

    /// Split `input` at the set of points encoded by `mask` (bit `i` set
    /// means a boundary after byte `i`).
    fn split_by_mask(input: &[u8], mask: u32) -> Vec<&[u8]> {
        let mut chunks = Vec::new();
        let mut start = 0;
        for i in 0..input.len() {
            if mask & (1 << i) != 0 {
                chunks.push(&input[start..=i]);
                start = i + 1;
            }
        }
        chunks.push(&input[start..]);
        chunks
    }

    #[test]
    fn every_split_of_every_input_is_invariant() {
        for program in test_programs() {
            for input in test_inputs() {
                let whole = run(&program, input);
                let masks = 1u32 << input.len().min(10);
                for mask in 0..masks {
                    let chunks = split_by_mask(input, mask);
                    let streamed = run_chunked(&program, chunks.iter().copied());
                    assert_eq!(
                        streamed, whole,
                        "split {mask:#b} of {input:?} diverged from the whole-input run"
                    );
                }
            }
        }
    }

    #[test]
    fn one_byte_chunks_are_invariant() {
        for program in test_programs() {
            for input in test_inputs() {
                let whole = run(&program, input);
                let streamed = run_chunked(&program, input.chunks(1));
                assert_eq!(streamed, whole, "1-byte chunks diverged on {input:?}");
            }
        }
    }

    #[test]
    fn empty_chunks_are_transparent() {
        let p = ab_or_cd();
        let mut m = StreamMatcher::new(&p);
        assert_eq!(m.feed(b""), None);
        assert_eq!(m.feed(b"xxa"), None);
        assert_eq!(m.feed(b""), None);
        // The accepting thread sits at position 4, which is only
        // processed at the next byte or at end of input.
        assert_eq!(m.feed(b"b"), None);
        assert_eq!(m.finish(), run(&p, b"xxab"));
    }

    #[test]
    fn early_acceptance_concludes_mid_chunk() {
        let p = ab_or_cd();
        let mut m = StreamMatcher::new(&p);
        let out = m.feed(b"xabzzzz").expect("accepts inside the chunk");
        assert!(out.accepted);
        assert_eq!(out, run(&p, b"xabzzzz"));
        // `ab` ends at index 3 (AcceptPartial fires one position later).
        assert_eq!(out.match_position, Some(3));
        assert!(m.is_done());
        // Feeding after conclusion re-reports the same outcome.
        assert_eq!(m.feed(b"more"), Some(out));
        assert_eq!(m.finish(), out);
    }

    #[test]
    fn a_dead_frontier_concludes_early() {
        // `^ab$`: after a mismatching first byte no thread survives.
        let p = Program::from_instructions(vec![Match(b'a'), Match(b'b'), Accept]).unwrap();
        let mut m = StreamMatcher::new(&p);
        let out = m.feed(b"x").expect("frontier dies on the first byte");
        assert!(!out.accepted);
        assert_eq!(out, run(&p, b"x"));
    }

    #[test]
    fn finish_is_idempotent() {
        let p = ab_or_cd();
        let mut m = StreamMatcher::new(&p);
        m.feed(b"zz");
        let first = m.finish();
        assert_eq!(m.finish(), first);
        assert_eq!(first, run(&p, b"zz"));
    }

    #[test]
    fn position_tracks_consumed_bytes() {
        let p = ab_or_cd();
        let mut m = StreamMatcher::new(&p);
        assert_eq!(m.position(), 0);
        m.feed(b"zzz");
        assert_eq!(m.position(), 3);
    }
}
