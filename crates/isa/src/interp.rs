//! Functional (architecture-free) executor for Cicero programs.
//!
//! This is the ISA's reference semantics: a breadth-first Thompson
//! simulation with per-position thread deduplication, independent of any
//! microarchitectural detail (pipelines, FIFOs, caches). The cycle-level
//! simulator in `cicero-sim` must produce exactly the same accept/reject
//! verdicts; both compilers are differentially tested against it and
//! against the AST-level oracle in `regex-oracle`.
//!
//! # End-of-input semantics
//!
//! When the input is exhausted there is no current character, so **all
//! three matching instructions kill the thread** (including the
//! non-consuming `NotMatch`); only `Accept`/`AcceptPartial` can fire. This
//! matches the RTL, where the engine raises an end-of-stream flag that
//! gates the match units.

use crate::instruction::Instruction;
use crate::program::Program;

/// Result of executing a program over an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Whether the program accepted.
    pub accepted: bool,
    /// Input position (byte index) at which acceptance fired, if any.
    /// For `Accept` this is always the input length.
    pub match_position: Option<usize>,
    /// The RE identifier reported by `AcceptPartialId`, when the program
    /// was compiled for multi-matching (Future Work ISA extension).
    pub matched_id: Option<u16>,
    /// Total instructions executed across all threads (a work metric; the
    /// cycle simulator reports real cycles instead).
    pub instructions_executed: u64,
}

/// Execute `program` over `input`, stopping at the first acceptance.
///
/// Threads all start at PC 0 on the first character. Acceptance is
/// immediate: like the hardware, the engine halts the whole execution as
/// soon as any thread accepts (§3.3 "the NFA traversal can stop as soon as
/// possible").
pub fn run(program: &Program, input: &[u8]) -> ExecOutcome {
    Executor::new(program).run(input)
}

/// Convenience wrapper returning only the verdict.
pub fn accepts(program: &Program, input: &[u8]) -> bool {
    run(program, input).accepted
}

struct Executor<'p> {
    program: &'p Program,
    /// Dedup filter: whether a PC is already in the current frontier.
    in_current: Vec<bool>,
    /// Dedup filter for the next frontier.
    in_next: Vec<bool>,
}

impl<'p> Executor<'p> {
    fn new(program: &'p Program) -> Executor<'p> {
        Executor {
            program,
            in_current: vec![false; program.len()],
            in_next: vec![false; program.len()],
        }
    }

    fn run(&mut self, input: &[u8]) -> ExecOutcome {
        let mut executed: u64 = 0;
        let mut current: Vec<u16> = Vec::with_capacity(self.program.len());
        let mut next: Vec<u16> = Vec::with_capacity(self.program.len());
        self.push(&mut current, 0, Frontier::Current);

        for position in 0..=input.len() {
            let ch = input.get(position).copied();
            // Drain the current frontier; Split/Jump/NotMatch push back
            // onto it (same position), Match/MatchAny push onto `next`.
            let mut i = 0;
            while i < current.len() {
                let pc = current[i];
                i += 1;
                executed += 1;
                let ins = self.program.get(pc).expect("validated program");
                match ins {
                    Instruction::Accept => {
                        if ch.is_none() {
                            return ExecOutcome {
                                accepted: true,
                                match_position: Some(position),
                                matched_id: None,
                                instructions_executed: executed,
                            };
                        }
                        // Not at end: thread dies.
                    }
                    Instruction::AcceptPartial => {
                        return ExecOutcome {
                            accepted: true,
                            match_position: Some(position),
                            matched_id: None,
                            instructions_executed: executed,
                        };
                    }
                    Instruction::AcceptPartialId(id) => {
                        return ExecOutcome {
                            accepted: true,
                            match_position: Some(position),
                            matched_id: Some(id),
                            instructions_executed: executed,
                        };
                    }
                    Instruction::Split(target) => {
                        self.push(&mut current, pc + 1, Frontier::Current);
                        self.push(&mut current, target, Frontier::Current);
                    }
                    Instruction::Jump(target) => {
                        self.push(&mut current, target, Frontier::Current);
                    }
                    Instruction::MatchAny => {
                        if ch.is_some() {
                            self.push(&mut next, pc + 1, Frontier::Next);
                        }
                    }
                    Instruction::Match(expected) => {
                        if ch == Some(expected) {
                            self.push(&mut next, pc + 1, Frontier::Next);
                        }
                    }
                    Instruction::NotMatch(unexpected) => {
                        // Non-consuming: stays at this position.
                        if ch.is_some() && ch != Some(unexpected) {
                            self.push(&mut current, pc + 1, Frontier::Current);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            for pc in current.drain(..) {
                self.in_current[usize::from(pc)] = false;
            }
            std::mem::swap(&mut current, &mut next);
            std::mem::swap(&mut self.in_current, &mut self.in_next);
        }

        ExecOutcome {
            accepted: false,
            match_position: None,
            matched_id: None,
            instructions_executed: executed,
        }
    }

    fn push(&mut self, frontier: &mut Vec<u16>, pc: u16, which: Frontier) {
        let seen = match which {
            Frontier::Current => &mut self.in_current[usize::from(pc)],
            Frontier::Next => &mut self.in_next[usize::from(pc)],
        };
        if !*seen {
            *seen = true;
            frontier.push(pc);
        }
    }
}

#[derive(Clone, Copy)]
enum Frontier {
    Current,
    Next,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction::*;
    use crate::program::Program;

    /// `ab|cd` with implicit `.*` prefix and partial acceptance
    /// (Listing 2, jump-simplified column).
    fn ab_or_cd() -> Program {
        Program::from_instructions(vec![
            Split(3),
            MatchAny,
            Jump(0),
            Split(7),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            AcceptPartial,
        ])
        .unwrap()
    }

    #[test]
    fn finds_substring_matches() {
        let p = ab_or_cd();
        assert!(accepts(&p, b"ab"));
        assert!(accepts(&p, b"xxabyy"));
        assert!(accepts(&p, b"xxcd"));
        assert!(!accepts(&p, b"ac"));
        assert!(!accepts(&p, b""));
        assert!(!accepts(&p, b"ba"));
    }

    #[test]
    fn match_position_is_earliest_end() {
        let p = ab_or_cd();
        let out = run(&p, b"xcdab");
        assert_eq!(out.match_position, Some(3)); // `cd` ends at index 3.
    }

    #[test]
    fn exact_accept_requires_end() {
        // `^ab$` — Match a, Match b, Accept.
        let p = Program::from_instructions(vec![Match(b'a'), Match(b'b'), Accept]).unwrap();
        assert!(accepts(&p, b"ab"));
        assert!(!accepts(&p, b"abx"));
        assert!(!accepts(&p, b"xab"));
    }

    #[test]
    fn not_match_chain_is_non_consuming() {
        // `[^ab]` = NotMatch a; NotMatch b; MatchAny; AcceptPartial — with
        // no implicit prefix.
        let p = Program::from_instructions(vec![
            NotMatch(b'a'),
            NotMatch(b'b'),
            MatchAny,
            AcceptPartial,
        ])
        .unwrap();
        assert!(accepts(&p, b"z"));
        assert!(!accepts(&p, b"a"));
        assert!(!accepts(&p, b"b"));
        assert!(!accepts(&p, b""));
    }

    #[test]
    fn matching_kills_at_end_of_input() {
        // NotMatch at end of input kills the thread rather than passing.
        let p = Program::from_instructions(vec![Match(b'x'), NotMatch(b'a'), Accept]).unwrap();
        assert!(!accepts(&p, b"x"), "NotMatch must not fire at end of input");
        // With "xz": NotMatch(a) passes without consuming, so Accept then
        // sees position 1 of 2 and the thread dies.
        assert!(!accepts(&p, b"xz"));
    }

    #[test]
    fn split_loops_terminate_via_dedup() {
        // `(a*)*`-style pathological loop: Split(0) at 0 jumping to itself
        // through a cycle must terminate thanks to dedup.
        let p = Program::from_instructions(vec![Split(2), Jump(0), Match(b'a'), Jump(0), Accept])
            .unwrap();
        let out = run(&p, b"aaa");
        assert!(!out.accepted);
        // Bounded work: at most program.len() distinct PCs per position.
        assert!(out.instructions_executed <= 5 * 5);
    }

    #[test]
    fn acceptance_halts_execution_early() {
        let p =
            Program::from_instructions(vec![Split(2), AcceptPartial, MatchAny, Jump(0)]).unwrap();
        let out = run(&p, &[b'x'; 1000]);
        assert!(out.accepted);
        assert_eq!(out.match_position, Some(0));
        assert!(out.instructions_executed < 10);
    }

    #[test]
    fn work_metric_counts_all_threads() {
        let p = ab_or_cd();
        let out = run(&p, b"zzzz");
        assert!(!out.accepted);
        assert!(out.instructions_executed > 4, "{out:?}");
    }
}
