//! **Table 5** — micro-benchmark pre-filtering: average energy per RE
//! (W·µs) for every feasible architecture configuration.
//!
//! Reproduction targets: every NEW NxM (M > 1) is less efficient than its
//! NEW Nx1 counterpart (in-engine balancing beats adding engines), and
//! the overall winners are NEW 8x1 / NEW 16x1.

use cicero_bench::{banner, f2, measure, paper, suites, CompiledSuite, Scale, Table};
use cicero_sim::ArchConfig;

fn main() {
    let scale = Scale::from_env();
    banner("Table 5", "average energy per RE (W·µs) per configuration", scale);
    let compiled: Vec<CompiledSuite> = suites(scale).iter().map(CompiledSuite::build).collect();

    let mut configs: Vec<(ArchConfig, Option<[f64; 4]>)> = Vec::new();
    for (row, (_, p)) in paper::TABLE2.iter().enumerate() {
        let engines = [1, 4, 9, 16, 32][row];
        configs.push((ArchConfig::old_organization(engines), Some(*p)));
    }
    for (name, p) in paper::TABLE5_NEW {
        let parts: Vec<&str> = name.split_whitespace().nth(1).unwrap().split('x').collect();
        let n: usize = parts[0].parse().unwrap();
        let m: usize = parts[1].parse().unwrap();
        configs.push((ArchConfig::new_organization(n, m), Some(p)));
    }

    let mut table = Table::new(vec![
        "configuration",
        "PROTOMATA",
        "(paper)",
        "BRILL",
        "(paper)",
        "PROTOMATA4",
        "(paper)",
        "BRILL4",
        "(paper)",
        "AVG",
    ]);
    let mut best: Option<(String, f64)> = None;
    for (config, paper_row) in &configs {
        // Table 5 uses the *new* compiler ("we now consider only the
        // proposed compiler", §6.2).
        let mut cells = vec![config.name()];
        let mut sum = 0.0;
        for (i, suite) in compiled.iter().enumerate() {
            let m = measure(&suite.new_opt, &suite.chunks, config);
            sum += m.avg_energy_wus;
            cells.push(f2(m.avg_energy_wus));
            cells.push(match paper_row {
                Some(p) => format!("({})", f2(p[i])),
                None => "-".to_owned(),
            });
        }
        let avg = sum / compiled.len() as f64;
        cells.push(f2(avg));
        if best.as_ref().is_none_or(|(_, b)| avg < *b) {
            best = Some((config.name(), avg));
        }
        table.row(cells);
    }
    table.print();
    let (name, avg) = best.expect("at least one configuration");
    println!("\n  overall most efficient: {name} at {} W·µs avg (paper: NEW 16x1, 47.86)", f2(avg));
    println!("  note: paper Table 2 rows were measured with the old compiler; this table");
    println!("  recompiles everything with the new one, as §6.2 does for Table 5");
}
