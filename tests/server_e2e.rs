//! End-to-end smoke tests for `cicero serve`: the real binary, a real
//! ephemeral TCP port, raw HTTP over sockets.
//!
//! This is the serving layer's outermost contract — the one the CI
//! `server-smoke` job also exercises: the server announces its address,
//! answers every endpoint, reports tripped budgets as `429`, agrees
//! byte-for-byte with the `cicero scan` CLI on the same seeded workload,
//! and exits `0` after a graceful drain.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use cicero::server::json::{self, Json};

/// A `cicero serve` child plus the address it announced.
struct ServeProcess {
    child: Child,
    addr: String,
}

impl ServeProcess {
    /// Spawn `cicero serve --addr 127.0.0.1:0 ...` and read the
    /// `listening on ADDR` line to discover the ephemeral port.
    fn start(extra_args: &[&str]) -> ServeProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cicero"))
            .args(["serve", "--addr", "127.0.0.1:0", "--drain-timeout-ms", "10000"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawning cicero serve");
        let stdout = child.stdout.as_mut().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("reading the listening line");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
            .trim()
            .to_owned();
        ServeProcess { child, addr }
    }

    /// POST `/shutdown`, wait for the drain, and assert exit code 0.
    fn shutdown_and_wait(mut self) {
        let (status, _, _) = self.request("POST", "/shutdown", "", &[]);
        assert_eq!(status, 200);
        let deadline = std::time::Instant::now() + Duration::from_secs(15);
        loop {
            if let Some(status) = self.child.try_wait().expect("polling the child") {
                assert!(status.success(), "cicero serve must exit 0 after a graceful drain");
                return;
            }
            assert!(std::time::Instant::now() < deadline, "serve did not exit after shutdown");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// One request over a fresh connection; returns (status, headers, body).
    fn request(
        &self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> (u16, String, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connecting to cicero serve");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut raw = format!("{method} {path} HTTP/1.1\r\n");
        for (name, value) in headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str(&format!("content-length: {}\r\nconnection: close\r\n\r\n{body}", body.len()));
        stream.write_all(raw.as_bytes()).expect("sending the request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("reading the response");
        let status: u16 = response
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("bad response {response:?}"));
        let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
        (status, head.to_owned(), body.to_owned())
    }
}

#[test]
fn serve_answers_every_endpoint_and_drains_cleanly() {
    let server = ServeProcess::start(&["--workers", "2", "--queue-depth", "16"]);

    let (status, _, body) = server.request("GET", "/healthz", "", &[]);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, _, body) =
        server.request("POST", "/match", r#"{"patterns":["ab|cd","zzz"],"input":"xxabyy"}"#, &[]);
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).expect("match response is JSON");
    let results = doc.get("results").and_then(Json::as_arr).expect("results array");
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].get("verdict").and_then(Json::as_str), Some("match"));
    assert_eq!(results[1].get("verdict").and_then(Json::as_str), Some("no-match"));

    let (status, _, body) = server.request(
        "POST",
        "/scan",
        r#"{"patterns":["GET /","POST /"],"input":"GET /index POST /submit"}"#,
        &[],
    );
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).expect("scan response is JSON");
    assert_eq!(doc.get("matched"), Some(&Json::Bool(true)));
    let per_pattern = doc.get("per_pattern").and_then(Json::as_arr).expect("per_pattern");
    // Both set members hit the single chunk: the all-matches accounting.
    for row in per_pattern {
        assert_eq!(row.get("chunks_matched").and_then(Json::as_u64), Some(1), "{body}");
    }

    let (status, _, body) = server.request("GET", "/metrics?format=summary", "", &[]);
    assert_eq!(status, 200);
    assert!(body.contains("server.requests"), "{body}");
    let (status, _, jsonl) = server.request("GET", "/metrics?format=jsonl", "", &[]);
    assert_eq!(status, 200);
    assert!(jsonl.lines().any(|l| l.contains("server.latency_ms")), "{jsonl}");
    assert!(jsonl.lines().any(|l| l.contains("runtime.cache_")), "{jsonl}");

    server.shutdown_and_wait();
}

/// One request over a fresh connection from any thread; returns the
/// status code only (the concurrent-load test cares about answered vs
/// dropped, not bodies).
fn raw_roundtrip(addr: &str, method: &str, path: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connecting to cicero serve");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("sending the request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reading the response");
    response.split(' ').nth(1).and_then(|code| code.parse().ok()).unwrap_or(0)
}

/// The multi-core smoke contract (CI runs this binary with
/// `--workers 4`): four concurrent clients hammering `/match` with
/// distinct patterns — concurrent compiles through the sharded program
/// cache — must all be answered `200`, and the server must still drain
/// cleanly afterwards.
#[test]
fn multi_worker_serve_answers_concurrent_clients_and_drains() {
    let server = ServeProcess::start(&["--workers", "4", "--queue-depth", "32"]);
    let mut clients = Vec::new();
    for client in 0..4 {
        let addr = server.addr.clone();
        clients.push(std::thread::spawn(move || {
            let mut ok = 0usize;
            for i in 0..12 {
                // A shared pattern (cache-hit traffic) plus a per-request
                // unique one (cache-miss traffic) in each set.
                let body = format!(r#"{{"patterns":["ab|cd","x{client}y{i}"],"input":"xxcdyy"}}"#);
                if raw_roundtrip(&addr, "POST", "/match", &body) == 200 {
                    ok += 1;
                }
            }
            ok
        }));
    }
    let answered: usize = clients.into_iter().map(|j| j.join().expect("client thread")).sum();
    assert_eq!(answered, 48, "every concurrent request must be answered 200");
    server.shutdown_and_wait();
}

#[test]
fn serve_reports_tripped_budgets_as_429() {
    let server = ServeProcess::start(&[]);
    let (status, head, body) = server.request(
        "POST",
        "/match",
        r#"{"patterns":["(ab|ba)+x"],"input":"abbaabbaabbaabbaabba"}"#,
        &[("X-Cicero-Fuel", "1")],
    );
    assert_eq!(status, 429, "{body}");
    assert!(head.contains("retry-after"), "{head}");
    let doc = json::parse(&body).expect("budget response is JSON");
    assert_eq!(doc.get("budget_exceeded"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("fuel"));
    server.shutdown_and_wait();
}

/// The served `POST /scan` and the `cicero scan --jobs` CLI must agree
/// byte-for-byte on per-pattern match counts for the same seeded
/// workload — same chunking, same set compilation, same all-matches
/// accounting.
#[test]
fn served_scan_matches_the_cli_scan_on_a_seeded_workload() {
    let bench = cicero::workloads::Benchmark::protomata(0xC1CE_2025, 6, 8);
    let input: Vec<u8> = bench.chunks.iter().flatten().copied().collect();
    let input_text = String::from_utf8(input).expect("workload chunks are ASCII");

    // CLI side: scan the joined input with the same pattern set.
    let mut path = std::env::temp_dir();
    path.push(format!("cicero-server-e2e-{}.txt", std::process::id()));
    std::fs::write(&path, &input_text).expect("writing the workload input");
    let mut args = vec!["scan".to_owned()];
    args.extend(bench.patterns.iter().cloned());
    args.extend(["--input".to_owned(), path.to_str().unwrap().to_owned()]);
    args.extend(["--jobs".to_owned(), "2".to_owned()]);
    let output = Command::new(env!("CARGO_BIN_EXE_cicero"))
        .args(&args)
        .output()
        .expect("running cicero scan");
    std::fs::remove_file(&path).ok();
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let mut cli_counts = vec![0u64; bench.patterns.len()];
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix("MATCH: pattern ") {
            let id: usize = rest.split(' ').next().unwrap().parse().expect("pattern id");
            // `rsplit` so a pattern containing " in " cannot confuse
            // the parse: the count is always in the final segment.
            let chunks: u64 = rest
                .rsplit(" in ")
                .next()
                .and_then(|s| s.split(' ').next())
                .unwrap()
                .parse()
                .expect("chunk count");
            cli_counts[id] = chunks;
        }
    }

    // Server side: the same patterns and input through POST /scan.
    let server = ServeProcess::start(&["--jobs", "2"]);
    let patterns_json: Vec<String> = bench
        .patterns
        .iter()
        .map(|p| format!("\"{}\"", cicero::telemetry::escape_json(p)))
        .collect();
    let body = format!(
        "{{\"patterns\":[{}],\"input\":\"{}\"}}",
        patterns_json.join(","),
        cicero::telemetry::escape_json(&input_text)
    );
    let (status, _, response) = server.request("POST", "/scan", &body, &[]);
    assert_eq!(status, 200, "{response}");
    let doc = json::parse(&response).expect("scan response is JSON");
    assert_eq!(doc.get("chunks").and_then(Json::as_u64), Some(bench.chunks.len() as u64));
    let per_pattern = doc.get("per_pattern").and_then(Json::as_arr).expect("per_pattern");
    let server_counts: Vec<u64> = per_pattern
        .iter()
        .map(|row| row.get("chunks_matched").and_then(Json::as_u64).expect("count"))
        .collect();
    assert_eq!(
        server_counts, cli_counts,
        "served /scan and `cicero scan --jobs` must report identical per-pattern counts\n\
         stdout: {stdout}\nresponse: {response}"
    );
    // The seeded workload plants witnesses; an all-zero vector would mean
    // the comparison was vacuous.
    assert!(server_counts.iter().any(|c| *c > 0), "workload must produce at least one match");
    server.shutdown_and_wait();
}

/// Run the `cicero` binary; returns (success, stdout, stderr).
fn cli(args: &[&str]) -> (bool, String, String) {
    let output =
        Command::new(env!("CARGO_BIN_EXE_cicero")).args(args).output().expect("running cicero");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// The registry lifecycle end to end through the real binary: `serve
/// --ruleset-dir`, `cicero ruleset put/get/list/rm` as HTTP clients,
/// `scan --ruleset` on both backends, a hot swap visible as a version
/// change, and the persisted artifact restored by a second server.
#[test]
fn ruleset_cli_drives_the_registry_lifecycle_end_to_end() {
    let dir = std::env::temp_dir().join(format!("cicero-e2e-rulesets-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = ServeProcess::start(&["--ruleset-dir", dir.to_str().unwrap()]);
    let addr = server.addr.clone();

    // Install: a content-hash version comes back on stdout.
    let (ok, stdout, stderr) = cli(&["ruleset", "put", "web", "ab|cd", "gh+i", "--addr", &addr]);
    assert!(ok, "{stderr}");
    assert!(stdout.starts_with("installed web @ "), "{stdout}");
    let v1 = stdout.split(" @ ").nth(1).unwrap().split(' ').next().unwrap().to_owned();
    assert_eq!(v1.len(), 16, "content version must be 16 hex chars: {stdout}");

    // Scan against the served ruleset on both backends: the response is
    // tagged with the version that served it and the verdicts agree.
    for backend in ["host", "sim"] {
        let (ok, stdout, stderr) = cli(&[
            "scan",
            "--ruleset",
            "web",
            "--text",
            "xxabyy",
            "--addr",
            &addr,
            "--backend",
            backend,
        ]);
        assert!(ok, "[{backend}] {stderr}");
        assert!(stdout.contains(&format!("ruleset    : web @ {v1}")), "[{backend}] {stdout}");
        assert!(stdout.contains("\"verdict\":\"match\""), "[{backend}] {stdout}");
    }

    // get / list see the installed id and version.
    let (ok, stdout, stderr) = cli(&["ruleset", "get", "web", "--addr", &addr]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains(&v1) && stdout.contains("ab|cd"), "{stdout}");
    let (ok, stdout, stderr) = cli(&["ruleset", "list", "--addr", &addr]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"web\""), "{stdout}");

    // Hot swap: put over the same id reports the replacement and scans
    // pick up the new version (and the new patterns) immediately.
    let (ok, stdout, stderr) = cli(&["ruleset", "put", "web", "zz+9", "--addr", &addr]);
    assert!(ok, "{stderr}");
    assert!(stdout.starts_with("swapped web @ "), "{stdout}");
    let v2 = stdout.split(" @ ").nth(1).unwrap().split(' ').next().unwrap().to_owned();
    assert_ne!(v1, v2, "swapping different patterns must change the content version");
    let (ok, stdout, stderr) =
        cli(&["scan", "--ruleset", "web", "--text", "azz9b", "--addr", &addr]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains(&format!("ruleset    : web @ {v2}")), "{stdout}");
    assert!(stdout.contains("\"verdict\":\"match\""), "{stdout}");

    // A restarted server over the same --ruleset-dir restores the swap.
    server.shutdown_and_wait();
    let revived = ServeProcess::start(&["--ruleset-dir", dir.to_str().unwrap()]);
    let (ok, stdout, stderr) = cli(&["ruleset", "get", "web", "--addr", &revived.addr]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains(&v2), "restart must restore version {v2}: {stdout}");

    // rm deletes it everywhere: the client reports it, scans 404.
    let (ok, stdout, stderr) = cli(&["ruleset", "rm", "web", "--addr", &revived.addr]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("deleted web"), "{stdout}");
    let (ok, _, stderr) =
        cli(&["scan", "--ruleset", "web", "--text", "x", "--addr", &revived.addr]);
    assert!(!ok, "scanning a deleted ruleset must fail");
    assert!(stderr.contains("404"), "{stderr}");
    revived.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}
