//! The committed regression corpus: one TOML file per minimized
//! divergence, replayed as a normal `cargo test`.
//!
//! The on-disk format is a deliberately tiny TOML subset — flat
//! `key = value` lines with basic strings and one string array — so the
//! workspace needs no TOML dependency and the files stay hand-editable:
//!
//! ```toml
//! pattern = "x(a?|a*)y"
//! kind = "seed"
//! note = "where this case came from"
//! inputs = ["786179", ""]
//! splits = [1, 2]
//! ```
//!
//! Inputs are lowercase hex so arbitrary bytes (the generator emits
//! `0x00`–`0xff`) survive the text format losslessly. `splits` is
//! optional (and omitted when empty): chunk-split points for cases that
//! only diverge on the streaming axis — replay re-streams every input
//! split at those positions.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// File stem this case was loaded from (or will be saved under).
    pub name: String,
    /// The pattern.
    pub pattern: String,
    /// The input set.
    pub inputs: Vec<Vec<u8>>,
    /// Provenance: `divergence` for minimized fuzz findings, `seed` for
    /// cases imported from other test layers.
    pub kind: String,
    /// Free-text triage note (the cell that diverged, the fix commit, …).
    pub note: String,
    /// Chunk-split points for stream-axis cases; empty for cases that
    /// diverge on the whole-input matrix alone.
    pub splits: Vec<usize>,
}

/// The committed corpus directory (`crates/difftest/corpus`).
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

impl CorpusCase {
    /// Render to the TOML subset.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("pattern = {}\n", quote(&self.pattern)));
        out.push_str(&format!("kind = {}\n", quote(&self.kind)));
        out.push_str(&format!("note = {}\n", quote(&self.note)));
        let inputs: Vec<String> = self.inputs.iter().map(|i| quote(&to_hex(i))).collect();
        out.push_str(&format!("inputs = [{}]\n", inputs.join(", ")));
        if !self.splits.is_empty() {
            let splits: Vec<String> = self.splits.iter().map(usize::to_string).collect();
            out.push_str(&format!("splits = [{}]\n", splits.join(", ")));
        }
        out
    }

    /// Parse the TOML subset.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, unknown key,
    /// missing key, or invalid hex.
    pub fn from_toml(name: &str, text: &str) -> Result<CorpusCase, String> {
        let mut pattern = None;
        let mut kind = None;
        let mut note = None;
        let mut inputs = None;
        let mut splits = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("{name}:{}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let at = |e: String| format!("{name}:{}: {e}", lineno + 1);
            match key {
                "pattern" => pattern = Some(unquote(value).map_err(at)?),
                "kind" => kind = Some(unquote(value).map_err(at)?),
                "note" => note = Some(unquote(value).map_err(at)?),
                "inputs" => {
                    let mut decoded = Vec::new();
                    for hex in parse_string_array(value).map_err(at)? {
                        decoded.push(
                            from_hex(&hex).map_err(|e| format!("{name}:{}: {e}", lineno + 1))?,
                        );
                    }
                    inputs = Some(decoded);
                }
                "splits" => splits = Some(parse_usize_array(value).map_err(at)?),
                other => return Err(format!("{name}:{}: unknown key `{other}`", lineno + 1)),
            }
        }
        Ok(CorpusCase {
            name: name.to_owned(),
            pattern: pattern.ok_or_else(|| format!("{name}: missing `pattern`"))?,
            inputs: inputs.ok_or_else(|| format!("{name}: missing `inputs`"))?,
            kind: kind.unwrap_or_else(|| "divergence".to_owned()),
            note: note.unwrap_or_default(),
            splits: splits.unwrap_or_default(),
        })
    }

    /// Write this case to `dir/<name>.toml`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the directory is created if absent).
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.toml", self.name));
        fs::write(&path, self.to_toml())?;
        Ok(path)
    }
}

/// Load every `*.toml` case in `dir`, sorted by file name. A missing
/// directory is an empty corpus.
///
/// # Errors
///
/// Returns the first I/O or parse error.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusCase>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for path in paths {
        let name = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        cases.push(CorpusCase::from_toml(&name, &text)?);
    }
    Ok(cases)
}

// ---------------------------------------------------------------------------
// Basic strings and hex.
// ---------------------------------------------------------------------------

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn unquote(value: &str) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{value}`"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape `\\u{hex}`"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint \\u{hex}"))?);
            }
            other => return Err(format!("unsupported escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a string array, got `{value}`"))?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(|item| unquote(item.trim())).collect()
}

fn parse_usize_array(value: &str) -> Result<Vec<usize>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected an integer array, got `{value}`"))?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| {
            let item = item.trim();
            item.parse::<usize>().map_err(|_| format!("bad integer `{item}`"))
        })
        .collect()
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err(format!("odd-length hex string `{hex}`"));
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| format!("bad hex byte `{}`", &hex[i..i + 2]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CorpusCase {
        CorpusCase {
            name: "sample".to_owned(),
            pattern: "x(a?|a*)y|\\xff\"lit\\\"".to_owned(),
            inputs: vec![b"xay".to_vec(), Vec::new(), vec![0x00, 0x7f, 0xff]],
            kind: "divergence".to_owned(),
            note: "found by seed 7, cell sim/O2".to_owned(),
            splits: vec![1, 2],
        }
    }

    #[test]
    fn toml_roundtrip_is_lossless() {
        let case = sample();
        let text = case.to_toml();
        assert_eq!(CorpusCase::from_toml("sample", &text).unwrap(), case);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a triage note\n\npattern = \"ab\"\ninputs = []\n";
        let case = CorpusCase::from_toml("c", text).unwrap();
        assert_eq!(case.pattern, "ab");
        assert!(case.inputs.is_empty());
        assert_eq!(case.kind, "divergence");
        // `splits` is optional: files written before the streaming axis
        // existed (no `splits` line) stay loadable.
        assert!(case.splits.is_empty());
    }

    #[test]
    fn splits_roundtrip_and_reject_garbage() {
        let text = "pattern = \"ab\"\ninputs = [\"61\"]\nsplits = [1, 4, 9]\n";
        let case = CorpusCase::from_toml("c", text).unwrap();
        assert_eq!(case.splits, vec![1, 4, 9]);
        // Empty splits are omitted from the rendered form entirely.
        let mut no_splits = sample();
        no_splits.splits = Vec::new();
        assert!(!no_splits.to_toml().contains("splits"));
        let err = CorpusCase::from_toml("c", "pattern = \"a\"\ninputs = []\nsplits = [1, x]\n")
            .unwrap_err();
        assert!(err.contains("bad integer"), "{err}");
    }

    #[test]
    fn malformed_files_are_rejected_with_positions() {
        let err = CorpusCase::from_toml("c", "pattern\n").unwrap_err();
        assert!(err.contains("c:1"), "{err}");
        let err = CorpusCase::from_toml("c", "mystery = \"x\"\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = CorpusCase::from_toml("c", "pattern = \"a\"\ninputs = [\"xyz\"]\n").unwrap_err();
        assert!(err.contains("hex"), "{err}");
        let err = CorpusCase::from_toml("c", "inputs = []\n").unwrap_err();
        assert!(err.contains("missing `pattern`"), "{err}");
    }

    #[test]
    fn save_and_load_dir_roundtrip() {
        let dir =
            std::env::temp_dir().join(format!("cicero-difftest-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let case = sample();
        case.save(&dir).unwrap();
        let mut second = sample();
        second.name = "another".to_owned();
        second.inputs = vec![vec![0xde, 0xad]];
        second.save(&dir).unwrap();

        let loaded = load_dir(&dir).unwrap();
        // Sorted by file name: `another` before `sample`.
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], second);
        assert_eq!(loaded[1], case);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_missing_directory_is_an_empty_corpus() {
        assert_eq!(load_dir(Path::new("/nonexistent/difftest-corpus")).unwrap(), Vec::new());
    }
}
