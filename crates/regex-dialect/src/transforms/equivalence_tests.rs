//! Semantic-preservation tests for the §3.2 transformation sets.
//!
//! Each transform's output pattern must match exactly the same inputs as
//! its input pattern under the any-match semantics implemented by the
//! [`regex_oracle::Oracle`] (which is precisely the semantics the DSA
//! implements). The paper states sets 1 and 2 "preserve the original
//! semantics of the RE with an equivalent behavior" and set 3 preserves
//! acceptance behaviour for engines "aimed at producing any match" — the
//! oracle's `is_match` is that acceptance predicate, so equivalence is
//! checked for all three.

use mlir_lite::{Context, Pass};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::transforms::{CanonicalizePass, FactorizeAlternationsPass, ShortestMatchPass};
use crate::{ast_to_ir, ir_to_pattern};

/// Generate a random supported pattern over a small alphabet.
fn random_pattern(rng: &mut StdRng, depth: usize) -> String {
    let alternatives = rng.random_range(1..=3);
    let mut out = String::new();
    for i in 0..alternatives {
        if i > 0 {
            out.push('|');
        }
        let pieces = rng.random_range(if depth == 0 { 1..=4 } else { 0..=3 });
        for _ in 0..pieces {
            // Atom.
            match rng.random_range(0..10) {
                0 if depth < 2 => {
                    out.push('(');
                    out.push_str(&random_pattern(rng, depth + 1));
                    out.push(')');
                }
                1 => out.push('.'),
                2 => {
                    out.push('[');
                    if rng.random_bool(0.3) {
                        out.push('^');
                    }
                    for _ in 0..rng.random_range(1..=3) {
                        out.push(rng.random_range(b'a'..=b'e') as char);
                    }
                    out.push(']');
                }
                _ => out.push(rng.random_range(b'a'..=b'e') as char),
            }
            // Quantifier.
            match rng.random_range(0..8) {
                0 => out.push('*'),
                1 => out.push('+'),
                2 => out.push('?'),
                3 => {
                    let min = rng.random_range(0..3u32);
                    let max = min + rng.random_range(1..3u32);
                    out.push_str(&format!("{{{min},{max}}}"));
                }
                _ => {}
            }
        }
    }
    out
}

/// Random input over a slightly larger alphabet (so mismatches occur).
fn random_input(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.random_range(0..24);
    (0..len).map(|_| rng.random_range(b'a'..=b'g')).collect()
}

fn check_equivalence(pass: &dyn Pass, seed: u64, cases: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ctx = Context::new();
    ctx.register_dialect(crate::dialect());
    let mut tested = 0;
    while tested < cases {
        let pattern = random_pattern(&mut rng, 0);
        let Ok(ast) = regex_frontend::parse(&pattern) else {
            continue; // e.g. generated an all-empty alternation
        };
        tested += 1;
        let mut ir = ast_to_ir(&ast);
        pass.run(&mut ir, &ctx).unwrap_or_else(|e| panic!("{pattern:?}: {e}"));
        ctx.verify(&ir).unwrap_or_else(|e| panic!("{pattern:?}: {e}"));
        let transformed = ir_to_pattern(&ir);
        let before =
            regex_oracle::Oracle::new(&pattern).unwrap_or_else(|e| panic!("{pattern:?}: {e}"));
        // Execute the transformed IR directly (some reduced IR, like an
        // all-empty alternation, has no textual form).
        let after = regex_oracle::Oracle::from_ast(&crate::ir_to_ast(&ir));
        for _ in 0..40 {
            let input = random_input(&mut rng);
            assert_eq!(
                before.is_match(&input),
                after.is_match(&input),
                "pass {} broke {:?} -> {:?} on input {:?}",
                pass.name(),
                pattern,
                transformed,
                String::from_utf8_lossy(&input),
            );
        }
    }
}

#[test]
fn canonicalize_preserves_semantics() {
    check_equivalence(&CanonicalizePass, 0xC0FFEE, 150);
}

#[test]
fn factorize_preserves_semantics() {
    check_equivalence(&FactorizeAlternationsPass, 0xFEED, 150);
}

#[test]
fn shortest_match_preserves_any_match_semantics() {
    check_equivalence(&ShortestMatchPass, 0xBEEF, 150);
}

#[test]
fn full_pipeline_preserves_semantics() {
    struct All;
    impl Pass for All {
        fn name(&self) -> &'static str {
            "all-regex-transforms"
        }
        fn run(
            &self,
            root: &mut mlir_lite::Operation,
            ctx: &Context,
        ) -> Result<(), mlir_lite::PassError> {
            CanonicalizePass.run(root, ctx)?;
            FactorizeAlternationsPass.run(root, ctx)?;
            ShortestMatchPass.run(root, ctx)?;
            CanonicalizePass.run(root, ctx)
        }
    }
    check_equivalence(&All, 0xDECADE, 150);
}
