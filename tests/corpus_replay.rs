//! Replays the committed differential-fuzzing regression corpus
//! (`crates/difftest/corpus/*.toml`) through the full equivalence matrix
//! as a normal `cargo test`.
//!
//! Every minimized divergence the fuzzer ever finds is committed here, so
//! a fixed bug stays fixed. Triage workflow: see TESTING.md.

use cicero::difftest;

#[test]
fn every_corpus_case_passes_the_full_matrix() {
    let dir = difftest::default_corpus_dir();
    let replayed = difftest::replay_corpus(&dir).expect("corpus loads");
    assert!(!replayed.is_empty(), "the committed corpus at {} must not be empty", dir.display());
    for (case, outcome) in &replayed {
        assert_eq!(
            *outcome,
            difftest::Outcome::Pass,
            "corpus case `{}` (pattern {:?}, {}): {outcome:?}",
            case.name,
            case.pattern,
            case.note
        );
    }
}

/// The corpus carries the proptest regression seed (satellite of the
/// differential-fuzzing issue): the stored shrink from
/// `tests/proptest_properties.proptest-regressions` must be present.
#[test]
fn the_proptest_regression_seed_is_committed() {
    let replayed = difftest::replay_corpus(&difftest::default_corpus_dir()).expect("corpus loads");
    assert!(
        replayed.iter().any(|(case, _)| case.pattern == "x(a?|a*)y"),
        "missing the proptest-regressions seed x(a?|a*)y"
    );
}

/// Corpus files are exactly reproducible through the TOML writer: loading
/// and re-rendering is the identity on the key/value content, so `--save`
/// output and hand-written files stay interchangeable.
#[test]
fn corpus_files_roundtrip_through_the_writer() {
    for (case, _) in replay_all() {
        let rendered = case.to_toml();
        let reparsed = difftest::CorpusCase::from_toml(&case.name, &rendered).unwrap();
        assert_eq!(reparsed, case);
    }
}

fn replay_all() -> Vec<(difftest::CorpusCase, difftest::Outcome)> {
    difftest::replay_corpus(&difftest::default_corpus_dir()).expect("corpus loads")
}

/// The registry-axis satellite cases must stay committed: at least two
/// `kind = "registry"` sets, one of them multi-member (a newline-joined
/// `pattern`), each actually round-tripped (Pass, not Skip — a set the
/// compiler rejects would silently stop guarding the persist format).
#[test]
fn the_registry_corpus_cases_round_trip_the_persist_format() {
    let replayed = replay_all();
    let registry: Vec<_> = replayed.iter().filter(|(case, _)| case.kind == "registry").collect();
    assert!(registry.len() >= 2, "expected >= 2 registry corpus cases, found {}", registry.len());
    assert!(
        registry.iter().any(|(case, _)| case.pattern.contains('\n')),
        "no committed registry case exercises a multi-member set"
    );
    for (case, outcome) in registry {
        assert_eq!(*outcome, difftest::Outcome::Pass, "registry case `{}`: {outcome:?}", case.name);
    }
}

/// The host-backend satellite cases must stay committed, and they must
/// actually select the engine tiers they claim to pin: an empty
/// alternative, a prefilter-defeating dot pattern, a u128-tier NFA, a
/// lazy-DFA blowup, and a shared-prefix set.
#[test]
fn the_host_backend_corpus_cases_cover_every_engine_tier() {
    use cicero::hostexec::{EngineKind, HostProgram};
    let replayed = replay_all();
    let tier = |pattern: &str| {
        let program = cicero::compiler::compile(pattern).unwrap().into_program();
        HostProgram::compile(&program).engine_kind()
    };
    for (pattern, want) in [
        ("c(a|)t", EngineKind::Bit64),
        ("....", EngineKind::Bit64),
        ("a{70}b", EngineKind::Bit128),
        ("(ab|cd|ef){1,40}x", EngineKind::LazyDfa),
        ("abcd|abce|abcf", EngineKind::Bit64),
    ] {
        assert!(
            replayed.iter().any(|(case, _)| case.pattern == pattern),
            "missing the host corpus case for {pattern:?}"
        );
        assert_eq!(tier(pattern), want, "{pattern:?} no longer selects {want:?}");
    }
    // The dot-heavy case must really defeat the prefilter.
    let dots = cicero::compiler::compile("....").unwrap().into_program();
    assert_eq!(HostProgram::compile(&dots).prefilter_stop_bytes(), None);
}
