//! Transformation set 1 (§3.2): sub-regex simplification.
//!
//! "We simplify sub-expressions into a more concise representation,
//! applying canonicalization whenever possible to remove the unnecessary
//! parenthesis." The paper's worked examples, all reproduced in the tests:
//!
//! * `(abc) → abc`, while `(abc)+` is preserved (operator precedence);
//! * `(a+)` and `(a)+` both become `a+`;
//! * `(a{2,3}){4,7}` is preserved (`a{8,21}` would wrongly accept 9 `a`s).

use mlir_lite::{
    apply_patterns_greedily, Context, Operation, Pass, PassError, Rewrite, RewriteConfig,
    RewritePattern,
};

use crate::ops::{self, names, piece_parts};

/// The canonicalization pass: runs all simplification patterns to a fixed
/// point (the dialect's `canonicalize`, per the paper's footnote pointing
/// at MLIR canonicalization).
#[derive(Debug, Clone, Copy, Default)]
pub struct CanonicalizePass;

impl Pass for CanonicalizePass {
    fn name(&self) -> &'static str {
        "regex-canonicalize"
    }

    fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
        let patterns: [&dyn RewritePattern; 3] =
            [&UnwrapTrivialSubRegex, &MergeSubRegexQuantifier, &SimplifyGroup];
        let stats = apply_patterns_greedily(root, &patterns, RewriteConfig::default());
        if stats.hit_iteration_cap {
            return Err(PassError::new("canonicalization did not converge"));
        }
        Ok(())
    }
}

/// `(X) → X` when the sub-regex has a single alternative and the wrapping
/// piece carries no quantifier: the parentheses are pure grouping, so the
/// inner pieces can be spliced into the outer concatenation.
struct UnwrapTrivialSubRegex;

impl RewritePattern for UnwrapTrivialSubRegex {
    fn name(&self) -> &'static str {
        "unwrap-trivial-sub-regex"
    }

    fn apply(&self, op: Operation) -> Rewrite {
        if !op.is(names::PIECE) {
            return Rewrite::Unchanged(op);
        }
        {
            let (atom, quant) = piece_parts(&op);
            let single_alternative = atom.is(names::SUB_REGEX) && atom.only_region().len() == 1;
            if !(single_alternative && quant.is_none()) {
                return Rewrite::Unchanged(op);
            }
        }
        let mut op = op;
        let mut sub = op.only_region_mut().ops.remove(0);
        let mut concat = sub.only_region_mut().ops.remove(0);
        Rewrite::Replace(std::mem::take(&mut concat.only_region_mut().ops))
    }
}

/// `(a)+ → a+`: a quantified sub-regex whose body is a single *unquantified*
/// atom transfers the outer quantifier onto the atom directly. When the
/// inner atom is itself quantified (`(a{2,3}){4,7}`) the piece is left
/// alone — bound multiplication is not language-preserving.
struct MergeSubRegexQuantifier;

impl RewritePattern for MergeSubRegexQuantifier {
    fn name(&self) -> &'static str {
        "merge-sub-regex-quantifier"
    }

    fn apply(&self, op: Operation) -> Rewrite {
        if !op.is(names::PIECE) {
            return Rewrite::Unchanged(op);
        }
        let applicable = {
            let (atom, quant) = piece_parts(&op);
            quant.is_some() && atom.is(names::SUB_REGEX) && atom.only_region().len() == 1 && {
                let concat = &atom.only_region().ops[0];
                concat.only_region().len() == 1 && {
                    let (_, inner_quant) = piece_parts(&concat.only_region().ops[0]);
                    inner_quant.is_none()
                }
            }
        };
        if !applicable {
            return Rewrite::Unchanged(op);
        }
        let mut op = op;
        let pieces = &mut op.only_region_mut().ops;
        let outer_quant = pieces.pop().expect("quantifier present");
        let mut sub = pieces.pop().expect("sub-regex present");
        let mut concat = sub.only_region_mut().ops.remove(0);
        let mut inner_piece = concat.only_region_mut().ops.remove(0);
        let inner_atom = inner_piece.only_region_mut().ops.remove(0);
        Rewrite::Replace(vec![ops::piece(inner_atom, Some(outer_quant))])
    }
}

/// Bitmap folding: a group accepting all 256 characters is `.`, and a group
/// accepting exactly one character is that literal. (The MLIR-style
/// canonicalizations you get for free from a bitmap representation.)
struct SimplifyGroup;

impl RewritePattern for SimplifyGroup {
    fn name(&self) -> &'static str {
        "simplify-group"
    }

    fn apply(&self, op: Operation) -> Rewrite {
        if !op.is(names::GROUP) {
            return Rewrite::Unchanged(op);
        }
        let bits = op
            .attr(crate::ops::attrs::TARGET_CHARS)
            .and_then(mlir_lite::Attribute::as_bool_array)
            .expect("verified group");
        let count = bits.iter().filter(|b| **b).count();
        match count {
            256 => Rewrite::Replace(vec![ops::match_any_char()]),
            1 => {
                let c = bits.iter().position(|b| *b).expect("count == 1") as u8;
                Rewrite::Replace(vec![ops::match_char(c)])
            }
            _ => Rewrite::Unchanged(op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ast_to_ir, ir_to_pattern};
    use mlir_lite::Context;

    fn canonicalize(pattern: &str) -> String {
        let mut ir = ast_to_ir(&regex_frontend::parse(pattern).unwrap());
        let mut ctx = Context::new();
        ctx.register_dialect(crate::dialect());
        CanonicalizePass.run(&mut ir, &ctx).unwrap();
        ctx.verify(&ir).expect("canonical IR must verify");
        ir_to_pattern(&ir)
    }

    #[test]
    fn paper_examples() {
        assert_eq!(canonicalize("(abc)"), "abc");
        assert_eq!(canonicalize("(abc)+"), "(abc)+", "precedence must be respected");
        assert_eq!(canonicalize("(a+)"), "a+");
        assert_eq!(canonicalize("(a)+"), "a+");
        assert_eq!(canonicalize("(a{2,3}){4,7}"), "(a{2,3}){4,7}");
    }

    #[test]
    fn nested_parentheses_unwrap_fully() {
        assert_eq!(canonicalize("((a))"), "a");
        assert_eq!(canonicalize("((ab)c)"), "abc");
        assert_eq!(canonicalize("(((a)))+"), "a+");
    }

    #[test]
    fn alternations_inside_groups_are_preserved() {
        assert_eq!(canonicalize("(a|b)"), "(a|b)");
        assert_eq!(canonicalize("(a|b)+"), "(a|b)+");
        assert_eq!(canonicalize("x(a|b)y"), "x(a|b)y");
    }

    #[test]
    fn group_folding() {
        assert_eq!(canonicalize("[a]"), "a");
        assert_eq!(canonicalize("[^a]"), "[^a]");
        assert_eq!(canonicalize("[ab]"), "[ab]");
        // `[^...]` of everything-but-nothing is `.`: constructed via IR
        // directly since the parser cannot write a full class.
        let mut ir = crate::ops::root(
            true,
            true,
            vec![crate::ops::concatenation(vec![crate::ops::piece(
                crate::ops::group(vec![true; 256]),
                None,
            )])],
        );
        let mut ctx = Context::new();
        ctx.register_dialect(crate::dialect());
        CanonicalizePass.run(&mut ir, &ctx).unwrap();
        assert_eq!(ir_to_pattern(&ir), ".");
    }

    #[test]
    fn quantified_single_atom_group_merges_through_class() {
        assert_eq!(canonicalize("([ab])+"), "[ab]+");
        assert_eq!(canonicalize("(.)?"), ".?");
    }

    #[test]
    fn inner_quantifier_blocks_merge() {
        assert_eq!(canonicalize("(a+)+"), "(a+)+");
        assert_eq!(canonicalize("(a?)*"), "(a?)*");
    }

    #[test]
    fn idempotent() {
        for p in ["(abc)", "(a)+", "((ab)c)", "(a|b)x", "[a]{2,3}"] {
            let once = canonicalize(p);
            assert_eq!(canonicalize(&once), once, "not idempotent on {p}");
        }
    }
}
