//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_flat_map` / `prop_recursive`, tuple and range strategies,
//! `prop::collection::vec`, `prop::char::range`, regex-shaped `&str`
//! strategies (character classes, escapes, `{m,n}`/`*`/`+`/`?`
//! quantifiers, `\PC`), the [`prop_oneof!`] union macro, and the
//! [`proptest!`] test-harness macro.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** On failure the harness prints the generated inputs
//!   verbatim and re-raises the panic; cases are deterministic (seeded
//!   from the test's module path), so failures reproduce exactly.
//! * `prop_assert!` / `prop_assert_eq!` panic immediately instead of
//!   returning a `TestCaseError`.

use std::cell::{Cell, OnceCell};
use std::marker::PhantomData;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator with an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Generator seeded from a test name (deterministic across runs).
    pub fn from_name(name: &str) -> TestRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(hash)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform `usize` in the half-open range.
    pub fn in_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<R: Into<String>, P: Fn(&Self::Value) -> bool>(
        self,
        reason: R,
        pred: P,
    ) -> Filter<Self, P> {
        Filter { inner: self, pred, reason: reason.into() }
    }

    /// Generate an intermediate value, then generate from a strategy
    /// derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf, `expand` wraps an
    /// inner strategy into a deeper one. `depth` bounds the nesting; the
    /// remaining parameters exist for upstream signature compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: 'static,
        F: FnOnce(SBoxed<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let data = Rc::new(RecursiveData {
            leaf: SBoxed::new(self),
            expanded: OnceCell::new(),
            depth: Cell::new(0),
            max_depth: depth,
        });
        let handle = Recursive { data: Rc::clone(&data) };
        let expanded = expand(SBoxed::new(handle));
        let _ = data.expanded.set(SBoxed::new(expanded));
        Recursive { data }
    }

    /// Type-erase the strategy (shared, clonable).
    fn sboxed(self) -> SBoxed<Self::Value>
    where
        Self: 'static,
    {
        SBoxed::new(self)
    }
}

/// Object-safe mirror of [`Strategy`], used for type erasure.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A shared, clonable, type-erased strategy.
pub struct SBoxed<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for SBoxed<T> {
    fn clone(&self) -> SBoxed<T> {
        SBoxed { inner: Rc::clone(&self.inner) }
    }
}

impl<T> SBoxed<T> {
    fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> SBoxed<T> {
        SBoxed { inner: Rc::new(strategy) }
    }
}

impl<T> Strategy for SBoxed<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, P> {
    inner: S,
    pred: P,
    reason: String,
}

impl<S: Strategy, P: Fn(&S::Value) -> bool> Strategy for Filter<S, P> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter gave up after 10000 rejections: {}", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

struct RecursiveData<T> {
    leaf: SBoxed<T>,
    expanded: OnceCell<SBoxed<T>>,
    depth: Cell<u32>,
    max_depth: u32,
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    data: Rc<RecursiveData<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Recursive<T> {
        Recursive { data: Rc::clone(&self.data) }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let depth = self.data.depth.get();
        match self.data.expanded.get() {
            Some(expanded) if depth < self.data.max_depth => {
                self.data.depth.set(depth + 1);
                let value = expanded.generate(rng);
                self.data.depth.set(depth);
                value
            }
            _ => self.data.leaf.generate(rng),
        }
    }
}

/// Weighted union of strategies (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, SBoxed<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, SBoxed<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strategy) in &self.arms {
            if pick < u64::from(*weight) {
                return strategy.generate(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("weights sum checked in Union::new")
    }
}

/// Helper used by [`prop_oneof!`] to erase arm types.
pub fn into_sboxed<S: Strategy + 'static>(strategy: S) -> SBoxed<S::Value> {
    SBoxed::new(strategy)
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + (rng.next_u64() as i128 % (hi - lo))) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                (lo + (rng.next_u64() as i128 % (hi - lo + 1))) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(8) < 7 {
            (b' ' + rng.below(95) as u8) as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
}

// ---------------------------------------------------------------------------
// Regex-shaped string strategies
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PatternToken {
    /// Union of inclusive char ranges; `negated` samples the printable
    /// ASCII complement.
    Class { ranges: Vec<(char, char)>, negated: bool },
    /// `\PC` — any printable, occasionally multi-byte.
    AnyPrintable,
}

#[derive(Debug, Clone)]
struct PatternPiece {
    token: PatternToken,
    min: u32,
    max: u32,
}

/// Parse the small regex subset used as string strategies: literals,
/// escapes, `[...]` classes with ranges, `\PC`, and `* + ? {m,n}`
/// quantifiers.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let token = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') | Some('p') => {
                        i += 2; // skip the property letter (e.g. `C`)
                        PatternToken::AnyPrintable
                    }
                    Some(&c) => {
                        i += 1;
                        PatternToken::Class { ranges: vec![(c, c)], negated: false }
                    }
                    None => break,
                }
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                let negated = chars.get(i) == Some(&'^');
                if negated {
                    i += 1;
                }
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|c| *c != ']') {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                i += 1; // closing `]`
                PatternToken::Class { ranges, negated }
            }
            c => {
                i += 1;
                PatternToken::Class { ranges: vec![(c, c)], negated: false }
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..].iter().position(|c| *c == '}').expect("unclosed {") + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                    None => {
                        let n: u32 = body.trim().parse().unwrap();
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(PatternPiece { token, min, max });
    }
    pieces
}

fn generate_token(token: &PatternToken, rng: &mut TestRng, out: &mut String) {
    match token {
        PatternToken::AnyPrintable => {
            if rng.below(16) == 0 {
                out.push(['é', 'λ', '→', '愛'][rng.below(4) as usize]);
            } else {
                out.push((b' ' + rng.below(95) as u8) as char);
            }
        }
        PatternToken::Class { ranges, negated } => {
            if *negated {
                loop {
                    let c = (b' ' + rng.below(95) as u8) as char;
                    if !ranges.iter().any(|(lo, hi)| (*lo..=*hi).contains(&c)) {
                        out.push(c);
                        return;
                    }
                }
            }
            let total: u64 = ranges.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = *hi as u64 - *lo as u64 + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick as u32).expect("contiguous range"));
                    return;
                }
                pick -= span;
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
            for _ in 0..count {
                generate_token(&piece.token, rng, &mut out);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The `prop` namespace
// ---------------------------------------------------------------------------

/// Namespaced strategy constructors mirroring upstream's `prop::` tree.
pub mod prop {
    /// Character strategies.
    pub mod char {
        use crate::{Strategy, TestRng};

        /// Inclusive character range strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct CharRange {
            lo: u32,
            hi: u32,
        }

        /// Characters in `[lo, hi]`.
        pub fn range(lo: char, hi: char) -> CharRange {
            assert!(lo <= hi);
            CharRange { lo: lo as u32, hi: hi as u32 }
        }

        impl Strategy for CharRange {
            type Value = char;
            fn generate(&self, rng: &mut TestRng) -> char {
                loop {
                    let v = self.lo + rng.below(u64::from(self.hi - self.lo) + 1) as u32;
                    if let Some(c) = char::from_u32(v) {
                        return c;
                    }
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Collection length specification: a fixed size or a half-open
        /// range (mirrors upstream's `Into<SizeRange>` argument).
        #[derive(Debug, Clone)]
        pub struct SizeRange(std::ops::Range<usize>);

        impl From<usize> for SizeRange {
            fn from(len: usize) -> SizeRange {
                SizeRange(len..len + 1)
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(range: std::ops::Range<usize>) -> SizeRange {
                SizeRange(range)
            }
        }

        /// `Vec` strategy with a length range.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.in_range(self.size.0.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Numeric strategies.
    pub mod num {
        /// `u8` strategies.
        pub mod u8 {
            use crate::{Strategy, TestRng};

            /// Any `u8`.
            #[derive(Debug, Clone, Copy)]
            pub struct U8Any;

            /// Any `u8`.
            pub const ANY: U8Any = U8Any;

            impl Strategy for U8Any {
                type Value = u8;
                fn generate(&self, rng: &mut TestRng) -> u8 {
                    rng.next_u64() as u8
                }
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Any `bool`.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Any `bool`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Test-harness configuration and macros
// ---------------------------------------------------------------------------

/// Per-block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Upstream's shrink-iteration bound; accepted for signature
    /// compatibility but unused (this stand-in never shrinks).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Weighted (or uniform) choice between strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::into_sboxed($strategy))),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::into_sboxed($strategy))),+])
    };
}

/// Assertion inside a property (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declare property tests: each `fn name(binding in strategy, ...)` runs
/// `cases` times with fresh deterministic inputs; failures print the
/// generated inputs and re-panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let strategy = ($($strategy,)+);
            for case in 0..config.cases {
                let ($($binding,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let description = format!(
                    concat!($("  ", stringify!($binding), " = {:?}\n"),+),
                    $(&$binding),+
                );
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {} failed at case {}/{} with inputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        description
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, SBoxed, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.chars().count()), "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn class_with_specials_and_escapes() {
        let mut rng = TestRng::new(2);
        let pattern = "[-a-e().|*+?{}\\[\\]^$\\\\0-9]{0,12}";
        for _ in 0..200 {
            let s = Strategy::generate(&pattern, &mut rng);
            assert!(s.chars().count() <= 12);
            for c in s.chars() {
                assert!(
                    "-().|*+?{}[]^$\\".contains(c)
                        || c.is_ascii_digit()
                        || ('a'..='e').contains(&c),
                    "unexpected {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn oneof_weights_are_respected() {
        let strategy = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = TestRng::new(3);
        let ones = (0..1000).filter(|_| strategy.generate(&mut rng) == 1).count();
        assert!(ones > 800, "{ones}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        let strategy = any::<u8>().prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = TestRng::new(4);
        let mut saw_node = false;
        for _ in 0..200 {
            let tree = strategy.generate(&mut rng);
            assert!(depth(&tree) <= 5);
            saw_node |= matches!(tree, Tree::Node(_));
        }
        assert!(saw_node, "recursion never expanded");
    }

    #[test]
    fn filter_retries() {
        let even = (0u32..100).prop_filter("must be even", |v| v % 2 == 0);
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn harness_macro_runs(v in 0u32..10, s in "[ab]{1,3}") {
            prop_assert!(v < 10);
            prop_assert_eq!(s.is_empty(), false);
        }
    }
}
