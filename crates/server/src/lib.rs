//! `cicero-server` — a std-only HTTP/1.1 match-serving subsystem.
//!
//! The paper frames Cicero as a datacenter offload target: a regex
//! accelerator sitting behind deep-packet-inspection and log-scanning
//! services (§1). This crate is the host-side serving tier for that
//! story — a dependency-free HTTP front door over the existing
//! [`Runtime`] (worker pool + sharded LRU compiled-program cache), built
//! from `std::net` only:
//!
//! * **Readiness loop** — the accept thread owns every idle keep-alive
//!   connection in a *parked* set and polls it (nonblocking `peek`) for
//!   readability. Only connections with request bytes actually waiting
//!   are dispatched to the worker pool, so connection count decouples
//!   from handler-thread count: a thousand idle keep-alive clients cost
//!   one poller, not a thousand blocked workers. After a response, a
//!   worker waits [`KEEPALIVE_GRACE`] for a pipelined follow-up (the
//!   closed-loop fast path) and hands the connection back to the poller
//!   when none arrives — or after [`KEEPALIVE_BURST`] requests, so one
//!   fast client cannot monopolize a worker.
//! * **Admission control** — ready connections flow through a *bounded*
//!   dispatch queue ([`ServerOptions::queue_depth`]); total open
//!   connections are capped at `workers + queue_depth`. Beyond the cap a
//!   new connection is answered `503` and closed immediately, with a
//!   `Retry-After` hint scaled from the observed `server.queue_wait_ms`
//!   p50: overload sheds load at the front door instead of piling up
//!   latency, and a rejected client always gets a response, never a
//!   hang.
//! * **Endpoints** — `POST /match` (per-pattern verdicts over one input),
//!   `POST /scan` (multi-pattern set over 500-byte chunks, with
//!   all-matches per-pattern counts via [`cicero_isa::run_all`]),
//!   `GET /metrics` (the unified telemetry in summary or JSONL form),
//!   `GET /healthz`, and `POST /shutdown` (begin draining).
//! * **Per-request budgets** — `X-Cicero-Fuel` and `X-Cicero-Deadline-Ms`
//!   headers map onto the runtime's [`Budget`]; a tripped budget is a
//!   typed `429` carrying whatever partial progress was made.
//! * **Backend selection** — requests execute on the host-native
//!   bit-parallel engine by default (`cicero-hostexec`); the
//!   `X-Cicero-Backend: sim` header routes a request through the
//!   cycle-level simulator instead (and `host` forces the default
//!   explicitly). The two backends share one compiled-program cache
//!   entry per pattern.
//! * **Graceful drain** — shutdown (via [`ServerHandle::shutdown`] or
//!   `POST /shutdown`) stops accepting, closes the listener, and sweeps
//!   the parked set: connections with a request already waiting are
//!   dispatched and served, truly idle ones are closed, and in-flight
//!   requests finish under [`ServerOptions::drain_timeout`]. The sweep
//!   ordering (dispatch-readable-before-close) is model-checked by the
//!   `cicero-permute` drain protocol; the [`DrainReport`] says whether
//!   the drain completed.
//! * **Telemetry** — `server.*` metrics (requests by endpoint and status,
//!   queue-depth and open-connection gauges, latency histogram, admission
//!   rejections) join the existing `runtime.*` / `sim.*` namespaces on
//!   one collector, so `GET /metrics` shows the whole stack.
//! * **Ruleset registry** — `PUT/GET/DELETE /rulesets/{id}` manage
//!   named, content-hash-versioned compiled pattern sets;
//!   `POST /scan?ruleset={id}` (and the chunked-transfer
//!   `POST /scan/stream`) serve against them with zero-downtime hot
//!   swaps (see [`registry`]). Per-tenant quotas and token-bucket rate
//!   limits key on `X-Cicero-Tenant` (see [`tenants`]).
//!
//! The CLI surfaces this as `cicero serve`.

pub mod api;
pub mod http;
pub mod json;
pub mod registry;
pub mod tenants;

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cicero_core::{Backend, CompilerOptions};
use cicero_runtime::{Runtime, RuntimeOptions};
use cicero_sim::ArchConfig;
use cicero_telemetry::{FlightRecorder, FlightRecorderOptions, Telemetry, TraceContext};

pub use cicero_runtime::Budget;

/// How long the poller sleeps when an iteration made no progress (no
/// accepts, no reclaimed connections, nothing readable).
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Socket read timeout for a dispatched connection: its request bytes
/// are already waiting (the poller saw them), so this only bounds how
/// long a client may stall mid-request before the worker gives up.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// After writing a response, how long a worker waits for the next
/// request before re-parking the connection. Closed-loop clients send
/// their follow-up within this window, keeping the hot path free of
/// poller round-trips; anything slower costs one readiness-loop cycle.
const KEEPALIVE_GRACE: Duration = Duration::from_millis(5);

/// Fairness bound: after this many grace-window requests on one
/// dispatch, the connection goes back to the poller even if more are
/// pipelined, so one fast closed-loop client cannot monopolize a worker
/// while ready connections sit parked.
const KEEPALIVE_BURST: usize = 32;

/// Ceiling on the scaled `Retry-After` admission hint, in seconds.
const MAX_RETRY_AFTER_SECS: u64 = 30;

/// Latency histogram bucket upper bounds, in milliseconds.
const LATENCY_BUCKETS_MS: &[f64] =
    &[0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0];

/// Construction-time knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Listen address; port `0` binds an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Handler threads serving dispatched (readable) connections. Idle
    /// keep-alive connections are parked on the poller and cost no
    /// worker.
    pub workers: usize,
    /// Bound on ready-but-unserved dispatches. Total open connections
    /// are capped at `workers + queue_depth`; beyond that, new
    /// connections are rejected with `503`.
    pub queue_depth: usize,
    /// How long shutdown waits for queued + in-flight requests to finish.
    pub drain_timeout: Duration,
    /// Options for the inner matching [`Runtime`]. The default serves
    /// with the host-native backend ([`Backend::Host`]); a request can
    /// pick the cycle-level simulator with `X-Cicero-Backend: sim`.
    pub runtime: RuntimeOptions,
    /// Architecture simulated when a request does not name one.
    pub config: ArchConfig,
    /// Flight-recorder sizing and slow-trace policy (served at
    /// `GET /debug/traces`).
    pub recorder: FlightRecorderOptions,
    /// When set, the retained traces are dumped to this path as Chrome
    /// `trace_event` JSON on graceful drain.
    pub trace_dump: Option<std::path::PathBuf>,
    /// When set, ruleset artifacts persist here (`{id}.ruleset`) and are
    /// restored on the next bind.
    pub ruleset_dir: Option<std::path::PathBuf>,
    /// Per-tenant admission limits (quota + token bucket), keyed on the
    /// `X-Cicero-Tenant` header. Disabled by default.
    pub tenants: tenants::TenantPolicy,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:8787".to_owned(),
            workers: 4,
            queue_depth: 64,
            drain_timeout: Duration::from_millis(5000),
            runtime: RuntimeOptions {
                compiler: CompilerOptions::optimized().with_backend(Backend::Host),
                ..RuntimeOptions::default()
            },
            config: ArchConfig::new_organization(16, 1),
            recorder: FlightRecorderOptions::default(),
            trace_dump: None,
            ruleset_dir: None,
            tenants: tenants::TenantPolicy::unlimited(),
        }
    }
}

/// What happened during shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every worker finished (queued + in-flight requests all
    /// served) before [`ServerOptions::drain_timeout`].
    pub drained: bool,
    /// Wall-clock time the drain took.
    pub wall: Duration,
    /// Requests served over the server's lifetime.
    pub requests: u64,
    /// Connections rejected at admission (`503`) over the lifetime.
    pub rejected: u64,
}

/// State shared between the poller, the workers, and handles.
pub(crate) struct Shared {
    pub(crate) runtime: Runtime,
    pub(crate) telemetry: Telemetry,
    pub(crate) recorder: FlightRecorder,
    pub(crate) registry: registry::RulesetRegistry,
    pub(crate) tenants: tenants::TenantGovernor,
    pub(crate) config: ArchConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) queued: AtomicUsize,
    pub(crate) open: AtomicUsize,
    pub(crate) in_flight: AtomicUsize,
    pub(crate) requests: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) next_request_id: AtomicU64,
}

impl Shared {
    pub(crate) fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The request id a response is tagged with: the client-supplied
    /// `X-Cicero-Request-Id` when present, a minted `req-N` otherwise.
    pub(crate) fn request_id_for(&self, request: &http::Request) -> String {
        match request.header("x-cicero-request-id") {
            Some(id) if !id.is_empty() => id.to_owned(),
            _ => format!("req-{}", self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1),
        }
    }

    /// Refresh the gauges surfaced by `GET /metrics`.
    pub(crate) fn refresh_gauges(&self) {
        self.telemetry.gauge_set("server.queue_depth", self.queued.load(Ordering::SeqCst) as f64);
        self.telemetry
            .gauge_set("server.open_connections", self.open.load(Ordering::SeqCst) as f64);
        self.telemetry.gauge_set("server.in_flight", self.in_flight.load(Ordering::SeqCst) as f64);
        self.telemetry.gauge_set("trace.retained", self.recorder.len() as f64);
        let stats = self.runtime.cache().stats();
        let lookups = stats.hits + stats.misses;
        if lookups > 0 {
            self.telemetry.gauge_set("server.cache_hit_ratio", stats.hits as f64 / lookups as f64);
        }
    }

    /// A connection is gone (closed by us or by the peer).
    fn release_connection(&self) {
        self.open.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin draining: the poller stops taking connections and
    /// [`Server::run`] returns once queued + in-flight requests finish
    /// (or the drain timeout passes). Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::SeqCst)
    }
}

/// A connection owned by the serving tier: parked on the poller between
/// requests, moved to a worker while one is being served.
struct Conn {
    stream: TcpStream,
    /// When the poller first saw request bytes waiting (cleared on every
    /// dispatch): the epoch for the admission-queue wait.
    ready_at: Option<Instant>,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    options: ServerOptions,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listen socket and build the inner runtime with a fresh
    /// telemetry collector.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(options: ServerOptions) -> std::io::Result<Server> {
        Server::bind_with_telemetry(options, Telemetry::new())
    }

    /// [`Server::bind`] with a caller-supplied collector (so the embedding
    /// process can export the metrics after shutdown).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_telemetry(
        options: ServerOptions,
        telemetry: Telemetry,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let runtime = Runtime::new(options.runtime).with_telemetry(telemetry.clone());
        let registry =
            registry::RulesetRegistry::new(options.ruleset_dir.clone(), telemetry.clone());
        registry.load_dir(&runtime).map_err(std::io::Error::other)?;
        let tenants = tenants::TenantGovernor::new(options.tenants, telemetry.clone());
        let shared = Arc::new(Shared {
            runtime,
            telemetry,
            recorder: FlightRecorder::new(options.recorder),
            registry,
            tenants,
            config: options.config.clone(),
            shutdown: AtomicBool::new(false),
            queued: AtomicUsize::new(0),
            open: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            next_request_id: AtomicU64::new(0),
        });
        Ok(Server { listener, options, shared })
    }

    /// The bound address (resolves the ephemeral port when `addr` ended
    /// in `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A clonable remote control (shutdown, liveness queries).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The telemetry collector every request reports into.
    pub fn telemetry(&self) -> Telemetry {
        self.shared.telemetry.clone()
    }

    /// The flight recorder request traces land in (also served at
    /// `GET /debug/traces`).
    pub fn recorder(&self) -> FlightRecorder {
        self.shared.recorder.clone()
    }

    /// Accept and serve until shutdown is requested, then drain.
    ///
    /// Blocks the calling thread for the server's whole lifetime; the
    /// readiness loop runs here (accept, park, poll for readability,
    /// dispatch) while `workers` handler threads serve ready
    /// connections from the bounded dispatch queue.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection failures are handled
    /// (and counted) without stopping the server.
    pub fn run(self) -> std::io::Result<DrainReport> {
        self.listener.set_nonblocking(true)?;
        let workers = self.options.workers.max(1);
        let depth = self.options.queue_depth.max(1);
        // Past this many open connections, admission rejects: every
        // worker busy and the dispatch queue full, with nothing parked.
        let capacity = workers + depth;
        let (tx, rx) = mpsc::sync_channel::<Conn>(depth);
        let rx = Arc::new(Mutex::new(rx));
        // Workers hand idle keep-alive connections back through here.
        let (park_tx, park_rx) = mpsc::channel::<Conn>();
        let live = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for worker in 0..workers {
            let shared = Arc::clone(&self.shared);
            let rx = Arc::clone(&rx);
            let park_tx = park_tx.clone();
            let live = Arc::clone(&live);
            live.fetch_add(1, Ordering::SeqCst);
            joins.push(std::thread::Builder::new().name(format!("cicero-serve-{worker}")).spawn(
                move || {
                    loop {
                        // Hold the lock only for the dequeue, not
                        // while serving.
                        let next = {
                            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                            guard.recv()
                        };
                        let Ok(conn) = next else {
                            break; // queue closed and fully drained
                        };
                        shared.queued.fetch_sub(1, Ordering::SeqCst);
                        match serve_dispatch(&shared, conn) {
                            Some(conn) => {
                                // Idle again: back to the poller. If the
                                // poller is gone (post-drain), close.
                                if conn.stream.set_nonblocking(true).is_err()
                                    || park_tx.send(conn).is_err()
                                {
                                    shared.release_connection();
                                }
                            }
                            None => shared.release_connection(),
                        }
                    }
                    live.fetch_sub(1, Ordering::SeqCst);
                },
            )?);
        }
        drop(park_tx);

        let mut parked: Vec<Conn> = Vec::new();
        while !self.shared.is_draining() {
            let mut progressed = false;
            // Accept everything waiting, up to the connection cap.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        progressed = true;
                        self.shared.telemetry.counter_add("server.connections", 1);
                        if self.shared.open.load(Ordering::SeqCst) >= capacity {
                            reject_at_admission(&self.shared, stream);
                        } else {
                            self.shared.open.fetch_add(1, Ordering::SeqCst);
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_ok() {
                                parked.push(Conn { stream, ready_at: None });
                            } else {
                                self.shared.release_connection();
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            // Reclaim connections workers finished with.
            while let Ok(conn) = park_rx.try_recv() {
                parked.push(conn);
                progressed = true;
            }
            // Dispatch whatever became readable.
            progressed |= poll_parked(&self.shared, &mut parked, &tx, false);
            if !progressed {
                std::thread::sleep(ACCEPT_POLL);
            }
        }

        // Drain: close the front door, then sweep the parked set —
        // connections with a request already waiting are dispatched and
        // served, truly idle ones are closed. (The sweep ordering is
        // model-checked by cicero-permute's DrainModel: closing parked
        // connections indiscriminately drops requests.) Dropping `tx`
        // afterwards makes `recv` fail once the queue empties, so each
        // worker exits after its current connection.
        drop(self.listener);
        let drain_start = Instant::now();
        let deadline = drain_start + self.options.drain_timeout;
        while self.shared.open.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            while let Ok(conn) = park_rx.try_recv() {
                parked.push(conn);
            }
            poll_parked(&self.shared, &mut parked, &tx, true);
            if self.shared.open.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Anything still parked at the deadline is abandoned.
        for conn in parked.drain(..) {
            drop(conn);
            self.shared.release_connection();
        }
        drop(tx);
        while live.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let drained = live.load(Ordering::SeqCst) == 0;
        if drained {
            for join in joins {
                let _ = join.join();
            }
        }
        // Workers that missed the deadline are detached; their sockets
        // have read timeouts, so they exit shortly after — but the drain
        // is reported as incomplete.
        let wall = drain_start.elapsed();
        self.shared.telemetry.counter_add("server.drains", 1);
        self.shared.telemetry.gauge_set("server.drain_ms", wall.as_secs_f64() * 1e3);
        if let Some(path) = &self.options.trace_dump {
            match std::fs::write(path, self.shared.recorder.render_chrome_json()) {
                Ok(()) => self.shared.telemetry.counter_add("trace.dumps", 1),
                Err(_) => self.shared.telemetry.counter_add("trace.dump_errors", 1),
            }
        }
        self.shared.refresh_gauges();
        Ok(DrainReport {
            drained,
            wall,
            requests: self.shared.requests.load(Ordering::SeqCst),
            rejected: self.shared.rejected.load(Ordering::SeqCst),
        })
    }
}

/// One readiness pass over the parked set: dispatch connections with
/// request bytes waiting, close ones the peer hung up on. When
/// `draining`, idle connections are closed instead of staying parked.
/// Returns whether anything happened.
fn poll_parked(
    shared: &Shared,
    parked: &mut Vec<Conn>,
    tx: &SyncSender<Conn>,
    draining: bool,
) -> bool {
    let mut progressed = false;
    let mut keep = Vec::with_capacity(parked.len());
    for mut conn in parked.drain(..) {
        let mut probe = [0u8; 1];
        match conn.stream.peek(&mut probe) {
            // Peer closed while parked.
            Ok(0) => {
                shared.release_connection();
                progressed = true;
            }
            // Request bytes waiting: hand to a worker. The dispatch gets
            // blocking reads back; the gauge counts it as queued from
            // before the send so a fast worker's decrement cannot
            // underflow (ordering model-checked by AdmissionModel).
            Ok(_) => {
                if conn.ready_at.is_none() {
                    conn.ready_at = Some(Instant::now());
                }
                if conn.stream.set_nonblocking(false).is_err()
                    || conn.stream.set_read_timeout(Some(READ_TIMEOUT)).is_err()
                {
                    shared.release_connection();
                    progressed = true;
                    continue;
                }
                shared.queued.fetch_add(1, Ordering::SeqCst);
                match tx.try_send(conn) {
                    Ok(()) => progressed = true,
                    // Queue full: back to the parked set (ready_at keeps
                    // accruing the wait) and retry next pass.
                    Err(TrySendError::Full(conn)) => {
                        shared.queued.fetch_sub(1, Ordering::SeqCst);
                        if conn.stream.set_nonblocking(true).is_ok() {
                            keep.push(conn);
                        } else {
                            shared.release_connection();
                        }
                    }
                    Err(TrySendError::Disconnected(conn)) => {
                        shared.queued.fetch_sub(1, Ordering::SeqCst);
                        drop(conn);
                        shared.release_connection();
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                ) =>
            {
                if draining {
                    shared.release_connection();
                    progressed = true;
                } else {
                    keep.push(conn);
                }
            }
            Err(_) => {
                shared.release_connection();
                progressed = true;
            }
        }
    }
    *parked = keep;
    progressed
}

/// The `Retry-After` hint on every backpressure answer — admission
/// `503`s, budget `429`s, and tenant-limit `429`s all call this one
/// function: the p50 of the observed `server.queue_wait_ms` histogram
/// rounded up to whole seconds, clamped to `[1, MAX_RETRY_AFTER_SECS]`.
/// With no observations yet there is nothing to scale from, so the
/// floor (1s) is used.
pub(crate) fn retry_after_secs(telemetry: &Telemetry) -> u64 {
    let Some(hist) = telemetry.histogram("server.queue_wait_ms") else {
        return 1;
    };
    if hist.count == 0 {
        return 1;
    }
    let target = hist.count.div_ceil(2);
    let mut cumulative = 0u64;
    let mut p50_ms = hist.max;
    for (i, &bucket) in hist.bucket_counts.iter().enumerate() {
        cumulative += bucket;
        if cumulative >= target {
            // The overflow bucket has no upper bound; fall back to the
            // largest observation.
            p50_ms = hist.bounds.get(i).copied().unwrap_or(hist.max);
            break;
        }
    }
    ((p50_ms / 1e3).ceil() as u64).clamp(1, MAX_RETRY_AFTER_SECS)
}

/// At capacity: answer `503` with a retry hint on the poller thread and
/// close. The write gets a short timeout so a slow-reading client cannot
/// stall admission for everyone else. The rejection never read the
/// request head, so the echoed request id is always server-minted.
fn reject_at_admission(shared: &Shared, mut stream: TcpStream) {
    shared.rejected.fetch_add(1, Ordering::SeqCst);
    shared.telemetry.counter_add("server.rejected", 1);
    shared.telemetry.counter_add("server.requests.other.503", 1);
    let request_id = format!("req-{}", shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let body = cicero_telemetry::JsonObject::new()
        .field("error", "server at capacity; connection queue is full")
        .finish();
    let _ = http::Response::json(503, body)
        .with_header("retry-after", retry_after_secs(&shared.telemetry).to_string())
        .with_header("x-cicero-request-id", request_id)
        .write_to(&mut stream, true);
    let _ = stream.flush();
}

/// The per-endpoint label used in `server.requests.<endpoint>.<status>`.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/match" => "match",
        "/scan" => "scan",
        "/scan/stream" => "scan_stream",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/shutdown" => "shutdown",
        _ if path == "/rulesets" || path.starts_with("/rulesets/") => "rulesets",
        _ if path == "/debug/traces" || path.starts_with("/debug/traces/") => "traces",
        _ => "other",
    }
}

/// Whether `path` is subject to per-tenant admission (the scan/match
/// work endpoints; control-plane and observability paths are exempt so
/// a rate-limited tenant can still read its metrics).
fn tenant_governed(path: &str) -> bool {
    matches!(path, "/match" | "/scan" | "/scan/stream")
}

/// Serve one dispatched (readable) connection: the waiting request, plus
/// any follow-ups that arrive within [`KEEPALIVE_GRACE`] of a response.
///
/// Returns `Some(conn)` to re-park the still-open idle connection (the
/// caller routes it back to the poller), `None` when it was closed (the
/// caller releases the open-connection slot).
///
/// The first request's latency epoch is the instant the poller saw its
/// bytes arrive, so the dispatch-queue wait (observed into
/// `server.queue_wait_ms` and visible as the `admission.queue_wait`
/// span) counts against it; grace-window follow-ups start their clock
/// when their head finishes reading.
fn serve_dispatch(shared: &Shared, mut conn: Conn) -> Option<Conn> {
    let ready_at = conn.ready_at.take().unwrap_or_else(Instant::now);
    let queue_wait = ready_at.elapsed();
    shared.telemetry.observe_with(
        "server.queue_wait_ms",
        queue_wait.as_secs_f64() * 1e3,
        LATENCY_BUCKETS_MS,
    );
    let mut first_request = Some((ready_at, queue_wait));
    let mut served_this_dispatch = 0usize;
    loop {
        match http::read_request(&mut conn.stream) {
            Ok(request) => {
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
                let (epoch, queue_wait) = match first_request.take() {
                    Some((ready_at, wait)) => (ready_at, Some(wait)),
                    None => (Instant::now(), None),
                };
                let request_id = shared.request_id_for(&request);
                let ctx = TraceContext::with_epoch(&request_id, epoch);
                let root = ctx.root_span("request");
                root.annotate("method", request.method.as_str());
                root.annotate("path", request.path.as_str());
                root.annotate("queue_depth", shared.queued.load(Ordering::SeqCst));
                if let Some(wait) = queue_wait {
                    ctx.record_complete(
                        Some(root.id()),
                        "admission.queue_wait",
                        Duration::ZERO,
                        wait,
                        Vec::new(),
                    );
                }

                // Per-tenant admission happens after the head is read
                // (the tenant is a header) but before any work; the
                // permit is held for the duration of the handler so the
                // in-flight quota reflects real concurrency.
                let response = match admit_tenant(shared, &request) {
                    Ok(_permit) => api::handle(shared, &request, &root),
                    Err(denied) => denied,
                }
                .with_header("x-cicero-request-id", request_id.clone());
                let status = response.status;
                // Draining closes after the response: the client gets its
                // answer, the worker gets free to exit.
                let close = request.wants_close() || shared.is_draining();
                let write_result = {
                    let span = root.child("response.write");
                    span.annotate("bytes", response.body.len());
                    response.write_to(&mut conn.stream, close)
                };
                let latency_ms = epoch.elapsed().as_secs_f64() * 1e3;
                root.annotate("status", u64::from(status));
                root.annotate("latency_ms", latency_ms);
                drop(root);

                let slow = shared.recorder.record(ctx.finish());
                shared.telemetry.counter_add("trace.requests", 1);
                if slow {
                    shared.telemetry.counter_add("trace.slow", 1);
                }
                shared.telemetry.counter_add("server.requests", 1);
                shared.telemetry.counter_add(
                    &format!("server.requests.{}.{}", endpoint_label(&request.path), status),
                    1,
                );
                shared.telemetry.observe_with_exemplar(
                    "server.latency_ms",
                    latency_ms,
                    LATENCY_BUCKETS_MS,
                    &request_id,
                );
                shared.requests.fetch_add(1, Ordering::SeqCst);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                if write_result.is_err() || close {
                    return None;
                }
                served_this_dispatch += 1;
                if served_this_dispatch >= KEEPALIVE_BURST {
                    return Some(conn); // fairness: let parked peers in
                }
                // Pipelined follow-up fast path: wait briefly before
                // giving the connection back to the poller.
                if conn.stream.set_read_timeout(Some(KEEPALIVE_GRACE)).is_err() {
                    return None;
                }
            }
            Err(http::ReadError::Eof) => return None,
            Err(http::ReadError::IdleTimeout) => {
                // Idle again. During a drain the poller would just close
                // it, so do that here.
                return if shared.is_draining() { None } else { Some(conn) };
            }
            Err(http::ReadError::Io(_)) => return None,
            Err(error @ http::ReadError::Malformed(_)) => {
                answer_read_error(shared, &mut conn.stream, 400, &error);
                return None;
            }
            Err(error @ http::ReadError::TooLarge(_)) => {
                answer_read_error(shared, &mut conn.stream, 413, &error);
                return None;
            }
        }
    }
}

/// Per-tenant admission for the work endpoints: `Ok` carries the permit
/// to hold while the request is served (`None` when ungoverned), `Err`
/// the ready-to-send `429` with the same p50-scaled `Retry-After` as
/// every other backpressure path.
fn admit_tenant(
    shared: &Shared,
    request: &http::Request,
) -> Result<Option<tenants::TenantPermit>, http::Response> {
    if !tenant_governed(&request.path) || !shared.tenants.policy().is_active() {
        return Ok(None);
    }
    let tenant = request.header("x-cicero-tenant").unwrap_or(tenants::DEFAULT_TENANT);
    match shared.tenants.admit(tenant) {
        Ok(permit) => Ok(Some(permit)),
        Err(denial) => {
            let reason = match denial {
                tenants::TenantDenial::RateLimited => "rate limit exceeded",
                tenants::TenantDenial::QuotaExceeded => "in-flight quota exceeded",
            };
            let body = cicero_telemetry::JsonObject::new()
                .field("error", format!("tenant {tenant:?}: {reason}"))
                .field("tenant", tenant)
                .field("reason", denial.label())
                .finish();
            Err(http::Response::json(429, body)
                .with_header("retry-after", retry_after_secs(&shared.telemetry).to_string()))
        }
    }
}

fn answer_read_error(
    shared: &Shared,
    stream: &mut TcpStream,
    status: u16,
    error: &http::ReadError,
) {
    shared.telemetry.counter_add("server.requests", 1);
    shared.telemetry.counter_add(&format!("server.requests.other.{status}"), 1);
    let body = cicero_telemetry::JsonObject::new().field("error", error.to_string()).finish();
    let _ = http::Response::json(status, body).write_to(stream, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn start(
        options: ServerOptions,
    ) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<DrainReport>) {
        let server = Server::bind(options).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        (addr, handle, join)
    }

    fn options() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 8,
            drain_timeout: Duration::from_millis(3000),
            // Inherit the server's default compiler options (host
            // backend) so the test fleet exercises the served default.
            runtime: RuntimeOptions { jobs: 1, ..ServerOptions::default().runtime },
            ..ServerOptions::default()
        }
    }

    /// One request over a fresh connection; returns the raw response.
    fn roundtrip_raw(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        raw
    }

    /// One request over a fresh connection; returns (status, body).
    fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String) {
        parse_response(&roundtrip_raw(addr, request))
    }

    /// Why [`read_one_response`] could not produce a full response.
    #[derive(Debug)]
    enum ResponseReadError {
        /// The stream ended before the head terminator.
        EarlyEof,
        /// The head parsed but carried no `content-length`, so the body
        /// length is unknowable (e.g. a header-only drain-path answer).
        MissingContentLength { head: String },
        /// The `content-length` value was not a number.
        BadContentLength(String),
        /// The transport failed mid-response.
        Io(std::io::Error),
    }

    impl std::fmt::Display for ResponseReadError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                ResponseReadError::EarlyEof => write!(f, "eof before end of response head"),
                ResponseReadError::MissingContentLength { head } => {
                    write!(f, "response head has no content-length: {head:?}")
                }
                ResponseReadError::BadContentLength(value) => {
                    write!(f, "unparseable content-length {value:?}")
                }
                ResponseReadError::Io(e) => write!(f, "i/o error mid-response: {e}"),
            }
        }
    }

    /// Read exactly one keep-alive response: head to CRLFCRLF, then
    /// `content-length` body bytes. Malformed or truncated responses are
    /// typed errors, not panics, so a single bad answer (say a
    /// header-only 503 on the drain path) fails its own assertion
    /// instead of aborting the whole test.
    fn read_one_response<R: std::io::Read>(stream: &mut R) -> Result<String, ResponseReadError> {
        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            match stream.read(&mut byte) {
                Ok(0) => return Err(ResponseReadError::EarlyEof),
                Ok(_) => raw.push(byte[0]),
                Err(e) => return Err(ResponseReadError::Io(e)),
            }
        }
        let head = String::from_utf8_lossy(&raw).into_owned();
        let Some(length) = head.lines().find_map(|l| l.strip_prefix("content-length: ")) else {
            return Err(ResponseReadError::MissingContentLength { head });
        };
        let length: usize = length
            .trim()
            .parse()
            .map_err(|_| ResponseReadError::BadContentLength(length.trim().to_owned()))?;
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).map_err(ResponseReadError::Io)?;
        raw.extend_from_slice(&body);
        Ok(String::from_utf8_lossy(&raw).into_owned())
    }

    fn parse_response(raw: &str) -> (u16, String) {
        let status: u16 =
            raw.split(' ').nth(1).and_then(|code| code.parse().ok()).expect("status line");
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
        (status, body)
    }

    fn get(path: &str) -> String {
        format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n")
    }

    fn post(path: &str, body: &str, extra_headers: &str) -> String {
        format!(
            "POST {path} HTTP/1.1\r\n{extra_headers}content-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn response_reader_returns_typed_errors_instead_of_panicking() {
        // Header-only answer (no content-length): typed, not a panic.
        let mut cursor =
            std::io::Cursor::new(b"HTTP/1.1 503 unavailable\r\nretry-after: 2\r\n\r\n".to_vec());
        match read_one_response(&mut cursor) {
            Err(error @ ResponseReadError::MissingContentLength { .. }) => {
                assert!(error.to_string().contains("503"), "{error}");
            }
            other => panic!("expected MissingContentLength, got {other:?}"),
        }
        // Truncated head.
        let mut cursor = std::io::Cursor::new(b"HTTP/1.1 200 OK\r\n".to_vec());
        assert!(matches!(read_one_response(&mut cursor), Err(ResponseReadError::EarlyEof)));
        // Garbage length.
        let mut cursor =
            std::io::Cursor::new(b"HTTP/1.1 200 OK\r\ncontent-length: nope\r\n\r\n".to_vec());
        assert!(matches!(
            read_one_response(&mut cursor),
            Err(ResponseReadError::BadContentLength(_))
        ));
        // And a well-formed response still reads through.
        let mut cursor =
            std::io::Cursor::new(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok".to_vec());
        assert!(read_one_response(&mut cursor).unwrap().ends_with("ok"));
    }

    #[test]
    fn retry_after_scales_with_observed_queue_wait() {
        // No observations: the floor.
        let telemetry = Telemetry::new();
        assert_eq!(retry_after_secs(&telemetry), 1);
        // Sub-millisecond waits round up to the floor.
        let telemetry = Telemetry::new();
        for _ in 0..10 {
            telemetry.observe_with("server.queue_wait_ms", 0.2, LATENCY_BUCKETS_MS);
        }
        assert_eq!(retry_after_secs(&telemetry), 1);
        // A backed-up queue scales the hint: p50 lands in the 5000ms
        // bucket, so the client is told to come back in 5s.
        let telemetry = Telemetry::new();
        for _ in 0..10 {
            telemetry.observe_with("server.queue_wait_ms", 4200.0, LATENCY_BUCKETS_MS);
        }
        assert_eq!(retry_after_secs(&telemetry), 5);
        // Pathological waits clamp at the ceiling.
        let telemetry = Telemetry::new();
        for _ in 0..10 {
            telemetry.observe_with("server.queue_wait_ms", 120_000.0, LATENCY_BUCKETS_MS);
        }
        assert_eq!(retry_after_secs(&telemetry), MAX_RETRY_AFTER_SECS);
        // Mixed load: the p50, not the max, drives the hint.
        let telemetry = Telemetry::new();
        for _ in 0..8 {
            telemetry.observe_with("server.queue_wait_ms", 0.2, LATENCY_BUCKETS_MS);
        }
        for _ in 0..2 {
            telemetry.observe_with("server.queue_wait_ms", 120_000.0, LATENCY_BUCKETS_MS);
        }
        assert_eq!(retry_after_secs(&telemetry), 1);
    }

    #[test]
    fn serves_health_match_scan_and_metrics_then_drains() {
        let (addr, handle, join) = start(options());

        let (status, body) = roundtrip(addr, &get("/healthz"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        let (status, body) = roundtrip(
            addr,
            &post("/match", r#"{"patterns":["ab|cd","zz+"],"input":"xxcdxx"}"#, ""),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"pattern\":\"ab|cd\""), "{body}");
        assert!(body.contains("\"matched\":true"), "{body}");
        assert!(body.contains("\"matched\":false"), "{body}");

        let (status, body) = roundtrip(
            addr,
            &post("/scan", r#"{"patterns":["GET /","POST /"],"input":"GET /index POST /x"}"#, ""),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"matched\":true"), "{body}");
        // Both set members hit in the single chunk: all-matches counts.
        assert!(body.contains("\"chunks_matched\":1"), "{body}");

        let (status, body) = roundtrip(addr, &get("/metrics?format=summary"));
        assert_eq!(status, 200);
        assert!(body.contains("server.requests"), "{body}");
        let (status, jsonl) = roundtrip(addr, &get("/metrics?format=jsonl"));
        assert_eq!(status, 200);
        assert!(jsonl.lines().any(|l| l.contains("server.latency_ms")), "{jsonl}");

        handle.shutdown();
        let report = join.join().unwrap();
        assert!(report.drained, "drain timed out: {report:?}");
        assert!(report.requests >= 5);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn every_response_echoes_a_request_id() {
        let (addr, handle, join) = start(options());
        // No client id: the server mints one and echoes it.
        let raw = roundtrip_raw(addr, &get("/healthz"));
        assert!(raw.contains("x-cicero-request-id: req-1"), "{raw}");
        // Client-supplied ids are echoed verbatim, even on error paths.
        let raw = roundtrip_raw(
            addr,
            "GET /nowhere HTTP/1.1\r\nx-cicero-request-id: mine-42\r\nconnection: close\r\n\r\n",
        );
        let (status, _) = parse_response(&raw);
        assert_eq!(status, 404);
        assert!(raw.contains("x-cicero-request-id: mine-42"), "{raw}");
        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    #[test]
    fn prometheus_exposition_and_queue_wait_are_served() {
        let (addr, handle, join) = start(options());
        let raw = roundtrip_raw(
            addr,
            "GET /healthz HTTP/1.1\r\nx-cicero-request-id: prom-1\r\nconnection: close\r\n\r\n",
        );
        assert!(raw.contains("200"), "{raw}");
        let (status, text) = roundtrip(addr, &get("/metrics?format=prometheus"));
        assert_eq!(status, 200, "{text}");
        assert!(text.contains("# TYPE server_requests counter"), "{text}");
        assert!(text.contains("server_latency_ms_bucket{le="), "{text}");
        assert!(text.contains("server_latency_ms_sum"), "{text}");
        assert!(text.contains("server_queue_wait_ms_count"), "{text}");
        // The latency histogram carries a request-id exemplar.
        assert!(text.contains("request_id=\"prom-1\""), "{text}");
        let (status, _) = roundtrip(addr, &get("/metrics?format=bogus"));
        assert_eq!(status, 400);
        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    /// The tentpole acceptance path: one seeded `/scan` against a
    /// multi-worker server reconstructs, via `GET /debug/traces/{id}`,
    /// as a single connected span tree covering admission wait, compile
    /// (with per-pass timings), every worker's sim execution (cycle and
    /// icache attributes), the merge, and the response write.
    #[test]
    fn traced_scan_reconstructs_a_connected_span_tree() {
        use crate::json::{self, Json};
        // Pinned to the sim backend: this test documents the simulator's
        // cycle/icache span attributes (host serving is covered below).
        let (addr, handle, join) = start(ServerOptions {
            runtime: RuntimeOptions {
                jobs: 2,
                compiler: CompilerOptions::optimized().with_backend(Backend::Sim),
                ..RuntimeOptions::default()
            },
            ..options()
        });
        // ~1320 bytes → three 500-byte chunks across two sim workers.
        let input = "GET /index ".repeat(120);
        let body = format!(r#"{{"patterns":["GET /","POST /"],"input":"{input}"}}"#);
        let raw = roundtrip_raw(addr, &post("/scan", &body, "x-cicero-request-id: trace-e2e\r\n"));
        let (status, _) = parse_response(&raw);
        assert_eq!(status, 200, "{raw}");
        assert!(raw.contains("x-cicero-request-id: trace-e2e"), "{raw}");

        let (status, trace_body) = roundtrip(addr, &get("/debug/traces/trace-e2e"));
        assert_eq!(status, 200, "{trace_body}");
        let doc = json::parse(&trace_body).unwrap();
        assert_eq!(doc.get("request_id").and_then(Json::as_str), Some("trace-e2e"));
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        let ids: Vec<u64> =
            spans.iter().map(|s| s.get("id").and_then(Json::as_u64).unwrap()).collect();
        let mut roots = 0;
        for span in spans {
            match span.get("parent") {
                None => roots += 1,
                Some(parent) => {
                    let parent = parent.as_u64().unwrap();
                    assert!(ids.contains(&parent), "dangling parent {parent}: {trace_body}");
                }
            }
            assert!(span.get("open").is_none(), "unclosed span: {trace_body}");
        }
        assert_eq!(roots, 1, "{trace_body}");

        let names: Vec<&str> =
            spans.iter().map(|s| s.get("name").and_then(Json::as_str).unwrap()).collect();
        for expect in
            ["request", "admission.queue_wait", "compile", "execute", "merge", "response.write"]
        {
            assert!(names.contains(&expect), "missing {expect} span: {names:?}");
        }
        assert!(
            names.iter().any(|n| n.starts_with("pass:")),
            "missing per-pass compile spans: {names:?}"
        );
        let workers: Vec<&Json> = spans
            .iter()
            .filter(|s| s.get("name").and_then(Json::as_str).unwrap().starts_with("sim.worker-"))
            .collect();
        assert!(!workers.is_empty(), "no worker spans: {names:?}");
        for worker in workers {
            let attrs = worker.get("attrs").expect("worker span attrs");
            assert!(attrs.get("cycles").and_then(Json::as_u64).is_some(), "{trace_body}");
            for key in ["icache_hits", "icache_misses", "inputs", "instructions"] {
                assert!(attrs.get(key).is_some(), "worker attrs missing {key}: {trace_body}");
            }
        }

        // The index lists it; the Chrome export is loadable trace JSON.
        let (status, index) = roundtrip(addr, &get("/debug/traces"));
        assert_eq!(status, 200);
        assert!(index.contains("trace-e2e"), "{index}");
        let (status, chrome) = roundtrip(addr, &get("/debug/traces/trace-e2e?format=chrome"));
        assert_eq!(status, 200);
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        let (status, _) = roundtrip(addr, &get("/debug/traces/unknown-id"));
        assert_eq!(status, 404);

        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    /// The served default path runs the host-native engine: worker
    /// spans are named `host.worker-N`, `/scan` per-pattern counts come
    /// from the host `run_all`, and `X-Cicero-Backend` flips a single
    /// request to the simulator (or rejects garbage with a 400).
    #[test]
    fn host_backend_is_the_served_default_and_header_selects_sim() {
        use crate::json::{self, Json};
        let (addr, handle, join) = start(options());
        assert_eq!(
            ServerOptions::default().runtime.compiler.backend,
            cicero_core::Backend::Host,
            "the server default must serve host-native"
        );

        // Default path: host execution, same verdicts and counts.
        let input = "GET /index POST /x ".repeat(60);
        let body = format!(r#"{{"patterns":["GET /","POST /"],"input":"{input}"}}"#);
        let raw = roundtrip_raw(addr, &post("/scan", &body, "x-cicero-request-id: host-e2e\r\n"));
        let (status, scan_body) = parse_response(&raw);
        assert_eq!(status, 200, "{raw}");
        assert!(scan_body.contains("\"matched\":true"), "{scan_body}");
        // Every 500-byte chunk contains both set members.
        let chunks = scan_body
            .split("\"chunks\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.parse::<u64>().ok())
            .unwrap();
        assert!(
            scan_body.matches(&format!("\"chunks_matched\":{chunks}")).count() == 2,
            "{scan_body}"
        );

        // The trace shows host workers, not sim workers.
        let (status, trace_body) = roundtrip(addr, &get("/debug/traces/host-e2e"));
        assert_eq!(status, 200, "{trace_body}");
        let doc = json::parse(&trace_body).unwrap();
        let names: Vec<String> = doc
            .get("spans")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|s| s.get("name").and_then(Json::as_str).unwrap().to_owned())
            .collect();
        assert!(names.iter().any(|n| n.starts_with("host.worker-")), "{names:?}");
        assert!(!names.iter().any(|n| n.starts_with("sim.worker-")), "{names:?}");

        // Header override: one request on the simulator, same answer.
        let body = r#"{"patterns":["ab|cd"],"input":"xxcdxx"}"#;
        let (status, sim_body) =
            roundtrip(addr, &post("/match", body, "x-cicero-backend: sim\r\n"));
        assert_eq!(status, 200, "{sim_body}");
        assert!(sim_body.contains("\"matched\":true"), "{sim_body}");
        let (status, host_body) =
            roundtrip(addr, &post("/match", body, "x-cicero-backend: host\r\n"));
        assert_eq!(status, 200, "{host_body}");
        assert!(host_body.contains("\"matched\":true"), "{host_body}");

        // Garbage backend names are a 400, not a silent default.
        let (status, err) = roundtrip(addr, &post("/match", body, "x-cicero-backend: fpga\r\n"));
        assert_eq!(status, 400, "{err}");
        assert!(err.contains("X-Cicero-Backend"), "{err}");

        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    #[test]
    fn drain_dumps_retained_traces_as_chrome_json() {
        let path =
            std::env::temp_dir().join(format!("cicero-trace-dump-{}.json", std::process::id()));
        let (addr, handle, join) =
            start(ServerOptions { trace_dump: Some(path.clone()), ..options() });
        let raw = roundtrip_raw(
            addr,
            "GET /healthz HTTP/1.1\r\nx-cicero-request-id: dump-1\r\nconnection: close\r\n\r\n",
        );
        assert!(raw.contains("200"), "{raw}");
        handle.shutdown();
        assert!(join.join().unwrap().drained);
        let dumped = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(dumped.contains("\"traceEvents\""), "{dumped}");
        assert!(dumped.contains("dump-1"), "{dumped}");
    }

    #[test]
    fn budget_header_trips_as_429_with_partial_progress() {
        let (addr, handle, join) = start(options());
        // One unit of fuel cannot finish any real input.
        let (status, body) = roundtrip(
            addr,
            &post(
                "/match",
                r#"{"patterns":["(ab|ba)+x"],"input":"abbaabbaabbaabba"}"#,
                "x-cicero-fuel: 1\r\n",
            ),
        );
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("\"budget_exceeded\":true"), "{body}");
        assert!(body.contains("\"verdict\":\"budget\""), "{body}");
        assert!(body.contains("\"kind\":\"fuel\""), "{body}");
        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    #[test]
    fn malformed_requests_get_400_class_answers_not_hangs() {
        let (addr, handle, join) = start(options());
        let (status, _) = roundtrip(addr, &post("/match", "{not json", ""));
        assert_eq!(status, 400);
        let (status, _) = roundtrip(addr, &post("/match", r#"{"patterns":[],"input":"x"}"#, ""));
        assert_eq!(status, 400);
        let (status, _) = roundtrip(addr, &post("/scan", r#"{"patterns":["("],"input":"x"}"#, ""));
        assert_eq!(status, 400);
        let (status, _) = roundtrip(addr, &get("/nowhere"));
        assert_eq!(status, 404);
        let (status, _) = roundtrip(addr, &get("/match"));
        assert_eq!(status, 405);
        let (status, _) = roundtrip(addr, "BOGUS\r\n\r\n");
        assert_eq!(status, 400);
        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    #[test]
    fn full_queue_rejects_with_503_and_a_retry_hint() {
        let (addr, handle, join) = start(ServerOptions { workers: 1, queue_depth: 1, ..options() });
        // Two silent connections fill the open-connection budget
        // (workers + queue_depth = 2); they park on the poller without
        // costing a worker.
        let idle = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // The third connection must be rejected at admission, instantly.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(2000))).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 503, "{raw}");
        // Nothing has waited in the dispatch queue yet, so the scaled
        // hint sits at its floor.
        assert!(raw.contains("retry-after: 1"), "{raw}");
        assert!(body.contains("capacity"), "{body}");
        // Free the connection slots, then drain.
        drop(idle);
        drop(queued);
        handle.shutdown();
        let report = join.join().unwrap();
        assert!(report.drained);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn idle_connections_do_not_occupy_workers() {
        // One worker, but a pile of parked idle connections: a live
        // request must still be served promptly because idle keep-alive
        // connections wait on the poller, not on the worker pool.
        let (addr, handle, join) = start(ServerOptions { workers: 1, queue_depth: 8, ..options() });
        let idlers: Vec<TcpStream> = (0..6).map(|_| TcpStream::connect(addr).unwrap()).collect();
        std::thread::sleep(Duration::from_millis(100));
        let (status, body) = roundtrip(addr, &get("/healthz"));
        assert_eq!(status, 200, "{body}");
        drop(idlers);
        handle.shutdown();
        let report = join.join().unwrap();
        assert!(report.drained, "{report:?}");
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn requests_in_flight_at_shutdown_are_answered_not_dropped() {
        // A parked connection with a request already written must be
        // swept into the dispatch queue on drain, not closed: this is
        // the DrainModel contract, end to end.
        let (addr, handle, join) = start(ServerOptions { workers: 1, ..options() });
        // Prime: one served request so the connection is parked idle.
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = r#"{"patterns":["ab"],"input":"xaby"}"#;
        let request =
            format!("POST /match HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len());
        stream.write_all(request.as_bytes()).unwrap();
        let raw = read_one_response(&mut stream).unwrap_or_else(|e| panic!("{e}"));
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        // Park it (outlive the grace window), then race a request
        // against shutdown.
        std::thread::sleep(Duration::from_millis(50));
        stream.write_all(request.as_bytes()).unwrap();
        handle.shutdown();
        stream.set_read_timeout(Some(Duration::from_millis(2000))).unwrap();
        let raw = read_one_response(&mut stream).unwrap_or_else(|e| panic!("{e}"));
        // Answered (maybe before the flag landed, maybe via the drain
        // sweep) — never silently closed.
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        let report = join.join().unwrap();
        assert!(report.drained, "{report:?}");
    }

    #[test]
    fn shutdown_endpoint_drains_the_server() {
        let (addr, _handle, join) = start(options());
        let (status, body) = roundtrip(addr, &post("/shutdown", "", ""));
        assert_eq!(status, 200);
        assert!(body.contains("draining"), "{body}");
        let report = join.join().unwrap();
        assert!(report.drained);
    }

    /// One chunked-transfer POST over a fresh connection.
    fn post_chunked(path: &str, parts: &[&str], extra_headers: &str) -> String {
        let mut request = format!(
            "POST {path} HTTP/1.1\r\n{extra_headers}transfer-encoding: chunked\r\nconnection: close\r\n\r\n"
        );
        for part in parts {
            request.push_str(&format!("{:x}\r\n{part}\r\n", part.len()));
        }
        request.push_str("0\r\n\r\n");
        request
    }

    #[test]
    fn ruleset_lifecycle_put_scan_swap_delete_over_http() {
        let (addr, handle, join) = start(options());

        // First install: 201 + a content-hash version header.
        let raw = roundtrip_raw(
            addr,
            &format!(
                "PUT /rulesets/web HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
                r#"{"patterns":["GET /","POST /"]}"#.len(),
                r#"{"patterns":["GET /","POST /"]}"#
            ),
        );
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 201, "{raw}");
        let version = raw
            .lines()
            .find_map(|l| l.strip_prefix("x-cicero-ruleset-version: "))
            .expect("version header")
            .to_owned();
        assert_eq!(version.len(), 16, "{raw}");
        assert!(body.contains(&format!("\"version\":\"{version}\"")), "{body}");

        // GET describes it; the collection lists it.
        let (status, body) = roundtrip(addr, &get("/rulesets/web"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"patterns\":[\"GET /\",\"POST /\"]"), "{body}");
        let (status, body) = roundtrip(addr, &get("/rulesets"));
        assert_eq!(status, 200);
        assert!(body.contains("\"id\":\"web\""), "{body}");

        // Scan against it: no patterns in the body, version tagged on
        // the response (field and header).
        let raw = roundtrip_raw(addr, &post("/scan?ruleset=web", r#"{"input":"GET /index"}"#, ""));
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 200, "{raw}");
        assert!(body.contains("\"matched\":true"), "{body}");
        assert!(body.contains(&format!("\"ruleset_version\":\"{version}\"")), "{body}");
        assert!(raw.contains(&format!("x-cicero-ruleset-version: {version}")), "{raw}");

        // Patterns alongside ?ruleset= are rejected: the registry is
        // the pattern source.
        let (status, body) =
            roundtrip(addr, &post("/scan?ruleset=web", r#"{"patterns":["x"],"input":"y"}"#, ""));
        assert_eq!(status, 400, "{body}");

        // Hot swap: a new pattern set replaces the version in place.
        let put_body = r#"{"patterns":["DELETE /"]}"#;
        let raw = roundtrip_raw(
            addr,
            &format!(
                "PUT /rulesets/web HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{put_body}",
                put_body.len()
            ),
        );
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 200, "swap is 200, not 201: {raw}");
        assert!(body.contains(&format!("\"replaced\":\"{version}\"")), "{body}");
        let raw = roundtrip_raw(addr, &post("/scan?ruleset=web", r#"{"input":"GET /index"}"#, ""));
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 200);
        assert!(body.contains("\"matched\":false"), "old version must be gone: {body}");
        assert!(!raw.contains(&format!("x-cicero-ruleset-version: {version}")), "{raw}");

        // Delete, then the scan path 404s.
        let (status, body) =
            roundtrip(addr, "DELETE /rulesets/web HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        let (status, _) = roundtrip(addr, &post("/scan?ruleset=web", r#"{"input":"x"}"#, ""));
        assert_eq!(status, 404);
        let (status, _) = roundtrip(addr, &get("/rulesets/web"));
        assert_eq!(status, 404);

        // Invalid ids and bad methods are typed answers.
        let long_id = "x".repeat(registry::MAX_RULESET_ID + 1);
        let (status, _) = roundtrip(
            addr,
            &format!(
                "PUT /rulesets/{long_id} HTTP/1.1\r\ncontent-length: 18\r\nconnection: close\r\n\r\n{{\"patterns\":[\"a\"]}}"
            ),
        );
        assert_eq!(status, 400);
        let (status, _) = roundtrip(addr, &post("/rulesets/web", "{}", ""));
        assert_eq!(status, 405);

        // The registry.* namespace recorded the lifecycle.
        let (_, metrics) = roundtrip(addr, &get("/metrics?format=summary"));
        assert!(metrics.contains("registry.puts"), "{metrics}");
        assert!(metrics.contains("registry.deletes"), "{metrics}");

        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    #[test]
    fn scan_stream_is_invariant_to_http_chunk_boundaries() {
        let (addr, handle, join) = start(options());
        let put_body = r#"{"patterns":["GET /","POST /"]}"#;
        let raw = roundtrip_raw(
            addr,
            &format!(
                "PUT /rulesets/web HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{put_body}",
                put_body.len()
            ),
        );
        assert!(raw.contains("201"), "{raw}");

        // The same input three ways: whole body, two chunks, byte-wise
        // chunks. Pinned request ids make the raw responses comparable.
        let input = "xxxxxxxxxx GET /index yyyyyyyy";
        let id_header = "x-cicero-request-id: stream-inv\r\n";
        let whole = roundtrip_raw(addr, &post("/scan/stream?ruleset=web", input, id_header));
        let halves = roundtrip_raw(
            addr,
            &post_chunked("/scan/stream?ruleset=web", &[&input[..7], &input[7..]], id_header),
        );
        let bytes: Vec<String> = input.chars().map(|c| c.to_string()).collect();
        let byte_refs: Vec<&str> = bytes.iter().map(String::as_str).collect();
        let bytewise =
            roundtrip_raw(addr, &post_chunked("/scan/stream?ruleset=web", &byte_refs, id_header));
        assert_eq!(whole, halves, "HTTP chunking must not change a byte of the response");
        assert_eq!(whole, bytewise);
        let (status, body) = parse_response(&whole);
        assert_eq!(status, 200, "{whole}");
        assert!(body.contains("\"matched\":true"), "{body}");
        assert!(body.contains("\"ruleset_version\""), "{body}");

        // Engine chunk size is honored (and still deterministic).
        let raw = roundtrip_raw(
            addr,
            &post_chunked(
                "/scan/stream?ruleset=web",
                &[input],
                "x-cicero-request-id: stream-inv\r\nx-cicero-chunk-size: 8\r\n",
            ),
        );
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 200, "{raw}");
        assert!(body.contains("\"chunk_bytes\":8"), "{body}");

        // Missing ?ruleset= and unknown ids are typed errors.
        let (status, _) = roundtrip(addr, &post("/scan/stream", "abc", ""));
        assert_eq!(status, 400);
        let (status, _) = roundtrip(addr, &post("/scan/stream?ruleset=nope", "abc", ""));
        assert_eq!(status, 404);

        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    /// Satellite: both 429 paths — budget trips and tenant rate limits —
    /// share [`retry_after_secs`], so a backed-up queue scales both
    /// `Retry-After` hints identically (no hardcoded constants).
    #[test]
    fn budget_and_tenant_429s_share_the_scaled_retry_after() {
        let telemetry = Telemetry::new();
        // Seed the queue-wait histogram so the p50 lands at the 5000ms
        // bucket: the shared helper must answer 5 on every path.
        for _ in 0..20 {
            telemetry.observe_with("server.queue_wait_ms", 4200.0, LATENCY_BUCKETS_MS);
        }
        assert_eq!(retry_after_secs(&telemetry), 5);
        let server = Server::bind_with_telemetry(
            ServerOptions {
                tenants: tenants::TenantPolicy {
                    max_in_flight: 0,
                    rate_per_sec: 0.001,
                    burst: 1.0,
                },
                ..options()
            },
            telemetry,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());

        // Path 1: a tripped budget.
        let raw = roundtrip_raw(
            addr,
            &post(
                "/match",
                r#"{"patterns":["(ab|ba)+x"],"input":"abbaabbaabba"}"#,
                "x-cicero-fuel: 1\r\n",
            ),
        );
        let (status, _) = parse_response(&raw);
        assert_eq!(status, 429, "{raw}");
        assert!(raw.contains("retry-after: 5"), "budget 429 must scale: {raw}");

        // Path 2: the token bucket (burst 1, negligible refill) denies
        // the second request.
        let body = r#"{"patterns":["ab"],"input":"xaby"}"#;
        let (status, _) = roundtrip(addr, &post("/match", body, "x-cicero-tenant: acme\r\n"));
        assert_eq!(status, 200);
        let raw = roundtrip_raw(addr, &post("/match", body, "x-cicero-tenant: acme\r\n"));
        let (status, deny_body) = parse_response(&raw);
        assert_eq!(status, 429, "{raw}");
        assert!(raw.contains("retry-after: 5"), "tenant 429 must scale identically: {raw}");
        assert!(deny_body.contains("rate_limited"), "{deny_body}");

        // Tenant-labeled counters joined the server.* namespace.
        let (_, metrics) = roundtrip(addr, &get("/metrics?format=summary"));
        assert!(metrics.contains("server.tenant.acme.requests"), "{metrics}");
        assert!(metrics.contains("server.tenant.acme.rate_limited"), "{metrics}");

        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    #[test]
    fn tenant_quota_bounds_in_flight_per_tenant_not_globally() {
        let policy = tenants::TenantPolicy { max_in_flight: 1, rate_per_sec: 0.0, burst: 0.0 };
        let (addr, handle, join) = start(ServerOptions { tenants: policy, ..options() });
        // Quota is per tenant: serial requests from one tenant all pass
        // (the permit releases with each response), and two tenants
        // never contend.
        let body = r#"{"patterns":["ab"],"input":"xaby"}"#;
        for tenant in ["a", "a", "b", "a"] {
            let (status, out) =
                roundtrip(addr, &post("/match", body, &format!("x-cicero-tenant: {tenant}\r\n")));
            assert_eq!(status, 200, "{out}");
        }
        // Control-plane endpoints are never tenant-governed.
        let (status, _) = roundtrip(addr, &get("/healthz"));
        assert_eq!(status, 200);
        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }

    #[test]
    fn rulesets_persist_across_server_restarts() {
        let dir =
            std::env::temp_dir().join(format!("cicero-server-rulesets-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = || ServerOptions { ruleset_dir: Some(dir.clone()), ..options() };
        let (addr, handle, join) = start(opts());
        let put_body = r#"{"patterns":["GET /"]}"#;
        let raw = roundtrip_raw(
            addr,
            &format!(
                "PUT /rulesets/web HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{put_body}",
                put_body.len()
            ),
        );
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 201, "{body}");
        let version = raw
            .lines()
            .find_map(|l| l.strip_prefix("x-cicero-ruleset-version: "))
            .unwrap()
            .to_owned();
        handle.shutdown();
        assert!(join.join().unwrap().drained);

        // A fresh bind restores the ruleset from the artifact, same
        // content-hash version.
        let (addr, handle, join) = start(opts());
        let raw = roundtrip_raw(addr, &post("/scan?ruleset=web", r#"{"input":"GET /x"}"#, ""));
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 200, "{raw}");
        assert!(body.contains("\"matched\":true"), "{body}");
        assert!(raw.contains(&format!("x-cicero-ruleset-version: {version}")), "{raw}");
        handle.shutdown();
        assert!(join.join().unwrap().drained);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let (addr, handle, join) = start(options());
        let mut stream = TcpStream::connect(addr).unwrap();
        for _ in 0..3 {
            let body = r#"{"patterns":["ab"],"input":"xaby"}"#;
            stream
                .write_all(
                    format!("POST /match HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len())
                        .as_bytes(),
                )
                .unwrap();
            let raw = read_one_response(&mut stream).unwrap_or_else(|e| panic!("{e}"));
            assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
            assert!(raw.contains("connection: keep-alive"), "{raw}");
        }
        drop(stream);
        handle.shutdown();
        assert!(join.join().unwrap().drained);
    }
}
