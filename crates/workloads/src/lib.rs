//! Synthetic benchmark workloads standing in for AutomataZoo's Protomata
//! and Brill suites (Wadden et al., IISWC'18), which the paper evaluates
//! on (§6). The original datasets cannot be redistributed here; these
//! generators reproduce the *structural* properties that drive the
//! experiments (see DESIGN.md):
//!
//! * **Protomata** — PROSITE-style protein signatures over the 20-letter
//!   amino-acid alphabet: chains of residue classes (`[LIVM]`), exact
//!   residues, and bounded gaps (`.{2,8}`). Deep programs, many splits
//!   from class lowering, long partial matches on protein-like input.
//! * **Brill** — Brill-tagger contextual rules over lowercase text:
//!   literal words, small alternations, optional suffixes. Shallower,
//!   literal-heavy programs.
//!
//! Both suites come in the paper's two strategies:
//!
//! * *simple* — the first `n` patterns ([`Benchmark::protomata`],
//!   [`Benchmark::brill`]);
//! * *alternate* — sample `4n` patterns and OR them four at a time
//!   ([`Benchmark::protomata4`], [`Benchmark::brill4`]), the
//!   "at least one of them matching triggers an acceptance behaviour"
//!   scenario.
//!
//! Inputs are split into 500-byte chunks (§6) and a configurable fraction
//! of chunks has a guaranteed match planted, so halt-on-accept paths are
//! exercised. Everything is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use workloads::Benchmark;
//!
//! let bench = Benchmark::protomata(42, 10, 4);
//! assert_eq!(bench.patterns.len(), 10);
//! assert_eq!(bench.chunks.len(), 4);
//! assert!(bench.chunks.iter().all(|c| c.len() == 500));
//! ```

pub mod brill;
pub mod protomata;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Benchmark chunk size in bytes (§6: "we split the input data into
/// chunks of 500 bytes each").
pub const CHUNK_BYTES: usize = 500;

/// Fraction of chunks that get a witness substring planted for a randomly
/// chosen pattern, so some executions accept early.
const PLANT_FRACTION: f64 = 0.3;

/// A generated benchmark: patterns plus input chunks.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (`PROTOMATA`, `BRILL4`, …).
    pub name: &'static str,
    /// The regular expressions, in suite order.
    pub patterns: Vec<String>,
    /// 500-byte input chunks.
    pub chunks: Vec<Vec<u8>>,
}

impl Benchmark {
    /// The Protomata-like suite: `patterns` signatures and `chunks`
    /// protein-sequence chunks.
    pub fn protomata(seed: u64, patterns: usize, chunks: usize) -> Benchmark {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5052_4F54);
        let patterns: Vec<String> = (0..patterns).map(|_| protomata::signature(&mut rng)).collect();
        let chunks = make_chunks(&mut rng, &patterns, chunks, protomata::sequence_chunk);
        Benchmark { name: "PROTOMATA", patterns, chunks }
    }

    /// The Brill-like suite.
    pub fn brill(seed: u64, patterns: usize, chunks: usize) -> Benchmark {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4252_494C);
        let patterns: Vec<String> = (0..patterns).map(|_| brill::rule(&mut rng)).collect();
        let chunks = make_chunks(&mut rng, &patterns, chunks, brill::text_chunk);
        Benchmark { name: "BRILL", patterns, chunks }
    }

    /// The *alternate* Protomata strategy: sample `4 × patterns`
    /// signatures and alternate them four at a time (§6).
    pub fn protomata4(seed: u64, patterns: usize, chunks: usize) -> Benchmark {
        let mut b = Benchmark::protomata(seed ^ 0x34, patterns * 4, chunks);
        b.name = "PROTOMATA4";
        b.patterns = alternate4(b.patterns);
        b
    }

    /// The *alternate* Brill strategy.
    pub fn brill4(seed: u64, patterns: usize, chunks: usize) -> Benchmark {
        let mut b = Benchmark::brill(seed ^ 0x34, patterns * 4, chunks);
        b.name = "BRILL4";
        b.patterns = alternate4(b.patterns);
        b
    }

    /// The four standard suites at the given scale, in the paper's order.
    pub fn all(seed: u64, patterns: usize, chunks: usize) -> Vec<Benchmark> {
        vec![
            Benchmark::protomata(seed, patterns, chunks),
            Benchmark::brill(seed, patterns, chunks),
            Benchmark::protomata4(seed, patterns, chunks),
            Benchmark::brill4(seed, patterns, chunks),
        ]
    }
}

/// OR groups of four patterns into one (`(a)|(b)|(c)|(d)`).
fn alternate4(patterns: Vec<String>) -> Vec<String> {
    patterns
        .chunks(4)
        .map(|group| group.iter().map(|p| format!("({p})")).collect::<Vec<_>>().join("|"))
        .collect()
}

/// Generate input chunks, planting witnesses for randomly chosen patterns
/// in a fraction of them.
fn make_chunks(
    rng: &mut StdRng,
    patterns: &[String],
    count: usize,
    base: fn(&mut StdRng, usize) -> Vec<u8>,
) -> Vec<Vec<u8>> {
    (0..count)
        .map(|_| {
            let mut chunk = base(rng, CHUNK_BYTES);
            if !patterns.is_empty() && rng.random_bool(PLANT_FRACTION) {
                let pattern = &patterns[rng.random_range(0..patterns.len())];
                if let Some(witness) = witness_for(pattern) {
                    if witness.len() < chunk.len() {
                        let at = rng.random_range(0..chunk.len() - witness.len());
                        chunk[at..at + witness.len()].copy_from_slice(&witness);
                    }
                }
            }
            chunk
        })
        .collect()
}

/// Produce a string matched by `pattern`, by walking its syntax and taking
/// cheap choices (first class member, minimum repetitions, first
/// alternative). Handles exactly the generator grammars used in this
/// crate; returns `None` on anything else (anchors, negated classes).
pub fn witness_for(pattern: &str) -> Option<Vec<u8>> {
    let bytes = pattern.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => {
                depth += 1;
                i += 1;
            }
            b')' => {
                depth = depth.checked_sub(1)?;
                i += 1;
                if matches!(bytes.get(i), Some(b'*') | Some(b'?') | Some(b'+') | Some(b'{')) {
                    // Quantified groups do not appear in the generators'
                    // output (except `+`/nothing which one occurrence
                    // already satisfies); reject the rest.
                    match bytes[i] {
                        b'+' => i += 1,
                        _ => return None,
                    }
                }
            }
            b'|' => {
                // Take the first alternative: skip to the end of this
                // group (or of the pattern at top level).
                let target_depth = depth;
                while i < bytes.len() {
                    match bytes[i] {
                        b'(' => depth += 1,
                        b')' => {
                            if depth == target_depth {
                                break; // the `)` closing our group
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            b'[' => {
                i += 1;
                if bytes.get(i) == Some(&b'^') {
                    return None;
                }
                let first = *bytes.get(i)?;
                out.push(first);
                while i < bytes.len() && bytes[i] != b']' {
                    i += 1;
                }
                i += 1;
                i = apply_quantifier(bytes, i, &mut out)?;
            }
            b'.' => {
                out.push(b'x');
                i += 1;
                i = apply_quantifier(bytes, i, &mut out)?;
            }
            b'^' | b'$' => return None,
            b'\\' => {
                out.push(*bytes.get(i + 1)?);
                i += 2;
                i = apply_quantifier(bytes, i, &mut out)?;
            }
            c => {
                out.push(c);
                i += 1;
                i = apply_quantifier(bytes, i, &mut out)?;
            }
        }
    }
    Some(out)
}

/// After emitting one occurrence of the previous atom, satisfy its
/// quantifier by duplicating or removing that occurrence.
fn apply_quantifier(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> Option<usize> {
    match bytes.get(i) {
        Some(b'*') | Some(b'?') => {
            out.pop();
            i += 1;
        }
        Some(b'+') => {
            i += 1;
        }
        Some(b'{') => {
            let end = i + bytes[i..].iter().position(|b| *b == b'}')?;
            let body = std::str::from_utf8(&bytes[i + 1..end]).ok()?;
            let min: usize = body.split(',').next()?.parse().ok()?;
            let c = *out.last()?;
            if min == 0 {
                out.pop();
            } else {
                for _ in 1..min {
                    out.push(c);
                }
            }
            i = end + 1;
        }
        _ => {}
    }
    Some(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = Benchmark::protomata(7, 5, 3);
        let b = Benchmark::protomata(7, 5, 3);
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.chunks, b.chunks);
        let c = Benchmark::protomata(8, 5, 3);
        assert_ne!(a.patterns, c.patterns);
    }

    #[test]
    fn all_patterns_parse_in_both_compilers() {
        for bench in Benchmark::all(11, 12, 2) {
            for pattern in &bench.patterns {
                cicero_core::compile(pattern)
                    .unwrap_or_else(|e| panic!("{}: {pattern:?}: {e}", bench.name));
                cicero_legacy::LegacyCompiler::new(true)
                    .compile(pattern)
                    .unwrap_or_else(|e| panic!("{}: {pattern:?}: {e}", bench.name));
            }
        }
    }

    #[test]
    fn alternate_strategy_groups_by_four() {
        let simple = Benchmark::protomata(3, 8, 1);
        let alt = Benchmark::protomata4(3, 2, 1);
        assert_eq!(alt.patterns.len(), 2);
        assert!(alt.patterns[0].matches('|').count() >= 3, "{:?}", alt.patterns[0]);
        assert_eq!(simple.patterns.len(), 8);
    }

    #[test]
    fn witnesses_actually_match() {
        for bench in Benchmark::all(13, 10, 1) {
            for pattern in &bench.patterns {
                let witness =
                    witness_for(pattern).unwrap_or_else(|| panic!("no witness for {pattern:?}"));
                let oracle = regex_oracle::Oracle::new(pattern).unwrap();
                assert!(
                    oracle.is_match(&witness),
                    "{}: witness {:?} does not match {pattern:?}",
                    bench.name,
                    String::from_utf8_lossy(&witness)
                );
            }
        }
    }

    #[test]
    fn chunks_are_500_bytes() {
        for bench in Benchmark::all(17, 4, 6) {
            assert_eq!(bench.chunks.len(), 6);
            for chunk in &bench.chunks {
                assert_eq!(chunk.len(), CHUNK_BYTES);
            }
        }
    }

    #[test]
    fn some_chunks_match_some_do_not() {
        // With planting at 30%, a benchmark of reasonable size has both
        // matching and non-matching (pattern, chunk) pairs.
        let bench = Benchmark::protomata(23, 10, 10);
        let oracles: Vec<_> =
            bench.patterns.iter().map(|p| regex_oracle::Oracle::new(p).unwrap()).collect();
        let mut matches = 0;
        let mut misses = 0;
        for chunk in &bench.chunks {
            for oracle in &oracles {
                if oracle.is_match(chunk) {
                    matches += 1;
                } else {
                    misses += 1;
                }
            }
        }
        assert!(matches > 0, "no matches at all");
        assert!(misses > 0, "everything matches");
    }
}
