//! Cross-crate differential tests: for a corpus of patterns, every
//! compiler (new at O0/O1, legacy at O0/O1) and every execution vehicle
//! (functional ISA interpreter, cycle-level simulator in several
//! configurations) must agree with the reference Pike-VM oracle.

use cicero::prelude::*;

const PATTERNS: &[&str] = &[
    "abc",
    "ab|cd",
    "th(is|at|ose)",
    "(ab)|c{3,6}d+",
    "a{2,3}|b{4,5}",
    "abcd*|efgh+",
    "[^ab]x",
    "[a-f]{2}[0-9]",
    "^anchored$",
    "^start",
    "end$",
    "a(b(c|d))e",
    "(a|(b|(c|d)))",
    "x.{2,5}y",
    r"\d+\.\d+",
    "C.{2,4}C.{3}[LIVMFYWC].{8}H.{3,5}H",
    "a*b*c*d",
    "(one|two|three)+",
    "ab|",
];

fn inputs() -> Vec<Vec<u8>> {
    let mut inputs: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"abc".to_vec(),
        b"ab".to_vec(),
        b"xxabyy".to_vec(),
        b"cccddd".to_vec(),
        b"this and that and those".to_vec(),
        b"anchored".to_vec(),
        b"not anchored".to_vec(),
        b"start of it".to_vec(),
        b"at the end".to_vec(),
        b"abcde".to_vec(),
        b"3.1415".to_vec(),
        b"CAACAAALAAAAAAAAHAAAH".to_vec(),
        b"onetwothree".to_vec(),
        b"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzz".to_vec(),
    ];
    // A few deterministic pseudo-random inputs over a regex-relevant
    // alphabet.
    let mut state = 0x1234_5678u64;
    for len in [5usize, 13, 40, 120] {
        let input: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                b"abcdefxyCH0123."[(state % 15) as usize]
            })
            .collect();
        inputs.push(input);
    }
    inputs
}

fn all_programs(pattern: &str) -> Vec<(String, Program)> {
    vec![
        ("new O1".to_owned(), Compiler::new().compile(pattern).unwrap().into_program()),
        (
            "new O0".to_owned(),
            Compiler::with_options(CompilerOptions::unoptimized())
                .compile(pattern)
                .unwrap()
                .into_program(),
        ),
        ("old O1".to_owned(), LegacyCompiler::new(true).compile(pattern).unwrap()),
        ("old O0".to_owned(), LegacyCompiler::new(false).compile(pattern).unwrap()),
    ]
}

#[test]
fn every_compiler_agrees_with_the_oracle_functionally() {
    for pattern in PATTERNS {
        let oracle = Oracle::new(pattern).unwrap();
        for (name, program) in all_programs(pattern) {
            for input in inputs() {
                assert_eq!(
                    cicero::isa::accepts(&program, &input),
                    oracle.is_match(&input),
                    "{name} on {pattern:?} with input {:?}",
                    String::from_utf8_lossy(&input)
                );
            }
        }
    }
}

#[test]
fn the_simulator_agrees_with_the_interpreter_on_every_architecture() {
    let configs = [
        ArchConfig::old_organization(1),
        ArchConfig::old_organization(4),
        ArchConfig::new_organization(8, 1),
        ArchConfig::new_organization(16, 1),
        ArchConfig::new_organization(8, 4),
    ];
    for pattern in PATTERNS {
        // Optimized new-compiler output is the interesting code shape;
        // the interpreter is the ISA-level ground truth here.
        let program = Compiler::new().compile(pattern).unwrap().into_program();
        for input in inputs() {
            let expected = cicero::isa::accepts(&program, &input);
            for config in &configs {
                let report = simulate(&program, &input, config);
                assert!(!report.hit_cycle_limit, "{pattern:?} hit the cycle cap");
                assert_eq!(
                    report.accepted,
                    expected,
                    "{} on {pattern:?} with input {:?}",
                    config.name(),
                    String::from_utf8_lossy(&input)
                );
            }
        }
    }
}

#[test]
fn binary_encoding_roundtrips_through_the_wire_format() {
    for pattern in PATTERNS {
        let program = compile(pattern).unwrap().into_program();
        let encoded = cicero::isa::EncodedProgram::from_program(&program);
        let bytes = encoded.to_bytes();
        let decoded = cicero::isa::EncodedProgram::from_bytes(&bytes).unwrap().decode().unwrap();
        assert_eq!(decoded, program, "{pattern:?}");
    }
}

#[test]
fn assembly_roundtrips_for_all_compiled_patterns() {
    for pattern in PATTERNS {
        let program = compile(pattern).unwrap().into_program();
        let reparsed: Program = program.to_asm().parse().unwrap();
        assert_eq!(reparsed, program, "{pattern:?}");
    }
}
