//! Textual IR parser, inverse of [`crate::printer`].

use std::fmt;

use crate::attribute::Attribute;
use crate::op::{Operation, Region};

/// A parse failure, with a 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a single operation (with its whole subtree) from text.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending token; trailing
/// input after the operation is also an error.
pub fn parse(text: &str) -> Result<Operation, ParseError> {
    let mut p = Parser::new(text);
    let op = p.parse_op()?;
    p.expect_eof()?;
    Ok(op)
}

/// Parse a sequence of top-level operations (a region body without braces).
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_ops(text: &str) -> Result<Vec<Operation>, ParseError> {
    let mut p = Parser::new(text);
    let mut ops = Vec::new();
    p.skip_ws();
    while !p.at_eof() {
        ops.push(p.parse_op()?);
        p.skip_ws();
    }
    Ok(ops)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { src: text.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let consumed = &self.src[..self.pos.min(self.src.len())];
        let line = consumed.iter().filter(|b| **b == b'\n').count() + 1;
        let column = consumed.iter().rev().take_while(|b| **b != b'\n').count() + 1;
        ParseError { line, column, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn at_eof(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error("trailing input after operation"))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || (b == b'.' && self.pos > start) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_op(&mut self) -> Result<Operation, ParseError> {
        self.skip_ws();
        let name = self.ident()?;
        if !name.contains('.') {
            return Err(self.error(format!("op name `{name}` lacks a dialect prefix")));
        }
        let mut op = Operation::new(name);
        self.skip_ws();
        if self.peek() == Some(b'{') {
            self.parse_attr_dict(&mut op)?;
        }
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.expect(b'(')?;
            loop {
                op.push_region(self.parse_region()?);
                if !self.eat(b',') {
                    break;
                }
            }
            self.expect(b')')?;
        }
        Ok(op)
    }

    fn parse_attr_dict(&mut self, op: &mut Operation) -> Result<(), ParseError> {
        self.expect(b'{')?;
        if self.eat(b'}') {
            return Ok(());
        }
        loop {
            let key = self.ident()?;
            self.expect(b'=')?;
            let value = self.parse_attr_value()?;
            op.set_attr(key, value);
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')
    }

    fn parse_region(&mut self) -> Result<Region, ParseError> {
        self.expect(b'{')?;
        let mut region = Region::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(region);
            }
            if self.peek().is_none() {
                return Err(self.error("unterminated region"));
            }
            region.ops.push(self.parse_op()?);
        }
    }

    fn parse_attr_value(&mut self) -> Result<Attribute, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                Ok(Attribute::Symbol(self.ident()?))
            }
            Some(b'\'') => self.parse_char(),
            Some(b'"') => Ok(Attribute::Str(self.parse_string()?)),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_int(),
            Some(b't') | Some(b'f') | Some(b'b') => {
                // `true`, `false`, or `bits"..."`.
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(Attribute::Bool(true)),
                    "false" => Ok(Attribute::Bool(false)),
                    "bits" => {
                        let s = self.parse_string()?;
                        let mut v = Vec::with_capacity(s.len());
                        for ch in s.chars() {
                            match ch {
                                '0' => v.push(false),
                                '1' => v.push(true),
                                other => {
                                    return Err(self
                                        .error(format!("invalid bit `{other}` in bits literal")))
                                }
                            }
                        }
                        Ok(Attribute::BoolArray(v))
                    }
                    other => Err(self.error(format!("unknown attribute value `{other}`"))),
                }
            }
            _ => Err(self.error("expected attribute value")),
        }
    }

    fn parse_int(&mut self) -> Result<Attribute, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        text.parse::<i64>()
            .map(Attribute::Int)
            .map_err(|e| self.error(format!("invalid integer `{text}`: {e}")))
    }

    fn parse_char(&mut self) -> Result<Attribute, ParseError> {
        self.expect(b'\'')?;
        let c = match self.bump().ok_or_else(|| self.error("unterminated char literal"))? {
            b'\\' => match self.bump().ok_or_else(|| self.error("unterminated escape"))? {
                b'\'' => b'\'',
                b'\\' => b'\\',
                b'x' => {
                    let hi = self.bump().ok_or_else(|| self.error("truncated \\x escape"))?;
                    let lo = self.bump().ok_or_else(|| self.error("truncated \\x escape"))?;
                    let hex = [hi, lo];
                    let hex =
                        std::str::from_utf8(&hex).ok().and_then(|h| u8::from_str_radix(h, 16).ok());
                    hex.ok_or_else(|| self.error("invalid \\x escape"))?
                }
                other => return Err(self.error(format!("unknown escape `\\{}`", other as char))),
            },
            raw => raw,
        };
        self.expect(b'\'')?;
        Ok(Attribute::Char(c))
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.error("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => match self.bump().ok_or_else(|| self.error("unterminated escape"))? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    other => {
                        return Err(self.error(format!("unknown escape `\\{}`", other as char)))
                    }
                },
                other => out.push(other as char),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Region;

    #[test]
    fn parse_bare_op() {
        let op = parse("regex.match_any_char").unwrap();
        assert!(op.is("regex.match_any_char"));
        assert_eq!(op.attr_count(), 0);
        assert!(op.regions().is_empty());
    }

    #[test]
    fn parse_attrs() {
        let op = parse("regex.quantifier {min = 3, max = -1}").unwrap();
        assert_eq!(op.attr("min"), Some(&Attribute::Int(3)));
        assert_eq!(op.attr("max"), Some(&Attribute::Int(-1)));
    }

    #[test]
    fn parse_all_value_kinds() {
        let op = parse(
            "t.x {a = true, b = false, c = 12, d = 'q', e = \"hi\\\"there\", f = @sym, g = bits\"0110\"}",
        )
        .unwrap();
        assert_eq!(op.attr("a"), Some(&Attribute::Bool(true)));
        assert_eq!(op.attr("b"), Some(&Attribute::Bool(false)));
        assert_eq!(op.attr("c"), Some(&Attribute::Int(12)));
        assert_eq!(op.attr("d"), Some(&Attribute::Char(b'q')));
        assert_eq!(op.attr("e"), Some(&Attribute::Str("hi\"there".into())));
        assert_eq!(op.attr("f"), Some(&Attribute::Symbol("sym".into())));
        assert_eq!(op.attr("g"), Some(&Attribute::BoolArray(vec![false, true, true, false])));
    }

    #[test]
    fn parse_nested_regions() {
        let text = "t.root ( { t.a\n t.b } , { } )";
        let op = parse(text).unwrap();
        assert_eq!(op.regions().len(), 2);
        assert_eq!(op.regions()[0].len(), 2);
        assert!(op.regions()[1].is_empty());
    }

    #[test]
    fn comments_are_ignored() {
        let op = parse("t.root ( { // comment\n t.a } )").unwrap();
        assert_eq!(op.regions()[0].len(), 1);
    }

    #[test]
    fn roundtrip_printer_output() {
        let leaf =
            Operation::new("regex.match_char").with_attr("target_char", Attribute::Char(b'\\'));
        let root = Operation::new("regex.root")
            .with_attr("has_prefix", true)
            .with_attr("label", "an \"odd\" name")
            .with_region(Region::with_ops(vec![leaf]))
            .with_region(Region::new());
        let text = root.to_text();
        assert_eq!(parse(&text).unwrap(), root);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse("t.a t.b").unwrap_err();
        assert!(err.message.contains("trailing input"), "{err}");
    }

    #[test]
    fn missing_dialect_prefix_rejected() {
        let err = parse("lonely").unwrap_err();
        assert!(err.message.contains("lacks a dialect prefix"), "{err}");
    }

    #[test]
    fn unterminated_region_rejected() {
        let err = parse("t.a ( { t.b ").unwrap_err();
        assert!(
            err.message.contains("unterminated region") || err.message.contains("expected"),
            "{err}"
        );
    }

    #[test]
    fn error_positions_are_1_based() {
        let err = parse("t.x {a = }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.column > 1);
    }

    #[test]
    fn parse_ops_sequence() {
        let ops = parse_ops("t.a\nt.b {x = 1}\nt.c").unwrap();
        assert_eq!(ops.len(), 3);
        assert!(ops[1].is("t.b"));
    }

    #[test]
    fn hex_char_escape() {
        let op = parse("t.x {c = '\\x0a'}").unwrap();
        assert_eq!(op.attr("c"), Some(&Attribute::Char(0x0a)));
    }
}
