//! **Server load** — closed-loop load generation against the
//! `cicero-server` HTTP front door over real sockets, exported to
//! `BENCH_server.json`.
//!
//! The scenario is the serving tier under steady traffic: `CLIENTS`
//! closed-loop clients (each issues its next request only after reading
//! the previous response) share one in-process server over loopback TCP.
//! The request mix is seeded from the `workloads` suites — `POST /scan`
//! with a suite's full pattern set over its chunks, interleaved with
//! `POST /match` for a single pattern over one chunk — so the program
//! cache sees the repeated-set traffic it was built for.
//!
//! The bench runs **two passes** against fresh servers: a single-worker
//! baseline and a `CLIENTS`-worker configuration. The ratio is the
//! multi-worker speedup; on a host with ≥ 4 CPUs the bench *asserts*
//! the multi-worker pass sustains ≥ 2× the single-worker req/s (the
//! acceptance floor), so a single-core CI cannot silently mask a
//! parallelism regression on real hardware.
//!
//! Reported per pass: sustained throughput (requests/s), client-observed
//! latency percentiles (p50/p90/p99), and the shutdown drain — each pass
//! ends with `POST /shutdown` and asserts that every request got a `200`
//! (zero drops) and that the drain completed inside the timeout.
//!
//! Request volume follows `CICERO_BENCH_SCALE`: `quick` 1 000, default
//! 10 000, `full` 20 000 (split across the two passes). Output path via
//! `CICERO_BENCH_SERVER` (empty to disable, default `BENCH_server.json`).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cicero_bench::{banner, f2, Scale, SEED};
use cicero_runtime::RuntimeOptions;
use cicero_server::{DrainReport, Server, ServerOptions};
use cicero_telemetry::escape_json;
use workloads::Benchmark;

/// Concurrent closed-loop clients (the acceptance floor is 4).
const CLIENTS: usize = 4;

/// The multi-worker pass must beat the single-worker pass by at least
/// this factor on a host with ≥ 4 CPUs.
const SPEEDUP_FLOOR: f64 = 2.0;

/// Patterns per suite / chunks per suite in the request mix. Kept small:
/// the load bench measures the serving tier, not simulator throughput.
const MIX_PATTERNS: usize = 4;
const MIX_CHUNKS: usize = 2;

fn total_requests(scale: Scale) -> usize {
    match scale.patterns {
        8 => 1_000,    // quick
        200 => 20_000, // full
        _ => 10_000,
    }
}

/// One request template: path + body, rendered per send so each request
/// carries its own `X-Cicero-Request-Id` header.
struct RequestTemplate {
    path: &'static str,
    body: String,
    endpoint: &'static str,
}

impl RequestTemplate {
    fn render(&self, request_id: &str) -> Vec<u8> {
        format!(
            "POST {} HTTP/1.1\r\ncontent-length: {}\r\nx-cicero-request-id: {request_id}\r\n\r\n{}",
            self.path,
            self.body.len(),
            self.body
        )
        .into_bytes()
    }
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!("POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len()).into_bytes()
}

fn json_str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape_json(s))).collect();
    format!("[{}]", quoted.join(","))
}

/// Build the seeded request mix for one suite: one `/scan` of the whole
/// set over the suite input, then one `/match` per pattern over one
/// chunk.
fn suite_templates(bench: &Benchmark) -> Vec<RequestTemplate> {
    let input: Vec<u8> = bench.chunks.iter().flatten().copied().collect();
    let input = String::from_utf8(input).expect("workload chunks are ASCII");
    let mut templates = vec![RequestTemplate {
        path: "/scan",
        body: format!(
            "{{\"patterns\":{},\"input\":\"{}\"}}",
            json_str_array(&bench.patterns),
            escape_json(&input)
        ),
        endpoint: "scan",
    }];
    for (i, pattern) in bench.patterns.iter().enumerate() {
        let chunk = &bench.chunks[i % bench.chunks.len()];
        let chunk = std::str::from_utf8(chunk).expect("workload chunks are ASCII");
        templates.push(RequestTemplate {
            path: "/match",
            body: format!(
                "{{\"pattern\":\"{}\",\"input\":\"{}\"}}",
                escape_json(pattern),
                escape_json(chunk)
            ),
            endpoint: "match",
        });
    }
    templates
}

/// Read one keep-alive response; returns the status code and the echoed
/// `X-Cicero-Request-Id` header.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Option<String>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("response status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    let mut request_id = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = line.strip_prefix("content-length: ") {
            content_length = value.parse().expect("content-length value");
        }
        if let Some(value) = line.strip_prefix("x-cicero-request-id: ") {
            request_id = Some(value.to_owned());
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    (status, request_id)
}

/// One closed-loop client: `count` requests round-robin over the mix on
/// a single keep-alive connection, each tagged with a unique
/// `X-Cicero-Request-Id` that the response must echo back. Returns
/// per-request latencies (ms).
fn run_client(
    addr: std::net::SocketAddr,
    templates: &[RequestTemplate],
    client: usize,
    count: usize,
) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(count);
    // Stagger the round-robin start so clients exercise different
    // endpoints concurrently.
    let start_at = client * 3;
    for i in 0..count {
        let template = &templates[(start_at + i) % templates.len()];
        let request_id = format!("load-c{client}-r{i}");
        let start = Instant::now();
        writer.write_all(&template.render(&request_id)).expect("send request");
        let (status, echoed) = read_response(&mut reader);
        assert_eq!(status, 200, "closed-loop request to /{} failed", template.endpoint);
        assert_eq!(
            echoed.as_deref(),
            Some(request_id.as_str()),
            "response must echo the client's X-Cicero-Request-Id"
        );
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
    }
    latencies
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[index]
}

/// Everything one pass produces for the report.
struct PassResult {
    workers: usize,
    served: usize,
    throughput_rps: f64,
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
    run_wall: Duration,
    drain_wall: Duration,
    report: DrainReport,
}

/// Run one full closed-loop pass against a fresh server with the given
/// worker count, including graceful shutdown with zero-drop assertions.
fn run_pass(
    templates: &std::sync::Arc<Vec<RequestTemplate>>,
    workers: usize,
    total: usize,
) -> PassResult {
    let per_client = (total / CLIENTS).max(1);
    let server = Server::bind(ServerOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 64,
        drain_timeout: Duration::from_millis(5000),
        runtime: RuntimeOptions { jobs: 1, ..RuntimeOptions::default() },
        ..ServerOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let run_start = Instant::now();
    let mut clients = Vec::new();
    for client in 0..CLIENTS {
        let templates = std::sync::Arc::clone(templates);
        clients.push(std::thread::spawn(move || run_client(addr, &templates, client, per_client)));
    }
    let mut latencies: Vec<f64> = Vec::with_capacity(per_client * CLIENTS);
    for client in clients {
        latencies.extend(client.join().expect("client thread"));
    }
    let run_wall = run_start.elapsed();
    let served = latencies.len();
    assert_eq!(served, per_client * CLIENTS, "every closed-loop request must be answered");

    // Graceful shutdown: the server must answer the shutdown request,
    // drain, and report zero drops.
    let drain_requested = Instant::now();
    {
        let stream = TcpStream::connect(addr).expect("connect for shutdown");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);
        writer.write_all(&post("/shutdown", "")).expect("send shutdown");
        let (status, minted) = read_response(&mut reader);
        assert_eq!(status, 200, "shutdown must be acknowledged");
        assert!(minted.is_some(), "even an id-less request gets a server-minted request id");
    }
    let report = server_thread.join().expect("server thread");
    let drain_wall = drain_requested.elapsed();
    assert!(report.drained, "drain must complete inside the timeout: {report:?}");
    assert!(handle.is_draining());
    assert_eq!(report.rejected, 0, "a closed loop within capacity never trips admission");
    assert_eq!(
        report.requests,
        served as u64 + 1, // + the shutdown request itself
        "no in-flight request may be dropped during drain"
    );

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    PassResult {
        workers,
        served,
        throughput_rps: served as f64 / run_wall.as_secs_f64(),
        p50: percentile(&latencies, 0.50),
        p90: percentile(&latencies, 0.90),
        p99: percentile(&latencies, 0.99),
        max: latencies.last().copied().unwrap_or(0.0),
        run_wall,
        drain_wall,
        report,
    }
}

fn print_pass(label: &str, pass: &PassResult) {
    println!(
        "  {label:<13}: {} req/s over {:.2} s ({} workers)",
        f2(pass.throughput_rps),
        pass.run_wall.as_secs_f64(),
        pass.workers
    );
    println!(
        "                 p50 {} ms  p90 {} ms  p99 {} ms  max {} ms; drain {:.1} ms, {} served, \
         {} rejected",
        f2(pass.p50),
        f2(pass.p90),
        f2(pass.p99),
        f2(pass.max),
        pass.report.wall.as_secs_f64() * 1e3,
        pass.report.requests,
        pass.report.rejected
    );
}

fn pass_json(pass: &PassResult) -> String {
    format!(
        "{{\"workers\": {}, \"requests\": {}, \"throughput_rps\": {:.1}, \
         \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}, \
         \"run_seconds\": {:.3}, \"drained\": {}, \"drain_ms\": {:.1}, \
         \"served_total\": {}, \"rejected_at_admission\": {}}}",
        pass.workers,
        pass.served,
        pass.throughput_rps,
        pass.p50,
        pass.p90,
        pass.p99,
        pass.max,
        pass.run_wall.as_secs_f64(),
        pass.report.drained,
        pass.drain_wall.as_secs_f64() * 1e3,
        pass.report.requests,
        pass.report.rejected,
    )
}

fn main() {
    let scale = Scale::from_env();
    banner("Server", "closed-loop HTTP load vs the cicero-server front door", scale);
    let total = total_requests(scale);
    let per_pass = total / 2;
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);

    // The request mix: the simple suites, small, seeded — repeated sets
    // are the cache-friendly common case for serving traffic.
    let mut templates = Vec::new();
    templates.extend(suite_templates(&Benchmark::protomata(SEED, MIX_PATTERNS, MIX_CHUNKS)));
    templates.extend(suite_templates(&Benchmark::brill(SEED, MIX_PATTERNS, MIX_CHUNKS)));
    let scan_templates = templates.iter().filter(|t| t.endpoint == "scan").count();
    let templates = std::sync::Arc::new(templates);

    println!(
        "  {total} requests from {CLIENTS} closed-loop clients, split over a 1-worker and a \
         {CLIENTS}-worker pass ({} templates, {scan_templates} scans/cycle)",
        templates.len()
    );

    let single = run_pass(&templates, 1, per_pass);
    let multi = run_pass(&templates, CLIENTS, per_pass);
    let speedup = multi.throughput_rps / single.throughput_rps;
    let speedup_asserted = host_cpus >= 4;

    println!();
    print_pass("single-worker", &single);
    print_pass("multi-worker", &multi);
    println!(
        "  speedup      : {}x multi-worker over single-worker on {host_cpus} CPU(s) \
         (floor {SPEEDUP_FLOOR}x, asserted only when host_cpus >= 4)",
        f2(speedup)
    );
    if speedup_asserted {
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "multi-core host must sustain >= {SPEEDUP_FLOOR}x single-worker throughput, \
             got {speedup:.2}x ({:.1} vs {:.1} req/s)",
            multi.throughput_rps,
            single.throughput_rps
        );
    } else {
        println!("  (single-core host: speedup recorded but not asserted)");
    }

    let path =
        std::env::var("CICERO_BENCH_SERVER").unwrap_or_else(|_| "BENCH_server.json".to_owned());
    if !path.is_empty() {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"server_load\",\n");
        let _ = writeln!(json, "  \"clients\": {CLIENTS},");
        let _ = writeln!(json, "  \"requests\": {},", single.served + multi.served);
        let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
        json.push_str(
            "  \"notes\": \"closed-loop clients over loopback TCP; latency is client-observed \
             round-trip per request (POST /scan with a suite's pattern set, POST /match per \
             pattern); two passes against fresh servers (1 worker, then `clients` workers) and \
             multiworker_speedup is their req/s ratio, asserted >= 2.0 when host_cpus >= 4; each \
             pass ends with POST /shutdown and asserts a complete drain with zero dropped \
             requests\",\n",
        );
        let _ = writeln!(json, "  \"throughput_rps\": {:.1},", multi.throughput_rps);
        let _ = writeln!(
            json,
            "  \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},",
            multi.p50, multi.p90, multi.p99, multi.max
        );
        let _ = writeln!(json, "  \"multiworker_speedup\": {speedup:.3},");
        let _ = writeln!(json, "  \"speedup_floor\": {SPEEDUP_FLOOR:.1},");
        let _ = writeln!(json, "  \"speedup_asserted\": {speedup_asserted},");
        let _ = writeln!(json, "  \"single_worker\": {},", pass_json(&single));
        let _ = writeln!(json, "  \"multi_worker\": {}", pass_json(&multi));
        json.push_str("}\n");
        match std::fs::write(&path, json) {
            Ok(()) => println!("\n  results written to {path}"),
            Err(e) => eprintln!("  warning: could not write {path}: {e}"),
        }
    }
}
