//! **Extension bench** — the Future-Work multi-matching ISA: one combined
//! program with identified acceptances versus scanning each RE
//! separately. The win comes from sharing the scan and halting the moment
//! *any* RE matches.
//!
//! Two accounting columns qualify the one-pass number:
//!
//! * *one-pass cycles* — the cycle-level run, which (like the hardware)
//!   halts at the first acceptance: the cheapest answer to "did any RE
//!   match, and which fired first";
//! * *matches per-RE / one-pass* — per-RE counts every `(RE, chunk)`
//!   acceptance; one-pass counts distinct set members found by the
//!   all-matches interpreter (`cicero_isa::run_all`). Equal columns mean
//!   the single shared scan loses no matches — the set answers the same
//!   question as the per-RE sweep.

use cicero_bench::{banner, f2, suites, Scale, Table};
use cicero_sim::{simulate_batch, ArchConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Extension", "multi-matching: one-pass set vs per-RE scans (NEW 16x1)", scale);
    let config = ArchConfig::new_organization(16, 1);
    let compiler = cicero_core::Compiler::new();
    let mut table = Table::new(vec![
        "suite",
        "set size [instr]",
        "per-RE cycles",
        "one-pass cycles",
        "speedup",
        "matches per-RE",
        "matches one-pass",
    ]);
    for bench in suites(scale) {
        // Use the simple suites' patterns as the signature set.
        let set = compiler.compile_set(&bench.patterns).expect("suite compiles as a set");
        let singles: Vec<cicero_isa::Program> = bench
            .patterns
            .iter()
            .map(|p| compiler.compile(p).expect("compiles").into_program())
            .collect();
        let mut per_re = 0u64;
        let mut per_re_matches = 0usize;
        for program in &singles {
            for report in simulate_batch(program, &bench.chunks, &config) {
                per_re += report.cycles;
                per_re_matches += usize::from(report.accepted);
            }
        }
        let mut one_pass = 0u64;
        for report in simulate_batch(set.program(), &bench.chunks, &config) {
            one_pass += report.cycles;
        }
        // All-matches accounting: the functional interpreter keeps
        // running past the first acceptance and reports every distinct
        // set member per chunk, so the one-pass program recovers the
        // full per-RE match picture.
        let one_pass_matches: usize = bench
            .chunks
            .iter()
            .map(|chunk| cicero_isa::run_all(set.program(), chunk).matched_ids.len())
            .sum();
        assert_eq!(
            per_re_matches, one_pass_matches,
            "{}: the all-matches set scan must find every per-RE match",
            bench.name
        );
        table.row(vec![
            bench.name.to_owned(),
            set.program().len().to_string(),
            per_re.to_string(),
            one_pass.to_string(),
            format!("{}x", f2(per_re as f64 / one_pass as f64)),
            per_re_matches.to_string(),
            one_pass_matches.to_string(),
        ]);
    }
    table.print();
    println!("\n  note: one-pass cycles answer the first-match question (hardware halts at the");
    println!("  first acceptance); the matches columns use the all-matches interpreter and");
    println!("  show the shared scan drops none of the per-RE matches");
}
