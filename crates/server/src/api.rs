//! Endpoint handlers: route one parsed [`Request`] to a [`Response`].
//!
//! All handlers are pure request → response functions over the shared
//! server state; transport concerns (timeouts, keep-alive, draining)
//! live in the connection loop, and every error path produces a typed
//! JSON body — a client never sees a hang or a bare connection reset
//! for a request the server actually read.

use std::sync::Arc;
use std::time::Duration;

use cicero_core::Backend;
use cicero_isa::Program;
use cicero_runtime::{Budget, BudgetKind, MatchOutcome, PinGuard, StreamError, StreamOptions};
use cicero_sim::ArchConfig;
use cicero_telemetry::{render_chrome_trace, JsonObject, TraceSpan};

use crate::http::{Request, Response};
use crate::json::{self, Json};
use crate::registry::RegistryError;
use crate::Shared;

/// Whether `path` addresses the flight-recorder debug surface.
fn is_traces_path(path: &str) -> bool {
    path == "/debug/traces" || path.starts_with("/debug/traces/")
}

/// The `{id}` of a `/rulesets/{id}` path (`None` for the collection
/// itself or anything deeper).
fn ruleset_id(path: &str) -> Option<&str> {
    let id = path.strip_prefix("/rulesets/")?;
    (!id.is_empty() && !id.contains('/')).then_some(id)
}

/// Route a request to its handler. `root` is the request's trace span;
/// handlers hang their compile/execute/merge children off it.
pub(crate) fn handle(shared: &Shared, request: &Request, root: &TraceSpan) -> Response {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/match") => handle_match(shared, request, root),
        ("POST", "/scan") => handle_scan(shared, request, root),
        ("POST", "/scan/stream") => handle_scan_stream(shared, request, root),
        ("GET", "/metrics") => handle_metrics(shared, request),
        ("GET", "/healthz") => handle_healthz(shared),
        ("POST", "/shutdown") => handle_shutdown(shared),
        ("GET", "/rulesets") => handle_ruleset_list(shared),
        ("PUT", _) if ruleset_id(path).is_some() => {
            handle_ruleset_put(shared, request, ruleset_id(path).unwrap())
        }
        ("GET", _) if ruleset_id(path).is_some() => {
            handle_ruleset_get(shared, ruleset_id(path).unwrap())
        }
        ("DELETE", _) if ruleset_id(path).is_some() => {
            handle_ruleset_delete(shared, ruleset_id(path).unwrap())
        }
        ("GET", _) if is_traces_path(path) => handle_traces(shared, request),
        (
            _,
            "/match" | "/scan" | "/scan/stream" | "/metrics" | "/healthz" | "/shutdown"
            | "/rulesets",
        ) => error_response(
            405,
            &format!("method {} not allowed on {}", request.method, request.path),
        ),
        _ if is_traces_path(path) || ruleset_id(path).is_some() => error_response(
            405,
            &format!("method {} not allowed on {}", request.method, request.path),
        ),
        _ => error_response(404, &format!("no such endpoint {:?}", request.path)),
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, JsonObject::new().field("error", message).finish())
}

/// The `X-Cicero-Fuel` / `X-Cicero-Deadline-Ms` headers as a [`Budget`].
fn budget_from_headers(request: &Request) -> Result<Budget, Response> {
    let mut budget = Budget::default();
    if let Some(value) = request.header("x-cicero-fuel") {
        let fuel: u64 = value
            .parse()
            .map_err(|_| error_response(400, &format!("bad X-Cicero-Fuel value {value:?}")))?;
        budget.fuel = Some(fuel);
    }
    if let Some(value) = request.header("x-cicero-deadline-ms") {
        let ms: u64 = value.parse().map_err(|_| {
            error_response(400, &format!("bad X-Cicero-Deadline-Ms value {value:?}"))
        })?;
        budget.deadline = Some(Duration::from_millis(ms));
    }
    Ok(budget)
}

/// The `X-Cicero-Backend` header (`sim` or `host`); absent, the
/// runtime's configured default (the server serves host-native unless
/// started with `--backend sim`).
fn backend_from_headers(shared: &Shared, request: &Request) -> Result<Backend, Response> {
    match request.header("x-cicero-backend") {
        None => Ok(shared.runtime.backend()),
        Some(value) => value
            .parse()
            .map_err(|e: String| error_response(400, &format!("bad X-Cicero-Backend value: {e}"))),
    }
}

/// The paper's `NxM` architecture naming, as also used by the CLI's
/// `--config` flag.
fn parse_arch_config(spec: &str) -> Result<ArchConfig, String> {
    let (n, m) =
        spec.split_once('x').ok_or_else(|| format!("config {spec:?} is not of the form NxM"))?;
    let n: usize = n.parse().map_err(|_| format!("bad core count in {spec:?}"))?;
    let m: usize = m.parse().map_err(|_| format!("bad engine count in {spec:?}"))?;
    if n == 1 {
        Ok(ArchConfig::old_organization(m))
    } else if n.is_power_of_two() {
        Ok(ArchConfig::new_organization(n, m))
    } else {
        Err(format!("core count {n} must be 1 (old organization) or a power of two"))
    }
}

/// The body shape shared by `/match` and `/scan`.
struct MatchBody {
    patterns: Vec<String>,
    input: Vec<u8>,
    config: ArchConfig,
}

/// The `/scan` body: patterns are optional because a `?ruleset=` scan
/// takes them from the registry.
struct ScanBody {
    patterns: Option<Vec<String>>,
    input: Vec<u8>,
    config: ArchConfig,
}

/// The `"patterns"` / `"pattern"` field pair; `Ok(None)` when neither
/// is present (the caller decides whether that is an error).
fn parse_patterns_field(doc: &Json) -> Result<Option<Vec<String>>, Response> {
    let patterns: Vec<String> = match (doc.get("patterns"), doc.get("pattern")) {
        (Some(list), None) => list
            .as_arr()
            .ok_or_else(|| error_response(400, "\"patterns\" must be an array of strings"))?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| error_response(400, "\"patterns\" must be an array of strings"))
            })
            .collect::<Result<_, _>>()?,
        (None, Some(Json::Str(pattern))) => vec![pattern.clone()],
        (None, Some(_)) => return Err(error_response(400, "\"pattern\" must be a string")),
        (Some(_), Some(_)) => {
            return Err(error_response(400, "provide \"patterns\" or \"pattern\", not both"))
        }
        (None, None) => return Ok(None),
    };
    if patterns.is_empty() {
        return Err(error_response(400, "\"patterns\" must name at least one pattern"));
    }
    Ok(Some(patterns))
}

fn parse_input_and_config(shared: &Shared, doc: &Json) -> Result<(Vec<u8>, ArchConfig), Response> {
    let input = doc
        .get("input")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(400, "missing \"input\" string field"))?
        .as_bytes()
        .to_vec();
    let config = match doc.get("config") {
        None => shared.config.clone(),
        Some(Json::Str(spec)) => parse_arch_config(spec).map_err(|e| error_response(400, &e))?,
        Some(_) => return Err(error_response(400, "\"config\" must be a string like \"16x1\"")),
    };
    Ok((input, config))
}

fn parse_json_body(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error_response(400, "request body is not UTF-8"))?;
    json::parse(text)
        .map_err(|e| error_response(400, &format!("request body is not valid JSON: {e}")))
}

fn parse_match_body(shared: &Shared, request: &Request) -> Result<MatchBody, Response> {
    let doc = parse_json_body(request)?;
    let patterns = parse_patterns_field(&doc)?
        .ok_or_else(|| error_response(400, "missing \"patterns\" (or \"pattern\") field"))?;
    let (input, config) = parse_input_and_config(shared, &doc)?;
    Ok(MatchBody { patterns, input, config })
}

fn parse_scan_body(shared: &Shared, request: &Request) -> Result<ScanBody, Response> {
    let doc = parse_json_body(request)?;
    let patterns = parse_patterns_field(&doc)?;
    let (input, config) = parse_input_and_config(shared, &doc)?;
    Ok(ScanBody { patterns, input, config })
}

/// The §6 batch granularity, mirroring the CLI's chunker: 500-byte
/// chunks, with an empty input still yielding one (empty) chunk.
fn chunk_input(input: &[u8]) -> Vec<Vec<u8>> {
    if input.is_empty() {
        return vec![Vec::new()];
    }
    input.chunks(workloads::CHUNK_BYTES).map(<[u8]>::to_vec).collect()
}

fn budget_kind_name(kind: BudgetKind) -> &'static str {
    match kind {
        BudgetKind::Fuel => "fuel",
        BudgetKind::Deadline => "deadline",
    }
}

/// Wrap per-row JSON objects and top-level summary fields into the final
/// response, downgrading the status to `429` on a tripped budget (the
/// partial rows still ship) or `500` on a worker fault.
fn verdict_status(budget_kind: Option<BudgetKind>, faults: usize) -> u16 {
    if budget_kind.is_some() {
        429
    } else if faults > 0 {
        500
    } else {
        200
    }
}

fn finish_with_budget(
    shared: &Shared,
    mut object: JsonObject,
    budget_kind: Option<BudgetKind>,
    faults: usize,
) -> Response {
    object = object.field("budget_exceeded", budget_kind.is_some());
    if let Some(kind) = budget_kind {
        object = object.field("kind", budget_kind_name(kind));
    }
    if faults > 0 {
        object = object.field("faults", faults as u64);
    }
    let status = verdict_status(budget_kind, faults);
    let response = Response::json(status, object.finish());
    if status == 429 {
        // The same p50-scaled clamp as admission 503s and tenant-limit
        // 429s: every backpressure path shares crate::retry_after_secs.
        response.with_header("retry-after", crate::retry_after_secs(&shared.telemetry).to_string())
    } else {
        response
    }
}

/// `POST /match`: each pattern is matched independently over the whole
/// input through the runtime's guarded path (cache, budgets, panic
/// isolation). Body: `{"patterns": [...], "input": "...", "config"?: "NxM"}`.
fn handle_match(shared: &Shared, request: &Request, root: &TraceSpan) -> Response {
    let budget = match budget_from_headers(request) {
        Ok(budget) => budget,
        Err(response) => return response,
    };
    let backend = match backend_from_headers(shared, request) {
        Ok(backend) => backend,
        Err(response) => return response,
    };
    let body = match parse_match_body(shared, request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let inputs = vec![body.input.clone()];
    let mut rows = Vec::new();
    let mut budget_kind = None;
    let mut faults = 0usize;
    for pattern in &body.patterns {
        let batch = match shared.runtime.match_batch_guarded_traced_on(
            backend,
            pattern,
            &inputs,
            &body.config,
            &budget,
            Some(root),
        ) {
            Ok(batch) => batch,
            Err(e) => return error_response(400, &format!("pattern {pattern:?}: {e}")),
        };
        let outcome = &batch.outcomes[0];
        let mut row = JsonObject::new().field("pattern", pattern.as_str());
        match outcome {
            MatchOutcome::Complete(report) => {
                row = row
                    .field("verdict", if report.accepted { "match" } else { "no-match" })
                    .field("matched", report.accepted)
                    .field("cycles", report.cycles);
                if let Some(position) = report.match_position {
                    row = row.field("match_position", position as u64);
                }
            }
            MatchOutcome::Budget { kind, partial } => {
                budget_kind = Some(*kind);
                row = row
                    .field("verdict", "budget")
                    .field("matched", false)
                    .field("kind", budget_kind_name(*kind));
                if let Some(partial) = partial {
                    row = row.field("partial_cycles", partial.cycles);
                }
            }
            MatchOutcome::Fault(message) => {
                faults += 1;
                row = row
                    .field("verdict", "fault")
                    .field("matched", false)
                    .field("fault", message.as_str());
            }
        }
        rows.push(row.field("cache_hit", batch.cache_hit).finish());
    }
    let object = JsonObject::new()
        .field("input_bytes", body.input.len() as u64)
        .field("config", body.config.name())
        .field_raw("results", &format!("[{}]", rows.join(",")));
    finish_with_budget(shared, object, budget_kind, faults)
}

/// How a scan acquired its pattern set: compiled from the request body,
/// or pinned against a registry ruleset version. The pin (when present)
/// holds the version's drain accounting open for the whole scan, so a
/// concurrent `PUT` swap cannot release the version out from under it.
enum ScanSource {
    Inline { patterns: Vec<String>, program: Arc<Program> },
    Ruleset { pin: PinGuard, id: String },
}

impl ScanSource {
    fn patterns(&self) -> &[String] {
        match self {
            ScanSource::Inline { patterns, .. } => patterns,
            ScanSource::Ruleset { pin, .. } => pin.handle().patterns(),
        }
    }

    fn program(&self) -> &Arc<Program> {
        match self {
            ScanSource::Inline { program, .. } => program,
            ScanSource::Ruleset { pin, .. } => pin.program(),
        }
    }
}

/// Resolve `?ruleset={id}` to a pinned version, or compile the inline
/// pattern list. Ruleset scans must not also carry patterns — the
/// ruleset *is* the pattern source.
fn resolve_scan_source(
    shared: &Shared,
    request: &Request,
    patterns: Option<Vec<String>>,
    root: &TraceSpan,
) -> Result<ScanSource, Response> {
    match request.query_param("ruleset") {
        Some(id) => {
            if patterns.is_some() {
                return Err(error_response(
                    400,
                    "a ?ruleset= scan takes its patterns from the registry; \
                     drop the \"patterns\" field",
                ));
            }
            let pin = shared
                .registry
                .pin(id)
                .ok_or_else(|| error_response(404, &format!("no ruleset {id:?}")))?;
            root.annotate("ruleset", id);
            root.annotate("ruleset_version", pin.version());
            Ok(ScanSource::Ruleset { pin, id: id.to_owned() })
        }
        None => {
            let patterns = patterns.ok_or_else(|| {
                error_response(400, "missing \"patterns\" (or \"pattern\") field")
            })?;
            let (program, _cache_hit) = shared
                .runtime
                .compile_set_traced(&patterns, Some(root))
                .map_err(|e| error_response(400, &format!("compiling the pattern set: {e}")))?;
            Ok(ScanSource::Inline { patterns, program })
        }
    }
}

/// `POST /scan`: the patterns compile as one multi-matching set (through
/// the LRU cache), the input is scanned in 500-byte chunks on the worker
/// pool, and per-pattern chunk counts come from an all-matches pass
/// (host engine `run_all`, or [`cicero_isa::run_all`] under
/// `X-Cicero-Backend: sim`) so overlapping set members are all
/// reported — the same accounting as `cicero scan --jobs N`. With
/// `?ruleset={id}`, the pattern set comes from the registry instead of
/// the body: the scan pins the version current at admission and the
/// response is tagged with it (`x-cicero-ruleset-version`).
fn handle_scan(shared: &Shared, request: &Request, root: &TraceSpan) -> Response {
    let budget = match budget_from_headers(request) {
        Ok(budget) => budget,
        Err(response) => return response,
    };
    let backend = match backend_from_headers(shared, request) {
        Ok(backend) => backend,
        Err(response) => return response,
    };
    let body = match parse_scan_body(shared, request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let source = match resolve_scan_source(shared, request, body.patterns, root) {
        Ok(source) => source,
        Err(response) => return response,
    };
    let program = Arc::clone(source.program());
    let chunks = chunk_input(&body.input);
    let batch = shared.runtime.run_batch_guarded_traced_on(
        backend,
        &program,
        &chunks,
        &body.config,
        &budget,
        Some(root),
    );

    // Merging the per-chunk outcomes re-runs accepted chunks through the
    // all-matches interpreter, which is real work worth its own span.
    let merge_span = root.child("merge");
    let mut per_pattern = vec![0u64; source.patterns().len()];
    let mut cycles = 0u64;
    let mut budget_kind = None;
    let mut faults = 0usize;
    for (chunk, outcome) in chunks.iter().zip(&batch.outcomes) {
        match outcome {
            MatchOutcome::Complete(report) => {
                cycles += report.cycles;
                if report.accepted {
                    // The first-acceptance run halts on any set member
                    // (hardware semantics); the all-matches pass reports
                    // every distinct one. On the host backend that pass
                    // is the memoized host engine; on sim it is the
                    // functional interpreter. Their id sets are
                    // byte-identical (proptested in cicero-runtime).
                    let ids = match backend {
                        Backend::Host => {
                            shared.runtime.host_program(&program).run_all(chunk).matched_ids
                        }
                        Backend::Sim => cicero_isa::run_all(&program, chunk).matched_ids,
                    };
                    for id in ids {
                        if let Some(count) = per_pattern.get_mut(usize::from(id)) {
                            *count += 1;
                        }
                    }
                }
            }
            MatchOutcome::Budget { kind, partial } => {
                budget_kind = Some(*kind);
                if let Some(partial) = partial {
                    cycles += partial.cycles;
                }
            }
            MatchOutcome::Fault(_) => faults += 1,
        }
    }
    merge_span.annotate("chunks", chunks.len());
    merge_span.annotate("pattern_hits", per_pattern.iter().sum::<u64>());
    merge_span.close();

    let rows: Vec<String> = source
        .patterns()
        .iter()
        .zip(&per_pattern)
        .enumerate()
        .map(|(id, (pattern, count))| {
            JsonObject::new()
                .field("id", id as u64)
                .field("pattern", pattern.as_str())
                .field("chunks_matched", *count)
                .finish()
        })
        .collect();
    let mut object = JsonObject::new();
    if let ScanSource::Ruleset { pin, id } = &source {
        object = object.field("ruleset", id.as_str()).field("ruleset_version", pin.version());
    }
    let object = object
        .field("chunks", chunks.len() as u64)
        .field("chunk_bytes", workloads::CHUNK_BYTES as u64)
        .field("completed", batch.completed() as u64)
        .field("matched", per_pattern.iter().any(|c| *c > 0))
        .field("cycles", cycles)
        .field("jobs", batch.jobs as u64)
        .field("worker_restarts", batch.worker_restarts)
        .field_raw("per_pattern", &format!("[{}]", rows.join(",")));
    let response = finish_with_budget(shared, object, budget_kind, faults);
    match &source {
        ScanSource::Ruleset { pin, .. } => {
            response.with_header("x-cicero-ruleset-version", pin.version().to_owned())
        }
        ScanSource::Inline { .. } => response,
    }
}

/// `POST /scan/stream?ruleset={id}`: the raw request body — sent with
/// `Transfer-Encoding: chunked` or a plain `Content-Length` — streams
/// through [`Runtime::scan_stream`] against the pinned ruleset version.
/// The verdict is chunk-split invariant end to end: neither the HTTP
/// chunk boundaries (reassembled by the framing layer) nor the engine's
/// own chunking (`X-Cicero-Chunk-Size`, default 64 KiB) can change any
/// byte of the response, which is why the response carries no
/// wall-clock or buffering fields.
///
/// [`Runtime::scan_stream`]: cicero_runtime::Runtime::scan_stream
fn handle_scan_stream(shared: &Shared, request: &Request, root: &TraceSpan) -> Response {
    let budget = match budget_from_headers(request) {
        Ok(budget) => budget,
        Err(response) => return response,
    };
    let backend = match backend_from_headers(shared, request) {
        Ok(backend) => backend,
        Err(response) => return response,
    };
    let Some(id) = request.query_param("ruleset") else {
        return error_response(
            400,
            "/scan/stream takes raw input bytes as its body, so the pattern set \
             must come from the registry: add ?ruleset={id}",
        );
    };
    let Some(pin) = shared.registry.pin(id) else {
        return error_response(404, &format!("no ruleset {id:?}"));
    };
    root.annotate("ruleset", id);
    root.annotate("ruleset_version", pin.version());
    let mut options = StreamOptions { budget, ..StreamOptions::default() };
    if let Some(value) = request.header("x-cicero-chunk-size") {
        match value.parse::<usize>() {
            Ok(size) if size > 0 => options.chunk_size = size,
            _ => return error_response(400, &format!("bad X-Cicero-Chunk-Size value {value:?}")),
        }
    }
    let config = match request.header("x-cicero-config") {
        None => shared.config.clone(),
        Some(spec) => match parse_arch_config(spec) {
            Ok(config) => config,
            Err(e) => return error_response(400, &e),
        },
    };
    let report = match shared.runtime.scan_stream_traced_on(
        backend,
        pin.program(),
        std::io::Cursor::new(request.body.clone()),
        &config,
        &options,
        Some(root),
    ) {
        Ok(report) => report,
        Err(e @ StreamError::Options(_)) => return error_response(400, &e.to_string()),
        Err(e) => return error_response(500, &format!("streaming scan failed: {e}")),
    };
    let mut object = JsonObject::new()
        .field("ruleset", id)
        .field("ruleset_version", pin.version())
        .field("input_bytes", request.body.len() as u64)
        .field("bytes_scanned", report.bytes)
        .field("chunks", report.chunks)
        .field("chunk_bytes", options.chunk_size as u64);
    let mut budget_kind = None;
    let mut faults = 0usize;
    match &report.outcome {
        MatchOutcome::Complete(exec) => {
            object = object
                .field("verdict", if exec.accepted { "match" } else { "no-match" })
                .field("matched", exec.accepted)
                .field("cycles", exec.cycles);
            if let Some(position) = exec.match_position {
                object = object.field("match_position", position as u64);
            }
        }
        MatchOutcome::Budget { kind, partial } => {
            budget_kind = Some(*kind);
            object = object.field("verdict", "budget").field("matched", false);
            if let Some(partial) = partial {
                object = object.field("partial_cycles", partial.cycles);
            }
        }
        MatchOutcome::Fault(message) => {
            faults = 1;
            object = object
                .field("verdict", "fault")
                .field("matched", false)
                .field("fault", message.as_str());
        }
    }
    finish_with_budget(shared, object, budget_kind, faults)
        .with_header("x-cicero-ruleset-version", pin.version().to_owned())
}

/// Map a registry failure to its HTTP shape.
fn registry_error_response(error: &RegistryError) -> Response {
    let status = match error {
        RegistryError::InvalidId(_) | RegistryError::Compile(_) => 400,
        RegistryError::NotFound(_) => 404,
        RegistryError::Io(_) | RegistryError::Corrupt(_) => 500,
    };
    error_response(status, &error.to_string())
}

/// The JSON rendering of a pattern list.
fn patterns_json(patterns: &[String]) -> String {
    let items: Vec<String> =
        patterns.iter().map(|p| format!("\"{}\"", cicero_telemetry::escape_json(p))).collect();
    format!("[{}]", items.join(","))
}

/// `PUT /rulesets/{id}`: compile the body's pattern set once, install it
/// as the current version (content-hash tagged), and persist the
/// compiled artifact. `201` on first install, `200` on a hot swap — the
/// replaced version keeps serving its in-flight scans until they drain.
fn handle_ruleset_put(shared: &Shared, request: &Request, id: &str) -> Response {
    let doc = match parse_json_body(request) {
        Ok(doc) => doc,
        Err(response) => return response,
    };
    let patterns = match parse_patterns_field(&doc) {
        Ok(Some(patterns)) => patterns,
        Ok(None) => return error_response(400, "missing \"patterns\" (or \"pattern\") field"),
        Err(response) => return response,
    };
    let outcome = match shared.registry.put(&shared.runtime, id, patterns) {
        Ok(outcome) => outcome,
        Err(e) => return registry_error_response(&e),
    };
    let status = if outcome.replaced.is_some() { 200 } else { 201 };
    let mut object = JsonObject::new()
        .field("id", id)
        .field("version", outcome.version.as_str())
        .field("cache_hit", outcome.cache_hit);
    if let Some(replaced) = &outcome.replaced {
        object = object.field("replaced", replaced.as_str());
    }
    Response::json(status, object.finish()).with_header("x-cicero-ruleset-version", outcome.version)
}

/// `GET /rulesets/{id}`: the current version, its pattern list, and the
/// live pin count.
fn handle_ruleset_get(shared: &Shared, id: &str) -> Response {
    let Some(info) = shared.registry.get(id) else {
        return error_response(404, &format!("no ruleset {id:?}"));
    };
    Response::json(
        200,
        JsonObject::new()
            .field("id", info.id.as_str())
            .field("version", info.version.as_str())
            .field("pins", info.pins)
            .field_raw("patterns", &patterns_json(&info.patterns))
            .finish(),
    )
    .with_header("x-cicero-ruleset-version", info.version)
}

/// `DELETE /rulesets/{id}`: retire the current version (in-flight scans
/// drain on it) and unlink the persisted artifact.
fn handle_ruleset_delete(shared: &Shared, id: &str) -> Response {
    match shared.registry.delete(id) {
        Ok(version) => Response::json(
            200,
            JsonObject::new().field("id", id).field("deleted_version", version).finish(),
        ),
        Err(e) => registry_error_response(&e),
    }
}

/// `GET /rulesets`: every ruleset with its current version.
fn handle_ruleset_list(shared: &Shared) -> Response {
    let rows: Vec<String> = shared
        .registry
        .list()
        .into_iter()
        .map(|info| {
            JsonObject::new()
                .field("id", info.id.as_str())
                .field("version", info.version.as_str())
                .field("patterns", info.patterns.len() as u64)
                .field("pins", info.pins)
                .finish()
        })
        .collect();
    Response::json(
        200,
        JsonObject::new().field_raw("rulesets", &format!("[{}]", rows.join(","))).finish(),
    )
}

/// `GET /metrics?format=summary|jsonl|prometheus`: the unified telemetry
/// dump, including the Prometheus text exposition format scrapers expect.
fn handle_metrics(shared: &Shared, request: &Request) -> Response {
    shared.refresh_gauges();
    match request.query_param("format").unwrap_or("summary") {
        "summary" => Response::text(200, shared.telemetry.render_summary()),
        "jsonl" => Response {
            status: 200,
            headers: Vec::new(),
            content_type: "application/jsonl",
            body: shared.telemetry.render_jsonl().into_bytes(),
        },
        "prometheus" => Response {
            status: 200,
            headers: Vec::new(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: shared.telemetry.render_prometheus().into_bytes(),
        },
        other => error_response(
            400,
            &format!("unknown format {other:?} (use summary, jsonl, or prometheus)"),
        ),
    }
}

/// `GET /debug/traces[/{request_id}]`: the flight recorder. The index
/// lists retained traces (`?format=chrome` exports them all as one
/// Chrome `trace_event` document); a request id fetches one trace as
/// span-tree JSON (`?format=chrome` or `?format=tree` re-render it).
fn handle_traces(shared: &Shared, request: &Request) -> Response {
    let format = request.query_param("format").unwrap_or("json");
    let id = request.path.strip_prefix("/debug/traces").unwrap_or("").trim_start_matches('/');
    if id.is_empty() {
        return match format {
            "json" => Response::json(200, shared.recorder.render_index_json()),
            "chrome" => Response::json(200, shared.recorder.render_chrome_json()),
            other => error_response(400, &format!("unknown format {other:?} (use json or chrome)")),
        };
    }
    let Some(trace) = shared.recorder.get(id) else {
        return error_response(404, &format!("no retained trace for request id {id:?}"));
    };
    match format {
        "json" => Response::json(200, trace.render_json(shared.recorder.is_slow(&trace))),
        "chrome" => Response::json(200, render_chrome_trace(&[trace])),
        "tree" => Response::text(200, trace.render_tree()),
        other => {
            error_response(400, &format!("unknown format {other:?} (use json, chrome, or tree)"))
        }
    }
}

/// `GET /healthz`: liveness plus the drain state.
fn handle_healthz(shared: &Shared) -> Response {
    Response::json(
        200,
        JsonObject::new()
            .field("status", "ok")
            .field("draining", shared.is_draining())
            .field("requests", shared.requests.load(std::sync::atomic::Ordering::SeqCst))
            .field("cache_entries", shared.runtime.cache().stats().entries as u64)
            .finish(),
    )
}

/// `POST /shutdown`: begin draining. The acceptor stops taking
/// connections; queued and in-flight requests (including this one)
/// complete.
fn handle_shutdown(shared: &Shared) -> Response {
    shared.shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    shared.telemetry.counter_add("server.shutdown_requests", 1);
    Response::json(200, JsonObject::new().field("status", "draining").finish())
}
