//! `cicero-permute` — a deterministic interleaving explorer for the
//! repo's mutex/condvar/channel protocols.
//!
//! The worker pool, the admission queue, the drain protocol, and the
//! panic-respawn path are all small hand-rolled concurrent protocols.
//! Unit tests run them under whatever schedule the OS happens to pick;
//! a latent race can hide for thousands of runs and then ship. This
//! crate takes the loom approach — *enumerate* the schedules instead of
//! sampling them — scaled down to what the repo needs:
//!
//! * A protocol is written as a [`Model`]: shared state plus a set of
//!   logical threads, each advancing through **atomic steps** (one step
//!   ≈ one lock-protected region, channel operation, or atomic RMW in
//!   the real code).
//! * The [`Explorer`] runs the model under *every* interleaving of those
//!   steps, depth-first with replay: each execution deterministically
//!   re-runs a schedule prefix, extends it, and backtracks through the
//!   last scheduling decision with an unexplored branch. This is
//!   exhaustive for the bounded models we write (hundreds to hundreds of
//!   thousands of schedules, milliseconds to seconds).
//! * After every step an invariant is checked; when all threads finish,
//!   a postcondition is checked; a state where some thread is unfinished
//!   but nothing can run is reported as a deadlock. Any violation comes
//!   back with the exact schedule (a list of thread ids) that produced
//!   it, which [`replay`] can re-execute for debugging.
//!
//! Models must be **deterministic**: no wall-clock time, no OS
//! randomness — given the same schedule prefix they must reach the same
//! state, or replay-based backtracking silently explores the wrong tree
//! (the explorer cross-checks by re-validating branch widths during
//! replay and panics on divergence).
//!
//! The protocol models themselves live in [`models`]; the tests in
//! `tests/protocols.rs` run each one exhaustively and also demonstrate
//! that the explorer *finds* the historical bugs (gauge underflow,
//! drain dropping ready connections, panics losing inputs) when the
//! protocol is deliberately mis-ordered.

pub mod models;

/// What one atomic step of a model thread did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread advanced and has more steps to take.
    Progress,
    /// The thread finished; it will never be scheduled again.
    Done,
}

/// A concurrency protocol under test.
pub trait Model {
    /// Shared state mutated by the threads. `Debug` so violations can
    /// carry a snapshot.
    type State: std::fmt::Debug;

    /// Display name (used in violation messages).
    fn name(&self) -> &'static str;

    /// Number of logical threads (fixed for the whole exploration).
    fn threads(&self) -> usize;

    /// A fresh initial state.
    fn init(&self) -> Self::State;

    /// Whether thread `tid` can take a step in `state`. Return `false`
    /// to model blocking (a condvar wait, a `recv` on an empty channel,
    /// a full bounded send). A thread whose every dependency is met must
    /// return `true`, or the explorer will report a spurious deadlock.
    fn enabled(&self, state: &Self::State, tid: usize) -> bool;

    /// Execute one atomic step of thread `tid`. Only called when
    /// [`Model::enabled`] returned `true` for `tid`.
    fn step(&self, state: &mut Self::State, tid: usize) -> Step;

    /// Checked after every step of every execution.
    fn invariant(&self, _state: &Self::State) -> Result<(), String> {
        Ok(())
    }

    /// Checked once all threads are done.
    fn check(&self, state: &Self::State) -> Result<(), String>;
}

/// Why an exploration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Some thread never finished and no thread is enabled.
    Deadlock,
    /// [`Model::invariant`] failed mid-execution.
    Invariant,
    /// [`Model::check`] failed after all threads finished.
    Postcondition,
    /// One execution exceeded the step bound (livelock guard).
    Livelock,
    /// The schedule bound was hit before the space was exhausted.
    Exhausted,
}

/// A failed exploration: the kind, the message from the model, the
/// schedule (thread ids, in execution order) that produced it, and a
/// debug snapshot of the failing state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What failed.
    pub kind: ViolationKind,
    /// The model's message (or a description of the deadlock).
    pub message: String,
    /// Thread ids in the order they were stepped. Feed to [`replay`].
    pub schedule: Vec<usize>,
    /// `Debug` snapshot of the state at the failure point.
    pub state: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: {} (schedule {:?}, state {})",
            self.kind, self.message, self.schedule, self.state
        )
    }
}

/// Summary of a completed (violation-free) exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct schedules executed.
    pub schedules: u64,
    /// Longest execution, in steps.
    pub max_depth: usize,
}

/// Exhaustive DFS over a model's schedules.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Abort with [`ViolationKind::Exhausted`] past this many schedules.
    pub max_schedules: u64,
    /// Abort one execution with [`ViolationKind::Livelock`] past this
    /// many steps.
    pub max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer { max_schedules: 2_000_000, max_steps: 10_000 }
    }
}

impl Explorer {
    /// Run `model` under every schedule.
    ///
    /// # Errors
    ///
    /// The first [`Violation`] found, with its reproducing schedule.
    ///
    /// # Panics
    ///
    /// Panics if the model is non-deterministic (a replayed prefix
    /// yields a different branch width than it did originally).
    pub fn explore<M: Model>(&self, model: &M) -> Result<Exploration, Violation> {
        let threads = model.threads();
        assert!(threads > 0, "a model needs at least one thread");
        // DFS stack: choices[d] is the index into the runnable set taken
        // at depth d; widths[d] is how many runnable threads there were.
        let mut choices: Vec<usize> = Vec::new();
        let mut widths: Vec<usize> = Vec::new();
        let mut schedules: u64 = 0;
        let mut max_depth = 0usize;

        loop {
            schedules += 1;
            if schedules > self.max_schedules {
                return Err(Violation {
                    kind: ViolationKind::Exhausted,
                    message: format!(
                        "{}: schedule bound {} hit before the space was exhausted",
                        model.name(),
                        self.max_schedules
                    ),
                    schedule: Vec::new(),
                    state: String::new(),
                });
            }

            // One execution: replay the prefix in `choices`, extending
            // with first-runnable at each new depth.
            let mut state = model.init();
            let mut done = vec![false; threads];
            let mut trace: Vec<usize> = Vec::with_capacity(choices.len() + 8);
            let mut depth = 0usize;
            let outcome: Option<(ViolationKind, String)> = loop {
                let runnable: Vec<usize> =
                    (0..threads).filter(|&t| !done[t] && model.enabled(&state, t)).collect();
                if runnable.is_empty() {
                    if done.iter().all(|d| *d) {
                        break model.check(&state).err().map(|m| (ViolationKind::Postcondition, m));
                    }
                    let stuck: Vec<usize> = (0..threads).filter(|&t| !done[t]).collect();
                    break Some((
                        ViolationKind::Deadlock,
                        format!("{}: threads {stuck:?} blocked forever", model.name()),
                    ));
                }
                if depth >= self.max_steps {
                    break Some((
                        ViolationKind::Livelock,
                        format!("{}: execution exceeded {} steps", model.name(), self.max_steps),
                    ));
                }
                let choice = if depth < choices.len() {
                    assert_eq!(
                        widths[depth],
                        runnable.len(),
                        "{}: non-deterministic model (branch width changed on replay at depth \
                         {depth})",
                        model.name()
                    );
                    choices[depth]
                } else {
                    choices.push(0);
                    widths.push(runnable.len());
                    0
                };
                let tid = runnable[choice];
                trace.push(tid);
                if model.step(&mut state, tid) == Step::Done {
                    done[tid] = true;
                }
                if let Err(message) = model.invariant(&state) {
                    break Some((ViolationKind::Invariant, message));
                }
                depth += 1;
            };

            if let Some((kind, message)) = outcome {
                return Err(Violation {
                    kind,
                    message,
                    schedule: trace,
                    state: format!("{state:?}"),
                });
            }
            max_depth = max_depth.max(depth);

            // Backtrack to the deepest decision with an unexplored
            // branch; exploration is complete when none remains.
            loop {
                let (Some(choice), Some(width)) = (choices.pop(), widths.pop()) else {
                    return Ok(Exploration { schedules, max_depth });
                };
                if choice + 1 < width {
                    choices.push(choice + 1);
                    widths.push(width);
                    break;
                }
            }
        }
    }
}

/// Re-execute one explicit schedule (as reported in
/// [`Violation::schedule`]) and return the final state plus the model's
/// verdicts along the way. Steps a thread only if it is enabled and not
/// done; stops at the first refusal or when the schedule is spent.
pub fn replay<M: Model>(model: &M, schedule: &[usize]) -> (M::State, Result<(), String>) {
    let mut state = model.init();
    let mut done = vec![false; model.threads()];
    for &tid in schedule {
        if tid >= done.len() || done[tid] || !model.enabled(&state, tid) {
            return (state, Err(format!("thread {tid} cannot be scheduled here")));
        }
        if model.step(&mut state, tid) == Step::Done {
            done[tid] = true;
        }
        if let Err(message) = model.invariant(&state) {
            return (state, Err(message));
        }
    }
    if done.iter().all(|d| *d) {
        let verdict = model.check(&state);
        (state, verdict)
    } else {
        (state, Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a "shared counter" twice, non-atomically
    /// (read step, then write step). The classic lost-update race: with
    /// torn read/write steps the final count can be < 4.
    struct LostUpdate {
        atomic: bool,
    }

    #[derive(Debug)]
    struct LostUpdateState {
        counter: u32,
        /// Per-thread: (increments left, staged read if mid-update).
        threads: Vec<(u32, Option<u32>)>,
    }

    impl Model for LostUpdate {
        type State = LostUpdateState;

        fn name(&self) -> &'static str {
            "lost-update"
        }

        fn threads(&self) -> usize {
            2
        }

        fn init(&self) -> LostUpdateState {
            LostUpdateState { counter: 0, threads: vec![(2, None); 2] }
        }

        fn enabled(&self, state: &Self::State, tid: usize) -> bool {
            state.threads[tid].0 > 0 || state.threads[tid].1.is_some()
        }

        fn step(&self, state: &mut Self::State, tid: usize) -> Step {
            if self.atomic {
                state.counter += 1;
                state.threads[tid].0 -= 1;
            } else {
                match state.threads[tid].1.take() {
                    None => state.threads[tid].1 = Some(state.counter),
                    Some(read) => {
                        state.counter = read + 1;
                        state.threads[tid].0 -= 1;
                    }
                }
            }
            if state.threads[tid].0 == 0 && state.threads[tid].1.is_none() {
                Step::Done
            } else {
                Step::Progress
            }
        }

        fn check(&self, state: &Self::State) -> Result<(), String> {
            if state.counter == 4 {
                Ok(())
            } else {
                Err(format!("lost update: counter == {} != 4", state.counter))
            }
        }
    }

    #[test]
    fn atomic_increments_pass_every_interleaving() {
        let report = Explorer::default().explore(&LostUpdate { atomic: true }).unwrap();
        // 2 threads × 2 steps each = C(4,2) = 6 interleavings.
        assert_eq!(report.schedules, 6);
        assert_eq!(report.max_depth, 4);
    }

    #[test]
    fn torn_increments_are_caught_with_a_reproducing_schedule() {
        let violation = Explorer::default().explore(&LostUpdate { atomic: false }).unwrap_err();
        assert_eq!(violation.kind, ViolationKind::Postcondition);
        assert!(violation.message.contains("lost update"), "{violation}");
        // The reported schedule reproduces the failure exactly.
        let (state, verdict) = replay(&LostUpdate { atomic: false }, &violation.schedule);
        assert!(verdict.is_err(), "replay must reproduce: {state:?}");
    }

    /// A thread that blocks forever (enabled() false once its partner is
    /// done) is reported as a deadlock, not an infinite loop.
    struct Stuck;

    impl Model for Stuck {
        type State = bool; // partner done?

        fn name(&self) -> &'static str {
            "stuck"
        }

        fn threads(&self) -> usize {
            2
        }

        fn init(&self) -> bool {
            false
        }

        fn enabled(&self, _partner_done: &bool, tid: usize) -> bool {
            // Thread 1 waits for a signal thread 0 never sends.
            tid == 0
        }

        fn step(&self, partner_done: &mut bool, _tid: usize) -> Step {
            *partner_done = true;
            Step::Done
        }

        fn check(&self, _state: &bool) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn blocked_threads_surface_as_deadlocks() {
        let violation = Explorer::default().explore(&Stuck).unwrap_err();
        assert_eq!(violation.kind, ViolationKind::Deadlock);
        assert!(violation.message.contains("[1]"), "{violation}");
    }

    #[test]
    fn the_schedule_bound_reports_exhaustion_not_a_hang() {
        let tight = Explorer { max_schedules: 2, ..Explorer::default() };
        let violation = tight.explore(&LostUpdate { atomic: true }).unwrap_err();
        assert_eq!(violation.kind, ViolationKind::Exhausted);
    }
}
