//! Total on-chip power model (Figure 12).
//!
//! The paper's power figures come from Vivado's post-implementation power
//! analysis; here power is an analytic model fitted to the wattages the
//! paper's tables imply (Table 6 divides energy by time: OLD 1x9 ≈ 2.42 W,
//! OLD 1x16 ≈ 2.66 W, NEW 16x1 ≈ 2.39 W, NEW 8x1 ≈ 2.20 W — see
//! DESIGN.md). The structure follows the paper's analysis: a large
//! static-plus-PS baseline, per-core and per-FIFO dynamic terms (FIFO
//! replication is what makes the old organization expensive), and a small
//! per-engine interconnect/balancer term. Derated (100 MHz) configurations
//! scale their dynamic component by the clock ratio.

use crate::config::ArchConfig;
use crate::resources::{clock_mhz, resource_usage};

/// Static + processing-system baseline, in watts.
const P_STATIC: f64 = 2.0046;
/// Dynamic power per core at 150 MHz.
const P_CORE: f64 = 0.0220;
/// Dynamic power per FIFO at 150 MHz.
const P_FIFO: f64 = 0.0023;
/// Dynamic power per engine (balancer station, ring port) at 150 MHz.
const P_ENGINE: f64 = 0.0010;

/// Total on-chip power (static + dynamic) for a configuration, in watts.
pub fn power_watts(config: &ArchConfig) -> f64 {
    let dynamic = config.total_cores() as f64 * P_CORE
        + config.total_fifos() as f64 * P_FIFO
        + config.engines as f64 * P_ENGINE;
    let clock_scale = clock_mhz(config) / 150.0;
    P_STATIC + dynamic * clock_scale
}

/// Convenience bundle: power, clock, and resource usage for reports.
#[derive(Debug, Clone, Copy)]
pub struct PlatformFigures {
    /// Total on-chip power in watts.
    pub watts: f64,
    /// Operating clock in MHz.
    pub clock_mhz: f64,
    /// Resource usage on the XCZU3EG.
    pub resources: crate::resources::ResourceUsage,
}

/// Compute all platform figures for a configuration.
pub fn platform_figures(config: &ArchConfig) -> PlatformFigures {
    PlatformFigures {
        watts: power_watts(config),
        clock_mhz: clock_mhz(config),
        resources: resource_usage(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expected: f64, tolerance: f64) -> bool {
        (actual - expected).abs() <= tolerance
    }

    #[test]
    fn calibration_targets_from_the_paper() {
        // Implied wattages from Table 6 (energy ÷ time), ±0.08 W.
        assert!(close(power_watts(&ArchConfig::old_organization(9)), 2.42, 0.08));
        assert!(close(power_watts(&ArchConfig::old_organization(16)), 2.66, 0.08));
        assert!(close(power_watts(&ArchConfig::new_organization(16, 1)), 2.39, 0.08));
        assert!(close(power_watts(&ArchConfig::new_organization(8, 1)), 2.20, 0.08));
    }

    #[test]
    fn power_grows_with_engines_and_cores() {
        let p1 = power_watts(&ArchConfig::old_organization(1));
        let p9 = power_watts(&ArchConfig::old_organization(9));
        let p32 = power_watts(&ArchConfig::old_organization(32));
        assert!(p1 < p9 && p9 < p32);
        let n8 = power_watts(&ArchConfig::new_organization(8, 1));
        let n32 = power_watts(&ArchConfig::new_organization(32, 1));
        assert!(n8 < n32);
    }

    #[test]
    fn old_costs_more_than_new_at_equal_core_count() {
        // Figure 12's headline: OLD 1x16 vs NEW 16x1 — same cores, but the
        // old organization replicates FIFOs and balancer stations.
        let old = power_watts(&ArchConfig::old_organization(16));
        let new = power_watts(&ArchConfig::new_organization(16, 1));
        assert!(old > new + 0.15, "old {old:.3} vs new {new:.3}");
    }

    #[test]
    fn derated_configs_scale_dynamic_power() {
        // NEW 16x9 runs at 100 MHz: its dynamic power shrinks by 2/3
        // relative to a hypothetical 150 MHz run, but the configuration is
        // still power-hungry in absolute terms.
        let p = power_watts(&ArchConfig::new_organization(16, 9));
        let undersized = power_watts(&ArchConfig::new_organization(16, 1));
        assert!(p > undersized);
    }
}
