//! The old compiler's *Code Restructuring* optimization (§5, Figure 5).
//!
//! "This optimization reorganizes the sequences of Split instructions into
//! a tree with minimal depth, with the goal of minimizing the longest
//! instruction path to execute any of the leaves."
//!
//! Operating on already-mapped code (the premature-lowering handicap), the
//! pass:
//!
//! 1. flattens the root alternation — a branch that is exactly one
//!    unquantified group expands into that group's branches, recursively
//!    (so `(a|(b|(c|d)))` yields four leaves, Figure 5);
//! 2. treats the implicit `.*` prefix loop as **one more leaf** (Figure 6:
//!    "it now executes two SPLIT instead of one" for the implicit term);
//! 3. re-emits the program as a balanced binary tree of `SPLIT`s over the
//!    leaves, with the shared acceptance placed after the first leaf and
//!    every other leaf jumping back to it;
//! 4. re-patches **every** absolute address in the program — the cost that
//!    symbolic IRs avoid.
//!
//! The result reduces jump count and split depth but scatters basic
//! blocks, *increasing* `D_offset` (Listing 2 middle column: 21 vs 14).
//!
//! # Cost structure (the §2.1 premature-lowering tax)
//!
//! Every nested split chain (alternations *and* character classes) is
//! balanced by one in-place permutation of its span — but because
//! operands are absolute addresses, **each** permutation must re-patch
//! every branch target in the whole program and remap every other
//! alternation's recorded metadata. Optimizing `A` alternations in a
//! program of `n` instructions therefore costs `O(A·(n + A·B))`, which is
//! why the old compiler's optimize flag slows Protomata4-style inputs
//! down so dramatically (Figure 9).

use std::collections::HashMap;

use crate::emit::{EmitMeta, MappedProgram};
use crate::value::Value;
use crate::LegacyError;

/// Apply Code Restructuring in place.
///
/// Programs with fewer than two leaves (a single-alternative pattern with
/// no implicit prefix) only have their nested chains balanced.
///
/// # Errors
///
/// Returns [`LegacyError`] if the metadata is inconsistent with the code
/// (which emission never produces).
pub fn code_restructuring(mapped: &mut MappedProgram) -> Result<(), LegacyError> {
    // Alternations consumed by root flattening are rebuilt with the root,
    // and the root alternation itself uses the Listing-2 layout (its
    // acceptance sits mid-span); every other split chain is balanced in
    // place first.
    let flattened = flattened_alt_set(&mapped.meta);
    for index in 0..mapped.meta.alts.len() {
        let alt = &mapped.meta.alts[index];
        let is_root = alt.splits == mapped.meta.root_splits && alt.join == mapped.meta.join_addr;
        if is_root || flattened.contains(&index) {
            continue;
        }
        balance_chain_in_place(mapped, index)?;
    }
    let leaves = flatten_leaves(&mapped.meta);
    let leaf_count = leaves.len() + usize::from(mapped.meta.has_prefix);
    if leaf_count < 2 {
        return Ok(());
    }
    let rebuilt = Rebuilder::new(&mapped.code, &mapped.meta, leaves).run()?;
    mapped.code = rebuilt;
    Ok(())
}

/// Indices of alternations that the root flattening will consume.
fn flattened_alt_set(meta: &EmitMeta) -> Vec<usize> {
    let mut set = Vec::new();
    let mut stack: Vec<&crate::emit::BranchMeta> = meta.root_branches.iter().collect();
    while let Some(branch) = stack.pop() {
        if let Some(alt_index) = branch.nested {
            set.push(alt_index);
            stack.extend(meta.alts[alt_index].branches.iter());
        }
    }
    set
}

/// Balance one nested split chain into a minimal-depth tree, in place.
///
/// The chain and the balanced tree have identical instruction counts
/// (k−1 splits, k branches each ending in a jump to the join), so this is
/// a permutation of the span `[first_split, join)` — followed by the
/// mapped-IR tax: re-patching every branch target in the program and
/// remapping all other alternations' metadata through the move map.
fn balance_chain_in_place(mapped: &mut MappedProgram, alt_index: usize) -> Result<(), LegacyError> {
    let alt = mapped.meta.alts[alt_index].clone();
    if alt.branches.len() < 2 {
        return Ok(());
    }
    let span_start = *alt.splits.first().expect("multi-branch chains have splits");
    let span_end = alt.join;

    // Emit the balanced tree into a scratch buffer, tracking where every
    // old instruction moved.
    let mut scratch: Vec<Value> = Vec::with_capacity(span_end - span_start);
    let mut moves: HashMap<usize, usize> = HashMap::new();
    let mut fresh_splits: Vec<usize> = Vec::new();
    emit_balanced(
        &mapped.code,
        &alt.branches,
        0,
        alt.branches.len(),
        span_start,
        &mut scratch,
        &mut moves,
        &mut fresh_splits,
    );
    if scratch.len() != span_end - span_start {
        return Err(LegacyError::new(format!(
            "balanced tree length {} does not match span {}..{}",
            scratch.len(),
            span_start,
            span_end
        )));
    }
    // The chain entry stays the entry of the tree.
    moves.insert(span_start, span_start);
    mapped.code.splice(span_start..span_end, scratch);

    // Mapped-IR tax 1: re-patch every branch target in the whole program.
    // The tree splits created just now already carry final addresses and
    // must be skipped (an old address can coincide with a new one).
    for (index, ins) in mapped.code.iter_mut().enumerate() {
        if fresh_splits.contains(&index) {
            continue;
        }
        let op = ins.get("op").and_then(Value::as_str).unwrap_or("");
        if op != "JMP" && op != "SPLIT" {
            continue;
        }
        let target = ins
            .get("arg")
            .and_then(Value::as_int)
            .ok_or_else(|| LegacyError::new(format!("branch without target at {index}")))?
            as usize;
        if let Some(new_target) = moves.get(&target) {
            ins.set("arg", Value::Int(*new_target as i64));
        }
    }

    // Mapped-IR tax 2: remap every alternation's recorded addresses.
    let remap = |address: &mut usize| {
        if let Some(new) = moves.get(address) {
            *address = *new;
        }
    };
    for other in &mut mapped.meta.alts {
        for split in &mut other.splits {
            remap(split);
        }
        remap(&mut other.join);
        for branch in &mut other.branches {
            // Ranges move as a block; the move map records starts.
            if let Some(new_start) = moves.get(&branch.range.0) {
                let len = branch.range.1 - branch.range.0;
                branch.range = (*new_start, *new_start + len);
            }
        }
    }
    for branch in &mut mapped.meta.root_branches {
        if let Some(new_start) = moves.get(&branch.range.0) {
            let len = branch.range.1 - branch.range.0;
            branch.range = (*new_start, *new_start + len);
        }
    }
    Ok(())
}

/// Recursively emit the balanced tree over `branches[lo..hi)` at
/// `base + scratch.len()`, recording instruction moves.
#[allow(clippy::too_many_arguments)]
fn emit_balanced(
    code: &[Value],
    branches: &[crate::emit::BranchMeta],
    lo: usize,
    hi: usize,
    base: usize,
    scratch: &mut Vec<Value>,
    moves: &mut HashMap<usize, usize>,
    fresh_splits: &mut Vec<usize>,
) {
    if hi - lo == 1 {
        let (start, end) = branches[lo].range;
        for (old, instruction) in code.iter().enumerate().take(end).skip(start) {
            moves.insert(old, base + scratch.len());
            scratch.push(instruction.clone());
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let split_at = scratch.len();
    fresh_splits.push(base + split_at);
    let mut split = Value::dict();
    split.set("op", Value::Str("SPLIT".to_owned()));
    split.set("arg", Value::Int(-1));
    scratch.push(split);
    emit_balanced(code, branches, lo, mid, base, scratch, moves, fresh_splits);
    let right_start = base + scratch.len();
    scratch[split_at].set("arg", Value::Int(right_start as i64));
    emit_balanced(code, branches, mid, hi, base, scratch, moves, fresh_splits);
}

/// Collect the flattened leaf ranges of the root alternation, plus the
/// set of join addresses whose targets must redirect to the new join.
fn flatten_leaves(meta: &EmitMeta) -> Vec<(usize, usize)> {
    let mut leaves = Vec::new();
    let mut stack: Vec<&crate::emit::BranchMeta> = meta.root_branches.iter().rev().collect();
    while let Some(branch) = stack.pop() {
        match branch.nested {
            Some(alt_index) => {
                for inner in meta.alts[alt_index].branches.iter().rev() {
                    stack.push(inner);
                }
            }
            None => leaves.push(branch.range),
        }
    }
    leaves
}

/// All join addresses involved in the flattened structure: the root join
/// plus every flattened nested alternation's intermediate join.
fn join_class(meta: &EmitMeta) -> Vec<usize> {
    let mut joins = vec![meta.join_addr];
    // Walk the same flattening to find which alts participate.
    let mut stack: Vec<&crate::emit::BranchMeta> = meta.root_branches.iter().collect();
    while let Some(branch) = stack.pop() {
        if let Some(alt_index) = branch.nested {
            let alt = &meta.alts[alt_index];
            joins.push(alt.join);
            stack.extend(alt.branches.iter());
        }
    }
    joins
}

struct Rebuilder<'a> {
    old: &'a [Value],
    meta: &'a EmitMeta,
    /// Leaf code ranges; `None` marks the synthetic `.*` loop leaf.
    leaves: Vec<Option<(usize, usize)>>,
    new: Vec<Value>,
    /// old address → new address for every copied instruction.
    mapping: HashMap<usize, usize>,
    /// Join-class addresses (old) that redirect to the new acceptance.
    joins: Vec<usize>,
    new_join: Option<usize>,
    emitted_first_leaf: bool,
}

impl<'a> Rebuilder<'a> {
    fn new(old: &'a [Value], meta: &'a EmitMeta, leaves: Vec<(usize, usize)>) -> Rebuilder<'a> {
        let mut all: Vec<Option<(usize, usize)>> = leaves.into_iter().map(Some).collect();
        if meta.has_prefix {
            all.push(None); // the `.*` loop becomes the last leaf
        }
        Rebuilder {
            old,
            meta,
            leaves: all,
            new: Vec::new(),
            mapping: HashMap::new(),
            joins: join_class(meta),
            new_join: None,
            emitted_first_leaf: false,
        }
    }

    fn run(mut self) -> Result<Vec<Value>, LegacyError> {
        self.emit_tree(0, self.leaves.len());
        self.patch()?;
        Ok(self.new)
    }

    /// In-order balanced emission over `leaves[lo..hi]`.
    fn emit_tree(&mut self, lo: usize, hi: usize) {
        if hi - lo == 1 {
            self.emit_leaf(lo);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let split_at = self.new.len();
        let mut split = Value::dict();
        split.set("op", Value::Str("SPLIT".to_owned()));
        split.set("arg", Value::Int(-1));
        self.new.push(split);
        self.emit_tree(lo, mid);
        let right_start = self.new.len();
        self.new[split_at].set("arg", Value::Int(right_start as i64));
        self.emit_tree(mid, hi);
    }

    fn emit_leaf(&mut self, index: usize) {
        match self.leaves[index] {
            None => {
                // The `.*` loop leaf: MATCH_ANY then JMP back to the tree
                // top, so the implicit term now re-traverses the splits.
                let mut any = Value::dict();
                any.set("op", Value::Str("MATCH_ANY".to_owned()));
                self.new.push(any);
                let mut jmp = Value::dict();
                jmp.set("op", Value::Str("JMP".to_owned()));
                jmp.set("arg", Value::Int(0));
                self.new.push(jmp);
            }
            Some((start, end)) => {
                let first = !self.emitted_first_leaf;
                self.emitted_first_leaf = true;
                for old_index in start..end {
                    // The first leaf's trailing jump-to-join is dropped:
                    // it falls through into the relocated acceptance.
                    let is_trailing_join_jump = old_index + 1 == end
                        && self.old[old_index].get("op").and_then(Value::as_str) == Some("JMP")
                        && self.old[old_index]
                            .get("arg")
                            .and_then(Value::as_int)
                            .is_some_and(|t| self.joins.contains(&(t as usize)));
                    if first && is_trailing_join_jump {
                        // Anything that targeted this jump continues to the
                        // join.
                        self.joins.push(old_index);
                        continue;
                    }
                    self.mapping.insert(old_index, self.new.len());
                    self.new.push(self.old[old_index].clone());
                }
                if first {
                    let mut accept = Value::dict();
                    let op = if self.meta.accept_partial { "ACCEPT_PARTIAL" } else { "ACCEPT" };
                    accept.set("op", Value::Str(op.to_owned()));
                    self.new_join = Some(self.new.len());
                    self.new.push(accept);
                }
            }
        }
    }

    /// Re-patch every control-flow operand of the copied instructions.
    fn patch(&mut self) -> Result<(), LegacyError> {
        let new_join = self
            .new_join
            .ok_or_else(|| LegacyError::new("restructuring produced no acceptance"))?;
        // Only copied instructions need re-patching; tree splits and the
        // loop leaf were created with final addresses.
        let copied: Vec<(usize, usize)> = self.mapping.iter().map(|(o, n)| (*o, *n)).collect();
        for (old_index, new_index) in copied {
            let op = self.new[new_index].get("op").and_then(Value::as_str).unwrap_or("");
            if op != "JMP" && op != "SPLIT" {
                continue;
            }
            let old_target = self.new[new_index]
                .get("arg")
                .and_then(Value::as_int)
                .ok_or_else(|| LegacyError::new("branch without target"))?
                as usize;
            let new_target = if let Some(mapped) = self.mapping.get(&old_target) {
                *mapped
            } else if self.joins.contains(&old_target) {
                new_join
            } else {
                return Err(LegacyError::new(format!(
                    "instruction {old_index} targets {old_target}, which was deleted by \
                     restructuring"
                )));
            };
            self.new[new_index].set("arg", Value::Int(new_target as i64));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{emit, parser};

    fn restructured(pattern: &str) -> Vec<(String, Option<i64>)> {
        let ast = parser::parse(pattern).unwrap();
        let mut mapped = emit::emit(&ast).unwrap();
        code_restructuring(&mut mapped).unwrap();
        mapped
            .code
            .iter()
            .map(|i| {
                (
                    i.get("op").and_then(Value::as_str).unwrap().to_owned(),
                    i.get("arg").and_then(Value::as_int),
                )
            })
            .collect()
    }

    #[test]
    fn listing2_middle_column() {
        let ops = restructured("ab|cd");
        let expected: Vec<(String, Option<i64>)> = vec![
            ("SPLIT".into(), Some(4)),
            ("MATCH".into(), Some(97)),
            ("MATCH".into(), Some(98)),
            ("ACCEPT_PARTIAL".into(), None),
            ("SPLIT".into(), Some(8)),
            ("MATCH".into(), Some(99)),
            ("MATCH".into(), Some(100)),
            ("JMP".into(), Some(3)),
            ("MATCH_ANY".into(), None),
            ("JMP".into(), Some(0)),
        ];
        assert_eq!(ops, expected);
    }

    #[test]
    fn single_branch_unanchored_still_restructures_with_prefix_leaf() {
        // `abc` has one real branch plus the implicit `.*` leaf.
        let ops = restructured("abc");
        assert_eq!(ops[0].0, "SPLIT");
        assert_eq!(
            ops.last().unwrap(),
            &("JMP".to_owned(), Some(0)),
            "loop leaf jumps to tree top"
        );
    }

    #[test]
    fn fully_anchored_single_branch_untouched() {
        let ast = parser::parse("^abc$").unwrap();
        let mut mapped = emit::emit(&ast).unwrap();
        let before = mapped.code.clone();
        code_restructuring(&mut mapped).unwrap();
        assert_eq!(mapped.code, before);
    }

    #[test]
    fn figure5_flattening_produces_four_leaves() {
        let ast = parser::parse("^(a|(b|(c|d)))$").unwrap();
        let mapped = emit::emit(&ast).unwrap();
        let leaves = flatten_leaves(&mapped.meta);
        assert_eq!(leaves.len(), 4);
    }
}
