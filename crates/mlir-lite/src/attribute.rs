//! Attribute values attachable to operations.

use std::fmt;

/// An attribute value.
///
/// The variants cover the argument types used by the paper's two dialects
/// (Tables 3 and 4): booleans (`$hasPrefix`), 64-bit integers (quantifier
/// bounds, where `-1` encodes "unbounded"), 8-bit characters
/// (`$targetChar`), boolean arrays (the `GroupOp` character bitmap) and
/// symbols (`SplitOp`/`JumpOp` targets). Strings are provided for
/// diagnostics and tooling.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attribute {
    /// A boolean, e.g. `regex.root`'s `hasPrefix`.
    Bool(bool),
    /// A 64-bit signed integer, e.g. quantifier bounds.
    Int(i64),
    /// An 8-bit character, e.g. `match_char`'s target.
    Char(u8),
    /// A string (diagnostics, symbol definitions via `sym_name`).
    Str(String),
    /// A reference to a symbol defined elsewhere, printed `@name`.
    Symbol(String),
    /// A boolean array, e.g. the 256-entry `GroupOp` character bitmap.
    BoolArray(Vec<bool>),
}

impl Attribute {
    /// The kind of this attribute, for verifier matching.
    pub fn kind(&self) -> crate::dialect::AttrKind {
        use crate::dialect::AttrKind;
        match self {
            Attribute::Bool(_) => AttrKind::Bool,
            Attribute::Int(_) => AttrKind::Int,
            Attribute::Char(_) => AttrKind::Char,
            Attribute::Str(_) => AttrKind::Str,
            Attribute::Symbol(_) => AttrKind::Symbol,
            Attribute::BoolArray(_) => AttrKind::BoolArray,
        }
    }

    /// Extract a boolean, if that is the variant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract an integer, if that is the variant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a character, if that is the variant.
    pub fn as_char(&self) -> Option<u8> {
        match self {
            Attribute::Char(c) => Some(*c),
            _ => None,
        }
    }

    /// Extract a string, if that is the variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a symbol name, if that is the variant.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Attribute::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean array, if that is the variant.
    pub fn as_bool_array(&self) -> Option<&[bool]> {
        match self {
            Attribute::BoolArray(v) => Some(v),
            _ => None,
        }
    }
}

impl From<bool> for Attribute {
    fn from(v: bool) -> Attribute {
        Attribute::Bool(v)
    }
}

impl From<i64> for Attribute {
    fn from(v: i64) -> Attribute {
        Attribute::Int(v)
    }
}

impl From<u8> for Attribute {
    fn from(v: u8) -> Attribute {
        Attribute::Char(v)
    }
}

impl From<&str> for Attribute {
    fn from(v: &str) -> Attribute {
        Attribute::Str(v.to_owned())
    }
}

impl From<Vec<bool>> for Attribute {
    fn from(v: Vec<bool>) -> Attribute {
        Attribute::BoolArray(v)
    }
}

impl fmt::Display for Attribute {
    /// Textual form used by the IR printer:
    /// `true`, `42`, `'a'` / `'\x07'`, `"str"`, `@sym`, `bits"0101"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Bool(b) => write!(f, "{b}"),
            Attribute::Int(i) => write!(f, "{i}"),
            Attribute::Char(c) => write!(f, "'{}'", escape_char(*c)),
            Attribute::Str(s) => write!(f, "\"{}\"", escape_str(s)),
            Attribute::Symbol(s) => write!(f, "@{s}"),
            Attribute::BoolArray(bits) => {
                write!(f, "bits\"")?;
                for b in bits {
                    f.write_str(if *b { "1" } else { "0" })?;
                }
                write!(f, "\"")
            }
        }
    }
}

/// Escape a byte for single-quoted character syntax.
pub(crate) fn escape_char(c: u8) -> String {
    match c {
        b'\'' => "\\'".to_owned(),
        b'\\' => "\\\\".to_owned(),
        c if c.is_ascii_graphic() || c == b' ' => (c as char).to_string(),
        c => format!("\\x{c:02x}"),
    }
}

/// Escape a string for double-quoted syntax.
pub(crate) fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Attribute::Bool(true).as_bool(), Some(true));
        assert_eq!(Attribute::Int(-1).as_int(), Some(-1));
        assert_eq!(Attribute::Char(b'x').as_char(), Some(b'x'));
        assert_eq!(Attribute::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Attribute::Symbol("L0".into()).as_symbol(), Some("L0"));
        assert_eq!(
            Attribute::BoolArray(vec![true, false]).as_bool_array(),
            Some(&[true, false][..])
        );
        assert_eq!(Attribute::Bool(true).as_int(), None);
        assert_eq!(Attribute::Int(3).as_char(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Attribute::Bool(false).to_string(), "false");
        assert_eq!(Attribute::Int(-7).to_string(), "-7");
        assert_eq!(Attribute::Char(b'a').to_string(), "'a'");
        assert_eq!(Attribute::Char(0x07).to_string(), "'\\x07'");
        assert_eq!(Attribute::Char(b'\'').to_string(), "'\\''");
        assert_eq!(Attribute::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Attribute::Symbol("alt_1".into()).to_string(), "@alt_1");
        assert_eq!(Attribute::BoolArray(vec![false, true, true]).to_string(), "bits\"011\"");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Attribute::from(true), Attribute::Bool(true));
        assert_eq!(Attribute::from(3i64), Attribute::Int(3));
        assert_eq!(Attribute::from(b'z'), Attribute::Char(b'z'));
        assert_eq!(Attribute::from("s"), Attribute::Str("s".into()));
    }
}
