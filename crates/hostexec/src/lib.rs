//! Host-native execution backend for `cicero` ISA programs.
//!
//! The cycle-level simulator is the *architecture oracle*: it answers
//! "what would the paper's hardware do, cycle by cycle". This crate
//! answers a different question — "what is the match result, as fast as
//! this CPU can produce it" — by lowering the same validated [`Program`]
//! one step further, onto the host:
//!
//! 1. **Epsilon elimination** ([`nfa`]): `Split`/`Jump`/`NotMatch` paths
//!    are folded away into a byte-predicate NFA whose states are
//!    `(pc, predicate)` pairs, restoring the Glushkov property (every
//!    entry into a state agrees on its byte predicate).
//! 2. **Prefix factoring**: provably co-active states merge, folding the
//!    duplicated scan loops and shared literal prefixes of
//!    `compile_set` programs into one spine.
//! 3. **Engine selection**: ≤ 64 states run bit-parallel in a `u64`
//!    (shift-or style, chunked follow tables, byte-class compressed);
//!    ≤ 128 states in a `u128`; larger automata fall back to a
//!    byte-class-compressed lazy DFA. A pathological program that blows
//!    the lowering budget falls back to the reference interpreter —
//!    slower, never wrong.
//! 4. **Prefilter** ([`prefilter`]): a memchr-style skip loop extracted
//!    from the steady scan state, exact by construction.
//!
//! Semantics match [`cicero_isa::run`] / [`cicero_isa::run_all`]
//! observably: same verdict, same earliest match end, same identifier
//! set. The one documented deviation: [`HostOutcome::matched_id`]
//! resolves ties at the match position in favour of the lowest
//! identifier, where the interpreter reports whichever thread drains
//! first (single-pattern programs — where `matched_id` is `None` — are
//! unaffected, and `run_all` id *sets* are identical).
//!
//! The resumable [`HostMatcher`] extends the chunk-split-invariance
//! contract of [`cicero_isa::StreamMatcher`] to the native path: state is
//! one machine word (or one DFA id), so feeding any split of an input is
//! byte-for-byte equivalent to the whole-input run.

mod bytes;
mod dfa;
mod engine;
mod nfa;
mod prefilter;

pub use bytes::ByteSet;

use cicero_isa::Program;
use engine::{BitEngine, BitMatcher};

/// Result of a host-engine run (the native analogue of
/// [`cicero_isa::ExecOutcome`], minus the work metric — wall-clock *is*
/// the work metric here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostOutcome {
    /// Whether the program accepted.
    pub accepted: bool,
    /// Input position (byte index) at which acceptance fired — the
    /// earliest match end, identical to the interpreter's.
    pub match_position: Option<usize>,
    /// Identifier of the acceptance, for multi-matching sets (lowest id
    /// firing at the match position; see the crate docs).
    pub matched_id: Option<u16>,
}

/// Result of an exhaustive multi-match scan (the native analogue of
/// [`cicero_isa::ExecAllOutcome`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostAllOutcome {
    /// Whether any acceptance fired.
    pub accepted: bool,
    /// Every distinct identifier that fired, ascending.
    pub matched_ids: Vec<u16>,
    /// Position of the earliest acceptance.
    pub first_match_position: Option<usize>,
}

/// Which execution strategy [`HostProgram::compile`] selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Bit-parallel, one `u64` state mask (≤ 64 states).
    Bit64,
    /// Bit-parallel, one `u128` state mask (65–128 states).
    Bit128,
    /// Byte-class-compressed lazy DFA (> 128 states).
    LazyDfa,
    /// Reference-interpreter fallback (lowering budget exceeded).
    Interp,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Bit64 => "bit64",
            EngineKind::Bit128 => "bit128",
            EngineKind::LazyDfa => "lazy-dfa",
            EngineKind::Interp => "interp",
        })
    }
}

enum Repr {
    W64(BitEngine<u64>),
    W128(BitEngine<u128>),
    Dfa(dfa::SparseNfa),
    Interp(Program),
}

/// Engine-tier selection thresholds: the largest automaton (in states)
/// each bit-parallel width accepts before compilation falls through to
/// the next tier. Exposed as autotuner knobs — a workload whose automata
/// hover just above a width boundary can trade the wider engine's extra
/// per-byte cost against the lazy DFA's construction overhead.
///
/// Values are clamped to the representation's hard capacity (64 / 128
/// states), and `bit128_max` is clamped up to `bit64_max` so the tiers
/// stay ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostTiers {
    /// Max states handled by the one-`u64`-mask engine (≤ 64).
    pub bit64_max: usize,
    /// Max states handled by the one-`u128`-mask engine (≤ 128).
    pub bit128_max: usize,
}

impl Default for HostTiers {
    fn default() -> HostTiers {
        HostTiers { bit64_max: 64, bit128_max: 128 }
    }
}

impl HostTiers {
    fn clamped(self) -> HostTiers {
        let bit64_max = self.bit64_max.min(64);
        let bit128_max = self.bit128_max.min(128).max(bit64_max);
        HostTiers { bit64_max, bit128_max }
    }
}

/// A `cicero` program lowered to a host-native engine. Immutable and
/// `Sync`: share one behind an `Arc` across worker threads; per-run
/// mutable state lives in [`HostMatcher`].
pub struct HostProgram {
    repr: Repr,
}

impl std::fmt::Debug for HostProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostProgram")
            .field("engine", &self.engine_kind())
            .field("states", &self.state_count())
            .field("byte_classes", &self.byte_class_count())
            .finish()
    }
}

impl HostProgram {
    /// Lower `program` to the best-fitting host engine. Infallible: a
    /// program the lowering cannot handle within budget degrades to the
    /// reference interpreter rather than failing.
    pub fn compile(program: &Program) -> HostProgram {
        HostProgram::compile_with_tiers(program, HostTiers::default())
    }

    /// [`compile`](HostProgram::compile) with explicit engine-tier
    /// thresholds (see [`HostTiers`]); out-of-range thresholds are
    /// clamped, never an error.
    pub fn compile_with_tiers(program: &Program, tiers: HostTiers) -> HostProgram {
        let tiers = tiers.clamped();
        let repr = match nfa::lower(program) {
            None => Repr::Interp(program.clone()),
            Some(mut nfa) => {
                nfa::factor(&mut nfa);
                let states = nfa.preds.len();
                if states <= tiers.bit64_max {
                    Repr::W64(BitEngine::build(&nfa))
                } else if states <= tiers.bit128_max {
                    Repr::W128(BitEngine::build(&nfa))
                } else {
                    Repr::Dfa(dfa::SparseNfa::build(&nfa))
                }
            }
        };
        HostProgram { repr }
    }

    /// The selected execution strategy.
    pub fn engine_kind(&self) -> EngineKind {
        match &self.repr {
            Repr::W64(_) => EngineKind::Bit64,
            Repr::W128(_) => EngineKind::Bit128,
            Repr::Dfa(_) => EngineKind::LazyDfa,
            Repr::Interp(_) => EngineKind::Interp,
        }
    }

    /// States in the lowered automaton (0 for the interpreter fallback).
    pub fn state_count(&self) -> usize {
        match &self.repr {
            Repr::W64(e) => e.n_states,
            Repr::W128(e) => e.n_states,
            Repr::Dfa(n) => n.n_states,
            Repr::Interp(_) => 0,
        }
    }

    /// Byte classes the engine distinguishes (0 for the interpreter
    /// fallback).
    pub fn byte_class_count(&self) -> usize {
        match &self.repr {
            Repr::W64(e) => e.classes.count,
            Repr::W128(e) => e.classes.count,
            Repr::Dfa(n) => n.classes.count,
            Repr::Interp(_) => 0,
        }
    }

    /// The extracted literal-prefilter stop bytes (the candidate bytes a
    /// scan must inspect), when a prefilter was derived.
    pub fn prefilter_stop_bytes(&self) -> Option<Vec<u8>> {
        match &self.repr {
            Repr::W64(e) => e.prefilter.as_ref().map(|p| p.stop_bytes()),
            Repr::W128(e) => e.prefilter.as_ref().map(|p| p.stop_bytes()),
            Repr::Dfa(_) | Repr::Interp(_) => None,
        }
    }

    /// Execute over `input`, stopping at the first acceptance — the host
    /// analogue of [`cicero_isa::run`].
    pub fn run(&self, input: &[u8]) -> HostOutcome {
        let mut matcher = self.matcher();
        match matcher.feed(input) {
            Some(outcome) => outcome,
            None => matcher.finish(),
        }
    }

    /// Execute over `input`, collecting every distinct identifier — the
    /// host analogue of [`cicero_isa::run_all`].
    pub fn run_all(&self, input: &[u8]) -> HostAllOutcome {
        match &self.repr {
            Repr::W64(e) => e.run_all(input),
            Repr::W128(e) => e.run_all(input),
            Repr::Dfa(n) => dfa::run_all(n, input),
            Repr::Interp(p) => {
                let out = cicero_isa::run_all(p, input);
                HostAllOutcome {
                    accepted: out.accepted,
                    matched_ids: out.matched_ids,
                    first_match_position: out.first_match_position,
                }
            }
        }
    }

    /// [`HostProgram::run`] under a byte budget: at most `max_bytes`
    /// input bytes are examined (the host analogue of the simulator's
    /// fuel). When the budget trips before the run concludes, the
    /// outcome is the non-accepting partial state.
    pub fn run_budgeted(&self, input: &[u8], max_bytes: Option<u64>) -> HostRun {
        let cap = max_bytes
            .map(|m| usize::try_from(m).unwrap_or(usize::MAX).min(input.len()))
            .unwrap_or(input.len());
        let mut matcher = self.matcher();
        if let Some(outcome) = matcher.feed(&input[..cap]) {
            return HostRun { outcome, scanned: matcher.position() as u64, hit_byte_limit: false };
        }
        if cap < input.len() {
            return HostRun {
                outcome: HostOutcome { accepted: false, match_position: None, matched_id: None },
                scanned: matcher.position() as u64,
                hit_byte_limit: true,
            };
        }
        let outcome = matcher.finish();
        HostRun { outcome, scanned: matcher.position() as u64, hit_byte_limit: false }
    }

    /// Start a resumable match at position 0.
    pub fn matcher(&self) -> HostMatcher<'_> {
        let inner = match &self.repr {
            Repr::W64(e) => MatcherRepr::W64 { engine: e, matcher: BitMatcher::new(e) },
            Repr::W128(e) => MatcherRepr::W128 { engine: e, matcher: BitMatcher::new(e) },
            Repr::Dfa(n) => MatcherRepr::Dfa(dfa::DfaMatcher::new(n)),
            Repr::Interp(p) => MatcherRepr::Interp(cicero_isa::StreamMatcher::new(p)),
        };
        HostMatcher { inner, position: 0, done: None }
    }
}

/// Result of a budgeted run (see [`HostProgram::run_budgeted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostRun {
    /// The (possibly partial) outcome.
    pub outcome: HostOutcome,
    /// Input bytes examined before concluding or running out of budget.
    pub scanned: u64,
    /// Whether the byte budget tripped before the run concluded.
    pub hit_byte_limit: bool,
}

enum MatcherRepr<'p> {
    W64 { engine: &'p BitEngine<u64>, matcher: BitMatcher<u64> },
    W128 { engine: &'p BitEngine<u128>, matcher: BitMatcher<u128> },
    Dfa(dfa::DfaMatcher<'p>),
    Interp(cicero_isa::StreamMatcher<'p>),
}

/// A resumable host-engine matcher, mirroring the lifecycle contract of
/// [`cicero_isa::StreamMatcher`]: [`feed`](HostMatcher::feed) chunks
/// (each returns the final outcome early if the run concluded
/// mid-chunk), then [`finish`](HostMatcher::finish) for end-of-input
/// semantics. Feeding after conclusion re-reports the outcome; `finish`
/// is idempotent. Results are chunk-split invariant.
pub struct HostMatcher<'p> {
    inner: MatcherRepr<'p>,
    position: usize,
    done: Option<HostOutcome>,
}

impl HostMatcher<'_> {
    /// Consume one chunk. `Some(outcome)` as soon as the run concludes
    /// (acceptance or dead state); `None` means more input is wanted.
    pub fn feed(&mut self, chunk: &[u8]) -> Option<HostOutcome> {
        if self.done.is_some() {
            return self.done;
        }
        let outcome = match &mut self.inner {
            MatcherRepr::W64 { engine, matcher } => matcher.feed(engine, chunk, &mut self.position),
            MatcherRepr::W128 { engine, matcher } => {
                matcher.feed(engine, chunk, &mut self.position)
            }
            MatcherRepr::Dfa(matcher) => matcher.feed(chunk, &mut self.position),
            MatcherRepr::Interp(matcher) => {
                let out = matcher.feed(chunk).map(from_exec);
                self.position = matcher.position();
                out
            }
        };
        self.done = outcome;
        outcome
    }

    /// Signal end of input and return the final outcome (idempotent).
    pub fn finish(&mut self) -> HostOutcome {
        if let Some(outcome) = self.done {
            return outcome;
        }
        let outcome = match &mut self.inner {
            MatcherRepr::W64 { engine, matcher } => matcher.finish(engine, self.position),
            MatcherRepr::W128 { engine, matcher } => matcher.finish(engine, self.position),
            MatcherRepr::Dfa(matcher) => matcher.finish(self.position),
            MatcherRepr::Interp(matcher) => from_exec(matcher.finish()),
        };
        self.done = Some(outcome);
        outcome
    }

    /// Absolute input position of the live state (bytes consumed; at
    /// conclusion by acceptance, the match position).
    pub fn position(&self) -> usize {
        match &self.inner {
            MatcherRepr::Interp(matcher) => matcher.position(),
            _ => self.position,
        }
    }

    /// Whether the run has concluded.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }
}

fn from_exec(out: cicero_isa::ExecOutcome) -> HostOutcome {
    HostOutcome {
        accepted: out.accepted,
        match_position: out.match_position,
        matched_id: out.matched_id,
    }
}

/// Execute `program` over `chunks` as one concatenated input —
/// equivalent to `program.run(concat(chunks))` for every split.
pub fn run_chunked<'a, I>(program: &HostProgram, chunks: I) -> HostOutcome
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut matcher = program.matcher();
    for chunk in chunks {
        if let Some(outcome) = matcher.feed(chunk) {
            return outcome;
        }
    }
    matcher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cicero_isa::Instruction::*;
    use cicero_isa::{run, run_all, Instruction};

    fn program(instructions: Vec<Instruction>) -> Program {
        Program::from_instructions(instructions).unwrap()
    }

    /// Assert host/interpreter agreement on verdict, match end, and the
    /// `run_all` view, on every deterministic split of the input.
    fn assert_agrees(p: &Program, input: &[u8]) {
        let host = HostProgram::compile(p);
        let reference = run(p, input);
        let got = host.run(input);
        assert_eq!(got.accepted, reference.accepted, "verdict on {input:?}");
        assert_eq!(got.match_position, reference.match_position, "match end on {input:?}");
        let reference_all = run_all(p, input);
        let got_all = host.run_all(input);
        assert_eq!(got_all.accepted, reference_all.accepted, "all-verdict on {input:?}");
        assert_eq!(got_all.matched_ids, reference_all.matched_ids, "id set on {input:?}");
        assert_eq!(
            got_all.first_match_position, reference_all.first_match_position,
            "first end on {input:?}"
        );
        // Chunk-split invariance: 1-byte chunks and a middle split.
        let streamed = run_chunked(&host, input.chunks(1));
        assert_eq!(streamed, got, "1-byte chunks on {input:?}");
        let mid = input.len() / 2;
        let streamed = run_chunked(&host, [&input[..mid], &input[mid..]]);
        assert_eq!(streamed, got, "middle split on {input:?}");
    }

    fn scan_loop(body: Vec<Instruction>) -> Vec<Instruction> {
        // Standard unanchored prefix: Split(3); MatchAny; Jump(0); body...
        let mut instructions = vec![Split(3), MatchAny, Jump(0)];
        instructions.extend(body);
        instructions
    }

    fn inputs() -> Vec<Vec<u8>> {
        vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"b".to_vec(),
            b"ab".to_vec(),
            b"ba".to_vec(),
            b"xxabyy".to_vec(),
            b"xcdab".to_vec(),
            b"zzzzzzzzzzzzzzzzzzzzzz".to_vec(),
            b"aaabbb".to_vec(),
            vec![0x00, 0xff, b'a', b'b'],
            b"the cat in that hat".to_vec(),
        ]
    }

    #[test]
    fn agrees_on_unanchored_alternation() {
        let p = program(scan_loop(vec![
            Split(7),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            AcceptPartial,
        ]));
        for input in inputs() {
            assert_agrees(&p, &input);
        }
    }

    #[test]
    fn agrees_on_anchored_literal() {
        let p = program(vec![Match(b'a'), Match(b'b'), Accept]);
        for input in inputs() {
            assert_agrees(&p, &input);
        }
    }

    #[test]
    fn agrees_on_notmatch_chains() {
        // `[^ab]` anchored, accepting anywhere after one non-a non-b byte.
        let p = program(vec![NotMatch(b'a'), NotMatch(b'b'), MatchAny, AcceptPartial]);
        for input in inputs() {
            assert_agrees(&p, &input);
        }
        // NotMatch guarding an EOI Accept can never fire.
        let p = program(vec![Match(b'x'), NotMatch(b'a'), Accept]);
        for input in [b"x".to_vec(), b"xz".to_vec(), b"xa".to_vec(), b"".to_vec()] {
            assert_agrees(&p, &input);
        }
    }

    #[test]
    fn agrees_on_pathological_split_loops() {
        let p = program(vec![Split(2), Jump(0), Match(b'a'), Jump(0), Accept]);
        for input in inputs() {
            assert_agrees(&p, &input);
        }
    }

    #[test]
    fn agrees_on_multi_match_sets() {
        let p = program(scan_loop(vec![
            Split(6),
            Match(b'a'),
            AcceptPartialId(7),
            Match(b'b'),
            AcceptPartialId(9),
        ]));
        for input in inputs() {
            assert_agrees(&p, &input);
        }
    }

    #[test]
    fn agrees_on_compiled_patterns() {
        let patterns = [
            "ab|cd",
            "a",
            "(a|b)*c",
            "th(is|at|ose)",
            "[^ab]c",
            "a{2,4}b?",
            "x(a?|a*)y",
            "(GET|POST) /[a-z]*",
            "\u{0}|a",
        ];
        for pattern in patterns {
            let p = cicero_core::compile(pattern).unwrap().into_program();
            for input in inputs() {
                assert_agrees(&p, &input);
            }
        }
    }

    #[test]
    fn agrees_on_compiled_sets() {
        let set =
            cicero_core::Compiler::new().compile_set(&["abcd", "abce", "abcf", "zz"]).unwrap();
        let host = HostProgram::compile(set.program());
        for input in [
            b"xx abcd yy abce".to_vec(),
            b"abcf".to_vec(),
            b"zzz".to_vec(),
            b"abc".to_vec(),
            b"".to_vec(),
        ] {
            let reference = run_all(set.program(), &input);
            let got = host.run_all(&input);
            assert_eq!(got.matched_ids, reference.matched_ids, "{input:?}");
            assert_eq!(got.accepted, reference.accepted, "{input:?}");
        }
    }

    #[test]
    fn factoring_keeps_shared_prefix_sets_small() {
        let set = cicero_core::Compiler::new().compile_set(&["abcd", "abce", "abcf"]).unwrap();
        let host = HostProgram::compile(set.program());
        assert!(matches!(host.engine_kind(), EngineKind::Bit64 | EngineKind::Bit128));
        // The shared `abc` spine must fold: well under 3x the single
        // pattern's states.
        let single = HostProgram::compile(&cicero_core::compile("abcd").unwrap().into_program());
        assert!(
            host.state_count() < 2 * single.state_count() + 6,
            "host {} vs single {}",
            host.state_count(),
            single.state_count()
        );
    }

    #[test]
    fn prefilter_extracts_literal_stop_bytes() {
        let p = cicero_core::compile("th(is|at)").unwrap().into_program();
        let host = HostProgram::compile(&p);
        let stops = host.prefilter_stop_bytes().expect("literal-led pattern has a prefilter");
        assert!(stops.contains(&b't'), "stop bytes {stops:?}");
        assert!(stops.len() <= 3, "stop bytes {stops:?}");
        // And it is exact: a long non-candidate haystack still matches
        // correctly at the end.
        let mut input = vec![b'x'; 10_000];
        input.extend_from_slice(b"that");
        let out = host.run(&input);
        assert_eq!(out, from_exec(run(&p, &input)));
    }

    #[test]
    fn dot_heavy_patterns_defeat_the_prefilter_but_stay_correct() {
        // `..` reaches acceptance pressure on every byte: no state both
        // self-loops and stays silent, so no skip set can be derived.
        let p = cicero_core::compile("..").unwrap().into_program();
        let host = HostProgram::compile(&p);
        assert!(host.prefilter_stop_bytes().is_none(), "`.`-heavy pattern has no skip set");
        for input in inputs() {
            assert_agrees(&p, &input);
        }
        // `.a.` by contrast *does* yield a prefilter — the steady state
        // self-loops on every non-`a` byte — and it must stay exact.
        let p = cicero_core::compile(".a.").unwrap().into_program();
        let host = HostProgram::compile(&p);
        assert_eq!(host.prefilter_stop_bytes(), Some(vec![b'a']));
        for input in inputs() {
            assert_agrees(&p, &input);
        }
    }

    #[test]
    fn wide_pattern_selects_u128_engine() {
        // > 64 consuming positions, unanchored: needs the u128 mask.
        let pattern = "a".repeat(70);
        let p = cicero_core::compile(&pattern).unwrap().into_program();
        let host = HostProgram::compile(&p);
        assert_eq!(host.engine_kind(), EngineKind::Bit128, "{} states", host.state_count());
        let mut input = vec![b'x'; 50];
        input.extend(vec![b'a'; 80]);
        assert_agrees(&p, &input);
    }

    #[test]
    fn tier_thresholds_steer_engine_selection_without_changing_results() {
        // A ~4-state pattern lands on Bit64 by default; lowering the
        // bit64 ceiling pushes it to Bit128, lowering both pushes it to
        // the lazy DFA — same answers everywhere.
        let p = cicero_core::compile("ab+c").unwrap().into_program();
        let default = HostProgram::compile(&p);
        assert_eq!(default.engine_kind(), EngineKind::Bit64);
        let w128 = HostProgram::compile_with_tiers(&p, HostTiers { bit64_max: 0, bit128_max: 128 });
        assert_eq!(w128.engine_kind(), EngineKind::Bit128);
        let dfa = HostProgram::compile_with_tiers(&p, HostTiers { bit64_max: 0, bit128_max: 0 });
        assert_eq!(dfa.engine_kind(), EngineKind::LazyDfa);
        for input in inputs() {
            let expected = from_exec(run(&p, &input));
            assert_eq!(default.run(&input), expected, "{input:?}");
            assert_eq!(w128.run(&input), expected, "{input:?}");
            assert_eq!(dfa.run(&input), expected, "{input:?}");
        }
    }

    #[test]
    fn tier_thresholds_clamp_to_hard_capacity() {
        // Requesting more than the mask width is clamped, not honored:
        // a 70-state automaton cannot ride a u64 mask.
        let pattern = "a".repeat(70);
        let p = cicero_core::compile(&pattern).unwrap().into_program();
        let host =
            HostProgram::compile_with_tiers(&p, HostTiers { bit64_max: 999, bit128_max: 999 });
        assert_eq!(host.engine_kind(), EngineKind::Bit128, "{} states", host.state_count());
        // And an inverted pair (bit128 < bit64) is reordered.
        let tiers = HostTiers { bit64_max: 64, bit128_max: 0 }.clamped();
        assert_eq!(tiers, HostTiers { bit64_max: 64, bit128_max: 64 });
    }

    #[test]
    fn huge_pattern_selects_lazy_dfa() {
        let pattern = "a".repeat(140);
        let p = cicero_core::compile(&pattern).unwrap().into_program();
        let host = HostProgram::compile(&p);
        assert_eq!(host.engine_kind(), EngineKind::LazyDfa, "{} states", host.state_count());
        let mut input = vec![b'b'; 30];
        input.extend(vec![b'a'; 200]);
        assert_agrees(&p, &input);
    }

    #[test]
    fn lazy_dfa_survives_memo_churn() {
        // Alternation over many literals forces distinct subset states.
        let branches: Vec<String> =
            (0..40).map(|i| format!("x{:02}{}", i, "y".repeat(4))).collect();
        let pattern = branches.join("|");
        let p = cicero_core::compile(&pattern).unwrap().into_program();
        let host = HostProgram::compile(&p);
        let input: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        assert_agrees(&p, &input);
        let _ = host; // engine kind is whatever the state count dictates
    }

    #[test]
    fn budgeted_runs_trip_on_bytes() {
        let p = cicero_core::compile("zz").unwrap().into_program();
        let host = HostProgram::compile(&p);
        let input = vec![b'x'; 100];
        let run = host.run_budgeted(&input, Some(10));
        assert!(run.hit_byte_limit);
        assert!(!run.outcome.accepted);
        assert!(run.scanned <= 10);
        let run = host.run_budgeted(&input, Some(1000));
        assert!(!run.hit_byte_limit);
        assert_eq!(run.scanned, 100);
        // A match inside the budget concludes normally.
        let run = host.run_budgeted(b"zz----------", Some(5));
        assert!(run.outcome.accepted && !run.hit_byte_limit);
    }

    #[test]
    fn matcher_relifecycle_matches_stream_matcher() {
        let p = program(scan_loop(vec![Match(b'a'), Match(b'b'), AcceptPartial]));
        let host = HostProgram::compile(&p);
        let mut matcher = host.matcher();
        assert_eq!(matcher.feed(b""), None);
        assert_eq!(matcher.feed(b"xxa"), None);
        assert!(!matcher.is_done());
        let out = matcher.feed(b"bzz").expect("accepts inside the chunk");
        assert!(out.accepted);
        assert_eq!(out.match_position, Some(4));
        // Feeding after conclusion re-reports; finish is idempotent.
        assert_eq!(matcher.feed(b"more"), Some(out));
        assert_eq!(matcher.finish(), out);
        assert_eq!(matcher.finish(), out);
    }

    #[test]
    fn empty_program_edge_cases() {
        // `ab|` — matches everything, including the empty input.
        let p = cicero_core::compile("ab|").unwrap().into_program();
        for input in inputs() {
            assert_agrees(&p, &input);
        }
    }

    #[test]
    fn randomized_agreement_on_byte_soup() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC1CE_2025);
        let patterns = ["ab|cd", "[^x]*q", "a{3}b{2}", "(ab)*c", "th(e|at)", "^start", "end$"];
        for pattern in patterns {
            let p = cicero_core::compile(pattern).unwrap().into_program();
            let host = HostProgram::compile(&p);
            for _ in 0..50 {
                let len = rng.random_range(0..200);
                let input: Vec<u8> = (0..len)
                    .map(|_| {
                        let alphabet = b"abcdextq ";
                        alphabet[rng.random_range(0..alphabet.len())]
                    })
                    .collect();
                let reference = run(&p, &input);
                let got = host.run(&input);
                assert_eq!(got.accepted, reference.accepted, "{pattern} on {input:?}");
                assert_eq!(got.match_position, reference.match_position, "{pattern} on {input:?}");
            }
        }
    }
}
