//! Pluggable cost models: how a candidate config is scored on a workload.

use std::time::Instant;

use cicero_core::Compiler;
use cicero_hostexec::HostProgram;
use cicero_sim::simulate;

use crate::config::TuneConfig;
use crate::workload::Workload;
use crate::TuneError;

/// Everything one evaluation measured. `cost` is the scalar the searcher
/// minimizes; the rest is reporting (benches, `tune.toml` score section).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// The minimized scalar. Simulated cycles (with icache misses as a
    /// deterministic tie-breaker) for [`SimCostModel`]; wall-clock
    /// nanoseconds for [`HostCostModel`].
    pub cost: f64,
    /// Total simulated cycles across every (pattern × chunk) pair (0 for
    /// the host model — it has no cycle notion).
    pub cycles: u64,
    /// Total simulated icache misses (0 for the host model).
    pub icache_misses: u64,
    /// Estimated scan time in microseconds (from cycles and the derated
    /// clock for sim; measured for host).
    pub time_us: f64,
    /// Workload bytes per second, in MB/s, implied by `time_us`.
    pub throughput_mbps: f64,
    /// Summed `D_offset` code-locality metric across the compiled
    /// patterns (the paper's Equation 1 — reported alongside every cost).
    pub d_offset: u64,
    /// Summed code size in instructions.
    pub code_size: usize,
}

/// A way to score one candidate on one workload. Implementations must be
/// pure functions of `(workload, config)` to be memoizable; the host
/// model bends this (wall-clock noise) and is documented accordingly.
pub trait CostModel {
    /// Short name recorded in `tune.toml` (`sim`, `host`).
    fn name(&self) -> &'static str;

    /// Score `config` on `workload`.
    ///
    /// # Errors
    ///
    /// [`TuneError::Compile`] when a workload pattern fails to compile
    /// under the candidate's compiler options.
    fn evaluate(&self, workload: &Workload, config: &TuneConfig) -> Result<CostReport, TuneError>;
}

/// Cost a candidate pays when the simulator trips its cycle safety
/// valve: effectively infinite, but finite so comparisons stay total.
const CYCLE_LIMIT_COST: f64 = 1e30;

/// The default, deterministic model: compile every pattern under the
/// candidate's compiler options, simulate it over every chunk on the
/// candidate's machine, and sum cycles. Identical inputs give identical
/// scores on every host, which is what makes `--seed` reproducible.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimCostModel;

impl CostModel for SimCostModel {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn evaluate(&self, workload: &Workload, config: &TuneConfig) -> Result<CostReport, TuneError> {
        let arch = config.arch.to_arch_config();
        let compiler = Compiler::with_options(config.compiler);
        let mut cycles = 0u64;
        let mut icache_misses = 0u64;
        let mut d_offset = 0u64;
        let mut code_size = 0usize;
        let mut hit_limit = false;
        for pattern in &workload.patterns {
            let compiled = compiler
                .compile(pattern)
                .map_err(|e| TuneError::Compile(format!("`{pattern}`: {e}")))?;
            d_offset += compiled.d_offset();
            code_size += compiled.code_size();
            let program = compiled.into_program();
            for chunk in &workload.chunks {
                let report = simulate(&program, chunk, &arch);
                cycles += report.cycles;
                icache_misses += report.icache_misses;
                hit_limit |= report.hit_cycle_limit;
            }
        }
        let time_us = cycles as f64 / arch.clock_mhz();
        let total_bytes = workload.total_bytes() as f64;
        let throughput_mbps = if time_us > 0.0 { total_bytes / time_us } else { 0.0 };
        let cost = if hit_limit {
            CYCLE_LIMIT_COST
        } else {
            // Misses break cycle ties deterministically without ever
            // outweighing a single cycle of difference.
            cycles as f64 + icache_misses as f64 * 1e-3
        };
        Ok(CostReport {
            cost,
            cycles,
            icache_misses,
            time_us,
            throughput_mbps,
            d_offset,
            code_size,
        })
    }
}

/// Wall-clock model for the host-native backend: lower every pattern to
/// the host engine under the candidate's tier thresholds and time real
/// scans.
///
/// **Nondeterministic by nature** — scheduler noise moves the numbers —
/// so the searcher accepts it but `tune.toml` records only the candidate
/// *decision*, never host-measured scores, and `--seed` reproducibility
/// is only promised for the sim model.
#[derive(Debug, Clone, Copy)]
pub struct HostCostModel {
    /// Timed repetitions per (pattern × chunk) pair; more reps, less
    /// noise, slower search.
    pub reps: u32,
}

impl Default for HostCostModel {
    fn default() -> HostCostModel {
        HostCostModel { reps: 3 }
    }
}

impl CostModel for HostCostModel {
    fn name(&self) -> &'static str {
        "host"
    }

    fn evaluate(&self, workload: &Workload, config: &TuneConfig) -> Result<CostReport, TuneError> {
        let compiler = Compiler::with_options(config.compiler);
        let mut d_offset = 0u64;
        let mut code_size = 0usize;
        let mut programs = Vec::new();
        for pattern in &workload.patterns {
            let compiled = compiler
                .compile(pattern)
                .map_err(|e| TuneError::Compile(format!("`{pattern}`: {e}")))?;
            d_offset += compiled.d_offset();
            code_size += compiled.code_size();
            programs.push(HostProgram::compile_with_tiers(&compiled.into_program(), config.host));
        }
        let start = Instant::now();
        for _ in 0..self.reps.max(1) {
            for program in &programs {
                for chunk in &workload.chunks {
                    std::hint::black_box(program.run(chunk));
                }
            }
        }
        let elapsed = start.elapsed();
        let time_us = elapsed.as_secs_f64() * 1e6 / f64::from(self.reps.max(1));
        let total_bytes = workload.total_bytes() as f64;
        let throughput_mbps = if time_us > 0.0 { total_bytes / time_us } else { 0.0 };
        Ok(CostReport {
            cost: elapsed.as_nanos() as f64,
            cycles: 0,
            icache_misses: 0,
            time_us,
            throughput_mbps,
            d_offset,
            code_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> Workload {
        Workload::from_patterns(&["ab+c".to_owned(), "x[yz]w".to_owned()]).unwrap()
    }

    #[test]
    fn sim_model_is_deterministic() {
        let workload = tiny_workload();
        let config = TuneConfig::default();
        let a = SimCostModel.evaluate(&workload, &config).unwrap();
        let b = SimCostModel.evaluate(&workload, &config).unwrap();
        assert_eq!(a, b);
        assert!(a.cycles > 0);
        assert!(a.cost > 0.0);
        assert!(a.throughput_mbps > 0.0);
    }

    #[test]
    fn sim_model_sees_config_differences() {
        let workload = tiny_workload();
        let default = SimCostModel.evaluate(&workload, &TuneConfig::default()).unwrap();
        let mut small = TuneConfig::default();
        small.arch.cache_lines = 1;
        small.arch.cache_line_size = 1;
        let starved = SimCostModel.evaluate(&workload, &small).unwrap();
        // A one-line icache cannot beat the default geometry.
        assert!(starved.icache_misses >= default.icache_misses);
    }

    #[test]
    fn host_model_runs_and_reports_locality() {
        let workload = tiny_workload();
        let report = HostCostModel { reps: 1 }.evaluate(&workload, &TuneConfig::default()).unwrap();
        assert!(report.cost > 0.0);
        assert!(report.code_size > 0);
        assert_eq!(report.cycles, 0, "host model has no cycle notion");
    }

    #[test]
    fn compile_errors_name_the_pattern() {
        let workload = Workload {
            name: "bad".to_owned(),
            patterns: vec!["(".to_owned()],
            chunks: vec![b"abc".to_vec()],
        };
        let err = SimCostModel.evaluate(&workload, &TuneConfig::default()).unwrap_err();
        assert!(matches!(err, TuneError::Compile(ref msg) if msg.contains('(')), "{err}");
    }
}
