//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every table and figure of the paper's evaluation (§6) has a
//! corresponding bench target in `benches/` (see DESIGN.md's experiment
//! index). Each target prints the regenerated rows next to the paper's
//! published values where the paper gives them numerically.
//!
//! # Scale
//!
//! The paper runs 200 REs over 10 MB of input per suite (≈ 48 h of
//! wall-clock on their FPGA flow). Simulating that per bench target is
//! impractical, so the harness scales with the `CICERO_BENCH_SCALE`
//! environment variable:
//!
//! | value     | patterns per suite | chunks (500 B each) |
//! |-----------|--------------------|---------------------|
//! | `quick`   | 8                  | 2                   |
//! | *default* | 16                 | 4                   |
//! | `full`    | 200                | 48                  |
//!
//! Relative results (who wins, by what factor) are stable across scales;
//! EXPERIMENTS.md records a default-scale run.

use std::time::Instant;

use cicero_isa::Program;
use cicero_sim::{simulate_batch, ArchConfig};
use cicero_telemetry::Telemetry;
use workloads::Benchmark;

/// Deterministic seed shared by every bench target, so figures compose.
pub const SEED: u64 = 0xC1CE_2025;

/// Benchmark scale (patterns per suite, input chunks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Patterns per suite.
    pub patterns: usize,
    /// 500-byte chunks per suite.
    pub chunks: usize,
}

impl Scale {
    /// Read the scale from `CICERO_BENCH_SCALE` (see crate docs).
    pub fn from_env() -> Scale {
        match std::env::var("CICERO_BENCH_SCALE").as_deref() {
            Ok("quick") => Scale { patterns: 8, chunks: 2 },
            Ok("full") => Scale { patterns: 200, chunks: 48 },
            _ => Scale { patterns: 16, chunks: 4 },
        }
    }
}

/// The four suites at the configured scale.
pub fn suites(scale: Scale) -> Vec<Benchmark> {
    Benchmark::all(SEED, scale.patterns, scale.chunks)
}

/// One suite compiled four ways, with compile times.
#[derive(Debug)]
pub struct CompiledSuite {
    /// Suite name.
    pub name: &'static str,
    /// The input chunks.
    pub chunks: Vec<Vec<u8>>,
    /// New compiler, optimizations on.
    pub new_opt: Vec<Program>,
    /// New compiler, optimizations off.
    pub new_unopt: Vec<Program>,
    /// Old compiler, Code Restructuring on.
    pub old_opt: Vec<Program>,
    /// Old compiler, optimizations off.
    pub old_unopt: Vec<Program>,
    /// Total wall-clock compile seconds, same order as the fields above.
    pub compile_seconds: [f64; 4],
}

impl CompiledSuite {
    /// Compile one suite with both compilers, both optimization settings.
    pub fn build(bench: &Benchmark) -> CompiledSuite {
        let new_opt_compiler = cicero_core::Compiler::new();
        let new_unopt_compiler =
            cicero_core::Compiler::with_options(cicero_core::CompilerOptions::unoptimized());
        let old_opt_compiler = cicero_legacy::LegacyCompiler::new(true);
        let old_unopt_compiler = cicero_legacy::LegacyCompiler::new(false);

        let time = |f: &mut dyn FnMut() -> Vec<Program>| {
            let start = Instant::now();
            let programs = f();
            (programs, start.elapsed().as_secs_f64())
        };
        let (new_opt, t0) = time(&mut || {
            bench
                .patterns
                .iter()
                .map(|p| new_opt_compiler.compile(p).expect("suite compiles").into_program())
                .collect()
        });
        let (new_unopt, t1) = time(&mut || {
            bench
                .patterns
                .iter()
                .map(|p| new_unopt_compiler.compile(p).expect("suite compiles").into_program())
                .collect()
        });
        let (old_opt, t2) = time(&mut || {
            bench.patterns.iter().map(|p| old_opt_compiler.compile(p).expect("compiles")).collect()
        });
        let (old_unopt, t3) = time(&mut || {
            bench
                .patterns
                .iter()
                .map(|p| old_unopt_compiler.compile(p).expect("compiles"))
                .collect()
        });
        CompiledSuite {
            name: bench.name,
            chunks: bench.chunks.clone(),
            new_opt,
            new_unopt,
            old_opt,
            old_unopt,
            compile_seconds: [t0, t1, t2, t3],
        }
    }
}

/// Aggregate measurement of one (program set, architecture) pair.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Average execution time per RE (per chunk) in µs.
    pub avg_time_us: f64,
    /// Average energy per RE in W·µs.
    pub avg_energy_wus: f64,
    /// Average cycles per RE.
    pub avg_cycles: f64,
    /// Aggregate instruction-cache hit rate.
    pub icache_hit_rate: f64,
}

/// Run every program over every chunk on `config` and average per RE.
///
/// Matches the paper's measurement: "we first count the cycles required to
/// complete the execution of a complete benchmark and then divide by the
/// number of REs executed", then divide by the clock and multiply by total
/// on-chip power for energy.
pub fn measure(programs: &[Program], chunks: &[Vec<u8>], config: &ArchConfig) -> Measurement {
    measure_impl(programs, chunks, config, None)
}

/// Like [`measure`], but additionally folding every individual run into
/// `telemetry` (`sim.*` histograms and counters), so bench drivers get
/// per-run distributions alongside the averaged table cells.
pub fn measure_with_telemetry(
    programs: &[Program],
    chunks: &[Vec<u8>],
    config: &ArchConfig,
    telemetry: &Telemetry,
) -> Measurement {
    measure_impl(programs, chunks, config, Some(telemetry))
}

fn measure_impl(
    programs: &[Program],
    chunks: &[Vec<u8>],
    config: &ArchConfig,
    telemetry: Option<&Telemetry>,
) -> Measurement {
    let clock = config.clock_mhz();
    let watts = cicero_sim::power_watts(config);
    let mut cycles = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for program in programs {
        for report in simulate_batch(program, chunks, config) {
            assert!(!report.hit_cycle_limit, "benchmark run hit the cycle cap");
            if let Some(telemetry) = telemetry {
                report.record_into(telemetry);
            }
            cycles += report.cycles;
            hits += report.icache_hits;
            misses += report.icache_misses;
        }
    }
    let runs = (programs.len() * chunks.len()) as f64;
    let avg_cycles = cycles as f64 / runs;
    let avg_time_us = avg_cycles / clock;
    Measurement {
        avg_time_us,
        avg_energy_wus: avg_time_us * watts,
        avg_cycles,
        icache_hit_rate: if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
    }
}

/// Simple aligned-table printer for bench output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }

    /// Record every row as a telemetry event named `<name>.row`, one
    /// attribute per column header, so table drivers reuse the JSON-lines
    /// sink for machine-readable output.
    pub fn record_into(&self, telemetry: &Telemetry, name: &str) {
        for row in &self.rows {
            let attrs = self
                .headers
                .iter()
                .zip(row)
                .map(|(header, cell)| (header.clone(), cicero_telemetry::Value::from(cell.clone())))
                .collect();
            telemetry.event(format!("{name}.row"), attrs);
        }
    }
}

/// Print the standard bench header.
pub fn banner(id: &str, title: &str, scale: Scale) {
    println!();
    println!("=== {id}: {title} ===");
    println!(
        "    scale: {} patterns/suite, {} chunks of {} B  (set CICERO_BENCH_SCALE=quick|full)",
        scale.patterns,
        scale.chunks,
        workloads::CHUNK_BYTES
    );
    println!();
}

/// The architecture configurations of the paper's final evaluation
/// (§6.2's restricted set after micro-bench pre-filtering).
pub fn selected_configs() -> Vec<ArchConfig> {
    vec![
        ArchConfig::old_organization(9),
        ArchConfig::old_organization(16),
        ArchConfig::new_organization(8, 1),
        ArchConfig::new_organization(16, 1),
        ArchConfig::new_organization(32, 1),
    ]
}

/// Paper-published reference values, for side-by-side printing.
pub mod paper {
    /// Table 2 / Table 5 energy per RE (W·µs): rows are
    /// `OLD 1x{1,4,9,16,32}`, columns PROTOMATA, BRILL, PROTOMATA4,
    /// BRILL4.
    pub const TABLE2: [(&str, [f64; 4]); 5] = [
        ("OLD 1x1 CORES", [39.08, 72.30, 147.74, 102.33]),
        ("OLD 1x4 CORES", [24.62, 72.24, 49.52, 125.19]),
        ("OLD 1x9 CORES", [24.94, 68.72, 40.27, 94.16]),
        ("OLD 1x16 CORES", [27.23, 73.25, 43.58, 91.73]),
        ("OLD 1x32 CORES", [39.20, 105.05, 61.66, 110.42]),
    ];

    /// Table 5's NEW-organization rows (energy per RE, W·µs).
    pub const TABLE5_NEW: [(&str, [f64; 4]); 9] = [
        ("NEW 8x1 CORES", [22.65, 61.03, 35.35, 76.86]),
        ("NEW 8x4 CORES", [26.03, 69.70, 39.23, 85.04]),
        ("NEW 8x9 CORES", [30.84, 82.60, 45.52, 100.75]),
        ("NEW 8x16 CORES", [38.14, 102.24, 55.22, 124.47]),
        ("NEW 16x1 CORES", [24.54, 64.40, 28.54, 73.94]),
        ("NEW 16x4 CORES", [32.96, 86.34, 37.39, 97.52]),
        ("NEW 16x9 CORES", [54.47, 142.68, 60.32, 160.65]),
        ("NEW 32x1 CORES", [31.90, 80.40, 34.54, 86.56]),
        ("NEW 32x4 CORES", [57.98, 146.07, 61.83, 156.81]),
    ];

    /// Figure 9 ratios the text quotes: old-compiler slowdown with
    /// optimizations per suite.
    pub const OLD_OPT_SLOWDOWN: [f64; 4] = [6.52, 2.10, 38.98, 2.24];
    /// New-compiler optimization overhead per suite.
    pub const NEW_OPT_OVERHEAD: [f64; 4] = [1.18, 1.14, 1.31, 1.45];
    /// New-compiler compile-time advantage without optimizations.
    pub const NEW_UNOPT_SPEEDUP: [f64; 4] = [5.11, 4.36, 7.10, 5.77];
    /// Figure 10 locality improvement of new over old (w/ opts).
    pub const LOCALITY_IMPROVEMENT: [f64; 4] = [10.53, 1.0, 11.27, 2.88];
    /// Figure 11 execution-time speedup of the new compiler on the old
    /// architecture (Protomata(4) / Brill(4)).
    pub const FIG11_SPEEDUP: [f64; 4] = [1.7, 1.2, 1.7, 1.2];
    /// Table 6: best-old vs best-new speedup and energy improvement on
    /// PROTOMATA4 / BRILL4 / overall average.
    pub const TABLE6_SPEEDUP: [f64; 3] = [2.27, 1.35, 1.48];
    /// Table 6 energy-efficiency improvements.
    pub const TABLE6_ENERGY: [f64; 3] = [2.30, 1.49, 1.56];

    /// Suite display order used by the arrays above.
    pub const SUITES: [&str; 4] = ["PROTOMATA", "BRILL", "PROTOMATA4", "BRILL4"];
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_values() {
        // Not setting the env var in-process (tests run in parallel);
        // just exercise the default path.
        let s = Scale::from_env();
        assert!(s.patterns > 0 && s.chunks > 0);
    }

    #[test]
    fn measure_end_to_end_smoke() {
        let bench = Benchmark::protomata(SEED, 3, 2);
        let programs: Vec<Program> = bench
            .patterns
            .iter()
            .map(|p| cicero_core::compile(p).unwrap().into_program())
            .collect();
        let m = measure(&programs, &bench.chunks, &ArchConfig::old_organization(1));
        assert!(m.avg_cycles > 0.0);
        assert!(m.avg_time_us > 0.0);
        assert!(m.avg_energy_wus > m.avg_time_us, "power is > 1 W");
        assert!(m.icache_hit_rate > 0.0 && m.icache_hit_rate <= 1.0);
    }

    #[test]
    fn compiled_suite_builds_all_variants() {
        let bench = Benchmark::brill(SEED, 3, 1);
        let suite = CompiledSuite::build(&bench);
        assert_eq!(suite.new_opt.len(), 3);
        assert_eq!(suite.old_unopt.len(), 3);
        assert!(suite.compile_seconds.iter().all(|t| *t > 0.0));
    }

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(vec!["a", "value"]);
        t.row(vec!["x", "1.00"]);
        t.print(); // smoke: no panic
    }

    #[test]
    fn table_rows_export_as_jsonl_events() {
        let mut t = Table::new(vec!["suite", "energy"]);
        t.row(vec!["PROTOMATA", "24.62"]);
        t.row(vec!["BRILL", "72.24"]);
        let telemetry = Telemetry::new();
        t.record_into(&telemetry, "table2");
        let jsonl = telemetry.render_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains(r#""name":"table2.row""#), "{jsonl}");
        assert!(jsonl.contains(r#""suite":"PROTOMATA""#), "{jsonl}");
    }

    #[test]
    fn measure_with_telemetry_folds_every_run() {
        let bench = Benchmark::protomata(SEED, 2, 2);
        let programs: Vec<Program> = bench
            .patterns
            .iter()
            .map(|p| cicero_core::compile(p).unwrap().into_program())
            .collect();
        let telemetry = Telemetry::new();
        let m = measure_with_telemetry(
            &programs,
            &bench.chunks,
            &ArchConfig::old_organization(1),
            &telemetry,
        );
        assert!(m.avg_cycles > 0.0);
        assert_eq!(telemetry.counter("sim.runs"), 4); // 2 programs x 2 chunks
        assert_eq!(telemetry.histogram("sim.cycles").unwrap().count, 4);
    }
}
