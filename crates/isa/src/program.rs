//! Validated Cicero programs and their textual assembly form.

use std::fmt;
use std::str::FromStr;

use crate::instruction::{render_char, Instruction, MAX_OPERAND};

/// A validated sequence of Cicero instructions.
///
/// Invariants (enforced by [`Program::from_instructions`]):
///
/// * at most `MAX_OPERAND + 1` instructions, so every address is encodable;
/// * every `Split`/`Jump` target lies inside the program;
/// * the program is non-empty and ends in a way that cannot run off the end
///   of instruction memory (the last instruction is an acceptance or an
///   unconditional jump, and no fall-through off the end exists anywhere).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    instructions: Vec<Instruction>,
}

/// Validation error for [`Program::from_instructions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Programs must contain at least one instruction.
    Empty,
    /// The program exceeds the 13-bit address space.
    TooLong {
        /// Actual number of instructions.
        len: usize,
    },
    /// A control-flow instruction targets an address outside the program.
    TargetOutOfRange {
        /// Address of the offending instruction.
        address: usize,
        /// Its out-of-range target.
        target: u16,
    },
    /// An instruction other than acceptance/jump would fall through past the
    /// end of instruction memory.
    FallsOffEnd {
        /// Address of the offending final instruction.
        address: usize,
    },
    /// An operand does not fit the 13-bit field (a multi-matching id above
    /// [`MAX_OPERAND`]).
    OperandTooWide {
        /// Address of the offending instruction.
        address: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program is empty"),
            ProgramError::TooLong { len } => write!(
                f,
                "program has {len} instructions, exceeding the {}-entry address space",
                usize::from(MAX_OPERAND) + 1
            ),
            ProgramError::TargetOutOfRange { address, target } => {
                write!(f, "instruction at {address} targets out-of-range address {target}")
            }
            ProgramError::FallsOffEnd { address } => {
                write!(f, "instruction at {address} can fall through past the end of the program")
            }
            ProgramError::OperandTooWide { address } => {
                write!(f, "instruction at {address} has an operand wider than 13 bits")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Build a program, validating the invariants listed on [`Program`].
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn from_instructions(instructions: Vec<Instruction>) -> Result<Program, ProgramError> {
        if instructions.is_empty() {
            return Err(ProgramError::Empty);
        }
        if instructions.len() > usize::from(MAX_OPERAND) + 1 {
            return Err(ProgramError::TooLong { len: instructions.len() });
        }
        for (address, ins) in instructions.iter().enumerate() {
            if let Some(target) = ins.branch_target() {
                if usize::from(target) >= instructions.len() {
                    return Err(ProgramError::TargetOutOfRange { address, target });
                }
            }
            if ins.operand() > MAX_OPERAND {
                return Err(ProgramError::OperandTooWide { address });
            }
        }
        let last_addr = instructions.len() - 1;
        let last = instructions[last_addr];
        if !(last.is_acceptance() || matches!(last, Instruction::Jump(_))) {
            return Err(ProgramError::FallsOffEnd { address: last_addr });
        }
        Ok(Program { instructions })
    }

    /// Build a program without validating; used by the disassembler, which
    /// performs its own word-level validation.
    pub(crate) fn from_instructions_unchecked(instructions: Vec<Instruction>) -> Program {
        Program { instructions }
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions — the paper's *code size* metric (Figure 8).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty (never true for validated programs).
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Fetch the instruction at `address`, if in range.
    pub fn get(&self, address: u16) -> Option<Instruction> {
        self.instructions.get(usize::from(address)).copied()
    }

    /// Render the address-annotated assembly listing (Listing 2 style).
    ///
    /// `Split` is rendered with both successor addresses, e.g.
    /// `000: SPLIT {1,3}`.
    pub fn to_asm(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (address, ins) in self.instructions.iter().enumerate() {
            let _ = write!(out, "{address:03}: ");
            match *ins {
                Instruction::Split(t) => {
                    let _ = writeln!(out, "SPLIT {{{},{}}}", address + 1, t);
                }
                Instruction::Match(c) => {
                    let _ = writeln!(out, "MATCH char {}", render_char(c));
                }
                Instruction::NotMatch(c) => {
                    let _ = writeln!(out, "NOT_MATCH char {}", render_char(c));
                }
                Instruction::Jump(t) => {
                    let _ = writeln!(out, "JMP to {t}");
                }
                Instruction::MatchAny => {
                    let _ = writeln!(out, "MATCH_ANY");
                }
                Instruction::Accept => {
                    let _ = writeln!(out, "ACCEPT");
                }
                Instruction::AcceptPartial => {
                    let _ = writeln!(out, "ACCEPT_PARTIAL");
                }
                Instruction::AcceptPartialId(id) => {
                    let _ = writeln!(out, "ACCEPT_ID {id}");
                }
            }
        }
        out
    }

    /// Total jump offset `D_offset` (Equation 1) — see [`crate::locality`].
    pub fn total_jump_offset(&self) -> u64 {
        crate::locality::total_jump_offset(self)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_asm())
    }
}

/// Error parsing the textual assembly form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number of the error.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

impl FromStr for Program {
    type Err = ParseAsmError;

    /// Parse the listing produced by [`Program::to_asm`]. Blank lines and
    /// `#` / `;` comment lines are ignored; the leading `NNN:` address is
    /// optional and, when present, must match the instruction's position.
    fn from_str(text: &str) -> Result<Program, ParseAsmError> {
        let mut instructions = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let err = |message: String| ParseAsmError { line: line_no, message };
            let mut line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
                continue;
            }
            if let Some(colon) = line.find(':') {
                let (addr_part, rest) = line.split_at(colon);
                if let Ok(addr) = addr_part.trim().parse::<usize>() {
                    if addr != instructions.len() {
                        return Err(err(format!(
                            "address label {addr} does not match position {}",
                            instructions.len()
                        )));
                    }
                    line = rest[1..].trim();
                }
            }
            let mut parts = line.split_whitespace();
            let mnemonic = parts.next().ok_or_else(|| err("missing mnemonic".into()))?;
            let rest: Vec<&str> = parts.collect();
            let ins = match mnemonic.to_ascii_uppercase().as_str() {
                "MATCH_ANY" => Instruction::MatchAny,
                "ACCEPT" => Instruction::Accept,
                "ACCEPT_PARTIAL" => Instruction::AcceptPartial,
                "ACCEPT_ID" => {
                    let id: u16 = rest
                        .first()
                        .and_then(|t| t.parse().ok())
                        .filter(|id| *id <= MAX_OPERAND)
                        .ok_or_else(|| err(format!("expected an id operand, got {rest:?}")))?;
                    Instruction::AcceptPartialId(id)
                }
                "MATCH" | "NOT_MATCH" => {
                    let c = parse_char_operand(&rest)
                        .ok_or_else(|| err(format!("expected `char <c>` operand, got {rest:?}")))?;
                    if mnemonic.eq_ignore_ascii_case("MATCH") {
                        Instruction::Match(c)
                    } else {
                        Instruction::NotMatch(c)
                    }
                }
                "JMP" => {
                    let t = parse_target(&rest)
                        .ok_or_else(|| err(format!("expected jump target, got {rest:?}")))?;
                    Instruction::Jump(t)
                }
                "SPLIT" => {
                    let t = parse_split_target(&rest, instructions.len())
                        .ok_or_else(|| err(format!("expected split target, got {rest:?}")))?;
                    Instruction::Split(t)
                }
                other => return Err(err(format!("unknown mnemonic `{other}`"))),
            };
            instructions.push(ins);
        }
        Program::from_instructions(instructions)
            .map_err(|e| ParseAsmError { line: 0, message: e.to_string() })
    }
}

fn parse_char_operand(rest: &[&str]) -> Option<u8> {
    let token = match rest {
        ["char", t] => t,
        [t] => t,
        _ => return None,
    };
    if let Some(hex) = token.strip_prefix("0x") {
        return u8::from_str_radix(hex, 16).ok();
    }
    let bytes = token.as_bytes();
    (bytes.len() == 1).then(|| bytes[0])
}

fn parse_target(rest: &[&str]) -> Option<u16> {
    let token = match rest {
        ["to", t] => t,
        [t] => t,
        _ => return None,
    };
    token.parse().ok()
}

/// Split renders as `{next,target}`; accept either that form or a bare target.
fn parse_split_target(rest: &[&str], address: usize) -> Option<u16> {
    let token = rest.first()?;
    if let Some(stripped) = token.strip_prefix('{').and_then(|t| t.strip_suffix('}')) {
        let (first, second) = stripped.split_once(',')?;
        let first: usize = first.trim().parse().ok()?;
        if first != address + 1 {
            return None;
        }
        return second.trim().parse().ok();
    }
    token.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing2_no_opt() -> Vec<Instruction> {
        vec![
            Instruction::Split(3),
            Instruction::MatchAny,
            Instruction::Jump(0),
            Instruction::Split(8),
            Instruction::Match(b'a'),
            Instruction::Match(b'b'),
            Instruction::Jump(7),
            Instruction::AcceptPartial,
            Instruction::Match(b'c'),
            Instruction::Match(b'd'),
            Instruction::Jump(7),
        ]
    }

    #[test]
    fn validation_accepts_listing2() {
        let p = Program::from_instructions(listing2_no_opt()).unwrap();
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::from_instructions(vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn out_of_range_target_rejected() {
        let err = Program::from_instructions(vec![Instruction::Jump(9), Instruction::Accept]);
        assert_eq!(err, Err(ProgramError::TargetOutOfRange { address: 0, target: 9 }));
    }

    #[test]
    fn fall_off_end_rejected() {
        let err = Program::from_instructions(vec![Instruction::Match(b'a')]);
        assert_eq!(err, Err(ProgramError::FallsOffEnd { address: 0 }));
    }

    #[test]
    fn jump_ending_accepted() {
        // Infinite loops are legal programs (the engine kills threads on
        // input exhaustion); `.*` with no acceptance is degenerate but valid.
        let p = Program::from_instructions(vec![Instruction::MatchAny, Instruction::Jump(0)]);
        assert!(p.is_ok());
    }

    #[test]
    fn asm_roundtrip() {
        let p = Program::from_instructions(listing2_no_opt()).unwrap();
        let text = p.to_asm();
        let back: Program = text.parse().unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn asm_rendering_matches_paper_style() {
        let p = Program::from_instructions(vec![
            Instruction::Split(3),
            Instruction::MatchAny,
            Instruction::Jump(0),
            Instruction::AcceptPartial,
        ])
        .unwrap();
        let asm = p.to_asm();
        assert!(asm.contains("000: SPLIT {1,3}"), "{asm}");
        assert!(asm.contains("002: JMP to 0"), "{asm}");
    }

    #[test]
    fn asm_parser_accepts_comments_and_blank_lines() {
        let text = "# header\n\n000: MATCH char a\n; trailer\n001: ACCEPT_PARTIAL\n";
        let p: Program = text.parse().unwrap();
        assert_eq!(p.instructions(), &[Instruction::Match(b'a'), Instruction::AcceptPartial]);
    }

    #[test]
    fn asm_parser_rejects_mismatched_address() {
        let text = "005: ACCEPT\n";
        let err = text.parse::<Program>().unwrap_err();
        assert!(err.message.contains("does not match position"));
    }

    #[test]
    fn asm_parser_rejects_unknown_mnemonic() {
        let err = "000: FROB 1\n".parse::<Program>().unwrap_err();
        assert!(err.message.contains("unknown mnemonic"));
    }

    #[test]
    fn hex_char_operand_roundtrip() {
        let p = Program::from_instructions(vec![
            Instruction::Match(0x00),
            Instruction::NotMatch(0xff),
            Instruction::Accept,
        ])
        .unwrap();
        let back: Program = p.to_asm().parse().unwrap();
        assert_eq!(back, p);
    }
}
