//! Sharded LRU cache of compiled programs with miss coalescing.
//!
//! Serving traffic repeats patterns: deep-packet rules are applied to
//! every packet, log-scan expressions to every shard. Compilation walks
//! the whole multi-dialect pass pipeline (parse → `regex` dialect passes →
//! lowering → Jump Simplification → codegen), which is pure overhead the
//! second time the same pattern arrives. The cache memoizes the finished
//! [`Program`] keyed by `(pattern, CompilerOptions)` — the options are
//! part of the key because every transformation toggle changes the emitted
//! code (that is the point of the paper's per-transformation flags).
//!
//! Two properties matter once the server actually runs on multiple cores:
//!
//! * **Lock striping** — the cache is split into N shards, each guarding
//!   its own LRU with its own mutex, keyed by the hash of the cache key.
//!   Front-end threads looking up *different* patterns never contend on
//!   one global lock (the pre-sharding design serialized every lookup).
//! * **Miss coalescing** — two threads missing on the *same* key used to
//!   both run the full pass pipeline, with the loser's artifact discarded
//!   at insert. Now the first miss registers an in-flight ticket; racers
//!   wait on its condvar and receive the winner's [`Arc<Program>`], so
//!   each key is compiled exactly once no matter how many threads ask for
//!   it concurrently. A failed compile wakes all waiters, the first of
//!   which retries as the new leader — errors are per-caller and never
//!   cached.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use cicero_core::CompilerOptions;
use cicero_isa::Program;

/// Default shard count for [`ProgramCache::new`]. Fixed (rather than
/// derived from host parallelism) so cache behavior is identical on every
/// machine; 8 stripes are plenty for the worker counts the server runs.
pub const DEFAULT_SHARDS: usize = 8;

/// Cache key: what was asked to be compiled, plus how.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    kind: KeyKind,
    options: CompilerOptions,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyKind {
    /// A single pattern.
    Pattern(String),
    /// A multi-matching set (order matters: it determines the reported
    /// match identifiers).
    Set(Vec<String>),
}

impl CacheKey {
    /// Key for one pattern compiled with `options`.
    pub fn pattern(pattern: &str, options: CompilerOptions) -> CacheKey {
        CacheKey { kind: KeyKind::Pattern(pattern.to_owned()), options }
    }

    /// Key for a multi-matching set compiled with `options`.
    pub fn set<S: AsRef<str>>(patterns: &[S], options: CompilerOptions) -> CacheKey {
        CacheKey {
            kind: KeyKind::Set(patterns.iter().map(|p| p.as_ref().to_owned()).collect()),
            options,
        }
    }
}

/// Point-in-time cache statistics (aggregated over every shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Lookups that waited for another thread's in-flight compile of the
    /// same key instead of compiling themselves (also counted in `hits`).
    pub coalesced: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries (summed shard capacities).
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (1.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What an in-flight compile resolved to, from a waiter's point of view.
enum FlightOutcome {
    /// The leader published the program.
    Ready(Arc<Program>),
    /// The leader's build failed; the waiter should retry (and may become
    /// the new leader).
    Failed,
}

/// A ticket for one in-flight compilation: waiters block on the condvar
/// until the leader publishes a result.
struct InFlight {
    result: Mutex<Option<FlightOutcome>>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> Arc<InFlight> {
        Arc::new(InFlight { result: Mutex::new(None), ready: Condvar::new() })
    }

    fn publish(&self, outcome: FlightOutcome) {
        let mut slot = self.result.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(outcome);
        self.ready.notify_all();
    }

    fn wait(&self) -> FlightOutcome {
        let mut slot = self.result.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match slot.take() {
                Some(FlightOutcome::Ready(program)) => {
                    // Put it back for any other waiter still to wake.
                    *slot = Some(FlightOutcome::Ready(Arc::clone(&program)));
                    return FlightOutcome::Ready(program);
                }
                Some(FlightOutcome::Failed) => {
                    *slot = Some(FlightOutcome::Failed);
                    return FlightOutcome::Failed;
                }
                None => {
                    slot = self.ready.wait(slot).unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }
}

struct Inner {
    capacity: usize,
    entries: HashMap<CacheKey, Arc<Program>>,
    /// Keys in least-recently-used-first order.
    order: Vec<CacheKey>,
    /// Compilations currently running for keys in this shard.
    in_flight: HashMap<CacheKey, Arc<InFlight>>,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
}

struct Shard {
    inner: Mutex<Inner>,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            inner: Mutex::new(Inner {
                capacity,
                entries: HashMap::new(),
                order: Vec::new(),
                in_flight: HashMap::new(),
                hits: 0,
                misses: 0,
                coalesced: 0,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// What one shard lookup resolved to.
enum Lookup {
    /// Resident entry, recency refreshed.
    Hit(Arc<Program>),
    /// No entry and no in-flight compile; the caller is now the leader
    /// for this key and must compile and publish on the returned ticket.
    Lead(Arc<InFlight>),
    /// Another thread is compiling this key; wait on the ticket.
    Join(Arc<InFlight>),
}

/// A thread-safe, lock-striped LRU cache of compiled programs.
///
/// Shared by every worker and every front-end thread of a
/// [`Runtime`](crate::Runtime). Lookups take one short mutex hold on the
/// key's shard; compilation runs outside every lock, and concurrent
/// misses on the same key coalesce onto a single compile.
pub struct ProgramCache {
    shards: Vec<Shard>,
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ProgramCache")
            .field("shards", &self.shards.len())
            .field("entries", &stats.entries)
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl ProgramCache {
    /// An empty cache holding at most `capacity` programs (minimum 1),
    /// striped over [`DEFAULT_SHARDS`] shards (fewer when the capacity is
    /// smaller, so every shard can hold at least one entry).
    pub fn new(capacity: usize) -> ProgramCache {
        ProgramCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// An empty cache striped over exactly `shards` shards (clamped to
    /// `[1, capacity]` so each shard holds at least one entry). A
    /// single-shard cache behaves as one global LRU — exact global
    /// eviction order is only guaranteed with `shards == 1`, since a
    /// striped cache evicts per shard.
    pub fn with_shards(capacity: usize, shards: usize) -> ProgramCache {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        // Distribute the capacity as evenly as possible; the first
        // `capacity % shards` shards take the remainder.
        let base = capacity / shards;
        let extra = capacity % shards;
        ProgramCache {
            shards: (0..shards).map(|i| Shard::new(base + usize::from(i < extra))).collect(),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &CacheKey) -> &Shard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// One locked probe of the key's shard: hit, lead, or join.
    fn probe(&self, shard: &Shard, key: &CacheKey) -> Lookup {
        let mut inner = shard.lock();
        if let Some(program) = inner.entries.get(key).cloned() {
            inner.hits += 1;
            // Refresh recency: move the key to most-recent.
            inner.order.retain(|k| k != key);
            inner.order.push(key.clone());
            return Lookup::Hit(program);
        }
        if let Some(flight) = inner.in_flight.get(key).map(Arc::clone) {
            inner.hits += 1;
            inner.coalesced += 1;
            return Lookup::Join(flight);
        }
        inner.misses += 1;
        let flight = InFlight::new();
        inner.in_flight.insert(key.clone(), Arc::clone(&flight));
        Lookup::Lead(flight)
    }

    /// Look up `key`, or compile it with `build` and insert the result.
    ///
    /// Returns the program and whether the lookup was a hit (a lookup
    /// that coalesced onto another thread's in-flight compile counts as a
    /// hit: this caller ran no pass pipeline).
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is inserted on failure, and
    /// coalesced waiters retry (the first becoming the new leader) rather
    /// than inheriting the leader's error.
    pub fn get_or_insert_with<E>(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<Program, E>,
    ) -> Result<(Arc<Program>, bool), E> {
        let shard = self.shard_for(&key);
        let mut build = Some(build);
        loop {
            match self.probe(shard, &key) {
                Lookup::Hit(program) => return Ok((program, true)),
                Lookup::Join(flight) => match flight.wait() {
                    FlightOutcome::Ready(program) => return Ok((program, true)),
                    // The leader failed; loop back — this thread may now
                    // become the leader and compile with its own builder.
                    FlightOutcome::Failed => {}
                },
                Lookup::Lead(flight) => {
                    // Compile outside every lock: patterns can take a
                    // while and other shards (and other keys on this
                    // shard) must not serialize behind them.
                    let built = (build.take().expect("leader builds at most once"))();
                    let mut inner = shard.lock();
                    inner.in_flight.remove(&key);
                    match built {
                        Ok(program) => {
                            let program = Arc::new(program);
                            while inner.entries.len() >= inner.capacity {
                                let oldest = inner.order.remove(0);
                                inner.entries.remove(&oldest);
                                inner.evictions += 1;
                            }
                            inner.entries.insert(key.clone(), Arc::clone(&program));
                            inner.order.push(key.clone());
                            drop(inner);
                            flight.publish(FlightOutcome::Ready(Arc::clone(&program)));
                            return Ok((program, false));
                        }
                        Err(e) => {
                            drop(inner);
                            flight.publish(FlightOutcome::Failed);
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Current statistics, aggregated over every shard.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            let inner = shard.lock();
            stats.hits += inner.hits;
            stats.misses += inner.misses;
            stats.coalesced += inner.coalesced;
            stats.evictions += inner.evictions;
            stats.entries += inner.entries.len();
            stats.capacity += inner.capacity;
        }
        stats
    }

    /// Drop every resident entry (counters are kept; in-flight compiles
    /// are unaffected and will still publish to their waiters).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = shard.lock();
            inner.entries.clear();
            inner.order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cicero_isa::Instruction;

    fn tiny_program(ch: u8) -> Program {
        Program::from_instructions(vec![Instruction::Match(ch), Instruction::Accept]).unwrap()
    }

    fn key(pattern: &str) -> CacheKey {
        CacheKey::pattern(pattern, CompilerOptions::optimized())
    }

    #[test]
    fn second_lookup_hits_and_skips_the_builder() {
        let cache = ProgramCache::new(4);
        let (first, hit) =
            cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
        assert!(!hit);
        let (second, hit) =
            cache.get_or_insert_with::<()>(key("a"), || panic!("must not recompile")).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let cache = ProgramCache::new(4);
        let opt = CacheKey::pattern("a", CompilerOptions::optimized());
        let unopt = CacheKey::pattern("a", CompilerOptions::unoptimized());
        cache.get_or_insert_with::<()>(opt, || Ok(tiny_program(b'a'))).unwrap();
        let (_, hit) = cache.get_or_insert_with::<()>(unopt, || Ok(tiny_program(b'a'))).unwrap();
        assert!(!hit, "different options must not share an entry");
    }

    #[test]
    fn set_keys_are_order_sensitive_and_distinct_from_patterns() {
        let opts = CompilerOptions::optimized();
        assert_ne!(CacheKey::set(&["a", "b"], opts), CacheKey::set(&["b", "a"], opts));
        assert_ne!(CacheKey::set(&["a"], opts), CacheKey::pattern("a", opts));
    }

    #[test]
    fn shard_count_tracks_capacity_and_request() {
        assert_eq!(ProgramCache::new(128).shard_count(), DEFAULT_SHARDS);
        assert_eq!(ProgramCache::new(3).shard_count(), 3, "no shard may have zero capacity");
        assert_eq!(ProgramCache::new(1).shard_count(), 1);
        assert_eq!(ProgramCache::with_shards(16, 4).shard_count(), 4);
        assert_eq!(ProgramCache::with_shards(16, 0).shard_count(), 1);
        // Total capacity is preserved exactly, however it divides.
        assert_eq!(ProgramCache::with_shards(10, 4).stats().capacity, 10);
        assert_eq!(ProgramCache::new(0).stats().capacity, 1, "capacity clamps to >= 1");
    }

    #[test]
    fn striped_lookups_still_hit_regardless_of_shard() {
        let cache = ProgramCache::with_shards(64, 8);
        // Enough distinct keys that every shard very likely sees traffic.
        for i in 0..32u8 {
            let pattern = format!("p{i}");
            cache
                .get_or_insert_with::<()>(key(&pattern), || Ok(tiny_program(b'a' + (i % 26))))
                .unwrap();
        }
        for i in 0..32u8 {
            let pattern = format!("p{i}");
            let (_, hit) =
                cache.get_or_insert_with::<()>(key(&pattern), || panic!("cached")).unwrap();
            assert!(hit, "{pattern} must be resident");
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (32, 32, 32));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ProgramCache::with_shards(2, 1);
        cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
        cache.get_or_insert_with::<()>(key("b"), || Ok(tiny_program(b'b'))).unwrap();
        // Touch "a" so "b" becomes the LRU entry.
        cache.get_or_insert_with::<()>(key("a"), || panic!("cached")).unwrap();
        cache.get_or_insert_with::<()>(key("c"), || Ok(tiny_program(b'c'))).unwrap();
        let (_, hit_a) =
            cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
        assert!(hit_a, "recently used entry survived");
        let (_, hit_b) =
            cache.get_or_insert_with::<()>(key("b"), || Ok(tiny_program(b'b'))).unwrap();
        assert!(!hit_b, "LRU entry was evicted");
        assert_eq!(cache.stats().evictions, 2, "c evicted b, then b evicted c");
    }

    /// With a single slot, every distinct key evicts the previous entry,
    /// while repeated lookups of the resident key keep hitting. Also pins
    /// the constructor's clamp: capacity 0 still holds one entry.
    #[test]
    fn capacity_one_keeps_only_the_latest_entry() {
        for requested in [0usize, 1] {
            let cache = ProgramCache::new(requested);
            assert_eq!(cache.stats().capacity, 1, "capacity clamps to >= 1");
            cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
            let (_, hit) = cache.get_or_insert_with::<()>(key("a"), || panic!("cached")).unwrap();
            assert!(hit);
            // A second key evicts the first…
            cache.get_or_insert_with::<()>(key("b"), || Ok(tiny_program(b'b'))).unwrap();
            assert_eq!(cache.stats().entries, 1);
            let (_, hit) =
                cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
            assert!(!hit, "the single slot now holds `b`");
            // …and re-requesting the first evicts the second right back.
            let (_, hit) =
                cache.get_or_insert_with::<()>(key("b"), || Ok(tiny_program(b'b'))).unwrap();
            assert!(!hit);
            assert_eq!(cache.stats().evictions, 3);
        }
    }

    /// Evictions happen strictly in least-recently-*used* order — a hit
    /// refreshes recency, an insert counts as a use, and untouched entries
    /// leave in insertion order. (Single-shard: exact global LRU order is
    /// a per-shard property of the striped cache.)
    #[test]
    fn eviction_follows_exact_lru_order() {
        let cache = ProgramCache::with_shards(3, 1);
        for pattern in ["a", "b", "c"] {
            cache
                .get_or_insert_with::<()>(key(pattern), || Ok(tiny_program(pattern.as_bytes()[0])))
                .unwrap();
        }
        // Recency order is now a < b < c; touching `a` makes it b < c < a.
        cache.get_or_insert_with::<()>(key("a"), || panic!("cached")).unwrap();
        // Each insert evicts exactly the current LRU entry: d evicts b,
        // e evicts c.
        cache.get_or_insert_with::<()>(key("d"), || Ok(tiny_program(b'd'))).unwrap();
        cache.get_or_insert_with::<()>(key("e"), || Ok(tiny_program(b'e'))).unwrap();
        // Probe hits first: a missing probe inserts (and evicts), so the
        // resident keys must be confirmed before the evicted ones.
        for (pattern, resident) in
            [("a", true), ("d", true), ("e", true), ("b", false), ("c", false)]
        {
            let (_, hit) = cache
                .get_or_insert_with::<()>(key(pattern), || Ok(tiny_program(pattern.as_bytes()[0])))
                .unwrap();
            assert_eq!(hit, resident, "residency of {pattern:?}");
        }
    }

    /// A cached program is *the same artifact* as a fresh compile: equal
    /// instruction stream (the ISA types implement `Eq`) and identical
    /// encoded bytes. This is what makes the cache transparent to every
    /// downstream consumer.
    #[test]
    fn cache_hit_is_byte_identical_to_a_fresh_compile() {
        let pattern = "th(is|at|ose)|x[0-9]{2,4}$";
        let cache = ProgramCache::new(2);
        let compile = || {
            cicero_core::Compiler::with_options(CompilerOptions::optimized())
                .compile(pattern)
                .map(|c| c.into_program())
                .map_err(|e| e.to_string())
        };
        cache.get_or_insert_with(key(pattern), compile).unwrap();
        let (cached, hit) =
            cache.get_or_insert_with::<String>(key(pattern), || panic!("cached")).unwrap();
        assert!(hit);
        let fresh = compile().unwrap();
        assert_eq!(*cached, fresh, "instruction streams must be equal");
        assert_eq!(cached.instructions(), fresh.instructions());
        assert_eq!(
            cicero_isa::EncodedProgram::from_program(&cached).to_bytes(),
            cicero_isa::EncodedProgram::from_program(&fresh).to_bytes(),
            "encoded binaries must be byte-identical"
        );
    }

    #[test]
    fn build_errors_insert_nothing() {
        let cache = ProgramCache::new(2);
        let err = cache.get_or_insert_with(key("bad"), || Err("boom")).unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(cache.stats().entries, 0);
        let (_, hit) =
            cache.get_or_insert_with::<()>(key("bad"), || Ok(tiny_program(b'x'))).unwrap();
        assert!(!hit);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = ProgramCache::new(2);
        cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    /// The anti-stampede contract: N threads racing to a cold key run the
    /// builder exactly once; everyone gets the same `Arc` and the racers
    /// are accounted as coalesced hits.
    #[test]
    fn racing_misses_coalesce_onto_one_compile() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        const THREADS: usize = 8;
        let cache = Arc::new(ProgramCache::new(16));
        let builds = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(THREADS));
        let programs: Vec<Arc<Program>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let builds = Arc::clone(&builds);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let (program, _) = cache
                            .get_or_insert_with::<()>(key("stampede"), || {
                                builds.fetch_add(1, Ordering::SeqCst);
                                // Hold the in-flight window open long
                                // enough that the other threads arrive
                                // while the compile is still running.
                                std::thread::sleep(std::time::Duration::from_millis(50));
                                Ok(tiny_program(b's'))
                            })
                            .unwrap();
                        program
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one compilation per key");
        for program in &programs[1..] {
            assert!(Arc::ptr_eq(&programs[0], program), "all threads share one artifact");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, (THREADS - 1) as u64);
        assert!(stats.coalesced >= 1, "racers must be accounted as coalesced");
        assert_eq!(stats.entries, 1);
    }

    /// A failed leader does not strand its waiters: they wake, retry, and
    /// the first to re-probe becomes the new leader.
    #[test]
    fn waiters_recover_when_the_leader_fails() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let cache = Arc::new(ProgramCache::new(4));
        let attempts = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(2));
        let results: Vec<Result<bool, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let attempts = Arc::clone(&attempts);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        cache
                            .get_or_insert_with(key("fallible"), || {
                                let attempt = attempts.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(std::time::Duration::from_millis(30));
                                if attempt == 0 {
                                    Err("first compile fails".to_owned())
                                } else {
                                    Ok(tiny_program(b'f'))
                                }
                            })
                            .map(|(_, hit)| hit)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // One thread saw the error, the other (whichever order they
        // raced in) ended up with the program.
        let errors = results.iter().filter(|r| r.is_err()).count();
        let successes = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!((errors, successes), (1, 1), "{results:?}");
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
        let (_, hit) =
            cache.get_or_insert_with::<()>(key("fallible"), || panic!("cached")).unwrap();
        assert!(hit, "the successful retry must be resident");
    }
}
