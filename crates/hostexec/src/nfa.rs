//! Epsilon elimination: `cicero` ISA programs to a byte-predicate NFA.
//!
//! The lowering walks every non-consuming path (`Split`, `Jump`,
//! `NotMatch`) of the program once per entry PC, accumulating the byte
//! constraint the path imposes on the *current* input byte (`NotMatch(u)`
//! removes `u`; the other control instructions leave it alone). Reaching
//! a consuming instruction emits an epsilon-free transition; reaching an
//! acceptance emits an *accept arm* — a byte-conditional acceptance,
//! because an acceptance guarded by `NotMatch` fires only while a
//! permitted byte is current, and never at end of input (`NotMatch` kills
//! its thread there, so only constraint-free paths accept at EOI).
//!
//! States are keyed by `(target PC, path predicate)`. Keeping the
//! predicate in the state identity restores the Glushkov property the
//! bit-parallel step relies on: every path *into* a state agrees on the
//! byte predicate, so one shared table `enter[class]` can gate the whole
//! next-state set with a single AND.
//!
//! The closure is memoized per PC (the constraint always restarts at the
//! full alphabet after a byte is consumed) and budgeted: a pathological
//! `NotMatch` lattice that would explode the `(pc, constraint)` space
//! aborts the lowering, and the caller falls back to the reference
//! interpreter instead of miscompiling.

use std::collections::{HashMap, HashSet};

use cicero_isa::{Instruction, Program};

use crate::bytes::ByteSet;

/// One byte-conditional acceptance attached to a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AcceptArm {
    /// `AcceptPartialId` identifier; `None` for `Accept`/`AcceptPartial`.
    pub id: Option<u16>,
    /// Current bytes under which the arm fires mid-input.
    pub bytes: ByteSet,
    /// Whether the arm fires at end of input (only constraint-free paths
    /// do — any `NotMatch` on the path dies at EOI).
    pub eoi: bool,
}

/// The epsilon-free automaton. State 0 is the start configuration (active
/// only at position 0, entry predicate empty so it is never re-entered);
/// every other state is one `(pc, predicate)` group.
#[derive(Debug, Clone)]
pub(crate) struct Nfa {
    /// Entry byte predicate per state.
    pub preds: Vec<ByteSet>,
    /// Consuming successors per state (deduplicated, discovery order
    /// normalized by sorting — the engines are order-insensitive).
    pub follow: Vec<Vec<u32>>,
    /// Accept arms per state, merged by identifier.
    pub arms: Vec<Vec<AcceptArm>>,
}

/// Cap on closure work (distinct `(pc, constraint)` pairs visited across
/// the whole lowering). Real compiler output is linear in the program;
/// only adversarial `NotMatch`/`Split` lattices approach this.
const CLOSURE_BUDGET: usize = 1 << 18;

/// Lower `program`; `None` when the closure budget is exhausted (caller
/// falls back to the interpreter).
pub(crate) fn lower(program: &Program) -> Option<Nfa> {
    let mut builder = Builder {
        program,
        groups: Vec::new(),
        group_ids: HashMap::new(),
        closures: HashMap::new(),
        budget: CLOSURE_BUDGET,
    };
    let start = builder.close(0)?;
    // Closing a PC discovers new groups whose PCs need closures of their
    // own; `groups` only ever grows, so this is a worklist.
    let mut next_group = 0;
    while next_group < builder.groups.len() {
        let pc = builder.groups[next_group].0;
        builder.close(pc)?;
        next_group += 1;
    }

    let n = builder.groups.len() + 1;
    let mut nfa = Nfa {
        preds: Vec::with_capacity(n),
        follow: Vec::with_capacity(n),
        arms: Vec::with_capacity(n),
    };
    nfa.preds.push(ByteSet::EMPTY);
    nfa.follow.push(start.follow);
    nfa.arms.push(start.arms);
    for &(pc, pred) in &builder.groups {
        let closure = &builder.closures[&pc];
        nfa.preds.push(pred);
        nfa.follow.push(closure.follow.clone());
        nfa.arms.push(closure.arms.clone());
    }
    Some(nfa)
}

#[derive(Debug, Clone)]
struct Closure {
    /// Group states reachable through one consumed byte, as NFA state ids
    /// (group index + 1).
    follow: Vec<u32>,
    arms: Vec<AcceptArm>,
}

struct Builder<'p> {
    program: &'p Program,
    /// Discovered `(pc, predicate)` groups; NFA state id = index + 1.
    groups: Vec<(u16, ByteSet)>,
    group_ids: HashMap<(u16, ByteSet), u32>,
    /// Memoized closures per entry PC (always explored from the full
    /// alphabet — the constraint resets after each consumed byte).
    closures: HashMap<u16, Closure>,
    budget: usize,
}

impl Builder<'_> {
    fn close(&mut self, entry: u16) -> Option<Closure> {
        if let Some(closure) = self.closures.get(&entry) {
            return Some(closure.clone());
        }
        let mut follow: Vec<u32> = Vec::new();
        let mut arms: Vec<AcceptArm> = Vec::new();
        let mut seen: HashSet<(u16, ByteSet)> = HashSet::new();
        let mut stack: Vec<(u16, ByteSet)> = vec![(entry, ByteSet::FULL)];
        while let Some((pc, constraint)) = stack.pop() {
            if !seen.insert((pc, constraint)) {
                continue;
            }
            self.budget = self.budget.checked_sub(1)?;
            match self.program.get(pc).expect("validated program") {
                Instruction::Match(expected) => {
                    if constraint.contains(expected) {
                        follow.push(self.group(pc + 1, ByteSet::single(expected)));
                    }
                }
                Instruction::MatchAny => {
                    follow.push(self.group(pc + 1, constraint));
                }
                Instruction::NotMatch(unexpected) => {
                    let narrowed = constraint.without(unexpected);
                    if !narrowed.is_empty() {
                        stack.push((pc + 1, narrowed));
                    }
                }
                Instruction::Split(target) => {
                    stack.push((pc + 1, constraint));
                    stack.push((target, constraint));
                }
                Instruction::Jump(target) => {
                    stack.push((target, constraint));
                }
                Instruction::Accept => {
                    if constraint.is_full() {
                        arms.push(AcceptArm { id: None, bytes: ByteSet::EMPTY, eoi: true });
                    }
                }
                Instruction::AcceptPartial => {
                    arms.push(AcceptArm { id: None, bytes: constraint, eoi: constraint.is_full() });
                }
                Instruction::AcceptPartialId(id) => {
                    arms.push(AcceptArm {
                        id: Some(id),
                        bytes: constraint,
                        eoi: constraint.is_full(),
                    });
                }
            }
        }
        follow.sort_unstable();
        follow.dedup();
        let closure = Closure { follow, arms: merge_arms(arms) };
        self.closures.insert(entry, closure.clone());
        Some(closure)
    }

    fn group(&mut self, pc: u16, pred: ByteSet) -> u32 {
        if let Some(&id) = self.group_ids.get(&(pc, pred)) {
            return id + 1;
        }
        let id = self.groups.len() as u32;
        self.groups.push((pc, pred));
        self.group_ids.insert((pc, pred), id);
        id + 1
    }
}

/// Merge arms that report the same identifier: union the byte conditions,
/// OR the EOI flags. One arm per identifier keeps the engines' per-arm
/// bookkeeping proportional to the pattern-set size, not the path count.
fn merge_arms(arms: Vec<AcceptArm>) -> Vec<AcceptArm> {
    let mut merged: Vec<AcceptArm> = Vec::new();
    for arm in arms {
        if let Some(existing) = merged.iter_mut().find(|a| a.id == arm.id) {
            existing.bytes = existing.bytes.union(arm.bytes);
            existing.eoi |= arm.eoi;
        } else {
            merged.push(arm);
        }
    }
    // Deterministic arm order: unidentified acceptance first, then ids
    // ascending (this is also the `matched_id` resolution order).
    merged.sort_by_key(|arm| arm.id.map_or(-1i32, i32::from));
    merged
}

/// Prefix factoring: merge states that are provably *co-active*.
///
/// Two states with the same entry predicate and the same incoming source
/// set are activated under exactly the same conditions (induction over
/// input positions), so replacing them with one state carrying the union
/// of their follow sets and arms changes nothing observable. On
/// `compile_set` programs this folds the duplicated per-member scan loops
/// and shared literal prefixes (`abcd|abce|…`) into one spine, shrinking
/// the automaton — often below the 64-state line that selects the fastest
/// engine. Unreachable states are pruned on the way. Runs to fixpoint:
/// each round either merges/prunes something (state count strictly
/// drops) or stops.
pub(crate) fn factor(nfa: &mut Nfa) {
    loop {
        let n = nfa.preds.len();
        let mut incoming: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (source, follows) in nfa.follow.iter().enumerate() {
            for &target in follows {
                incoming[target as usize].push(source as u32);
            }
        }
        for sources in &mut incoming {
            sources.sort_unstable();
            sources.dedup();
        }

        // alias[s] = the representative s collapses into (itself if kept);
        // u32::MAX marks an unreachable state scheduled for pruning.
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut repr: HashMap<(ByteSet, Vec<u32>), u32> = HashMap::new();
        let mut changed = false;
        for state in 1..n {
            if incoming[state].is_empty() {
                alias[state] = u32::MAX;
                changed = true;
                continue;
            }
            let key = (nfa.preds[state], incoming[state].clone());
            match repr.entry(key) {
                std::collections::hash_map::Entry::Occupied(entry) => {
                    alias[state] = *entry.get();
                    changed = true;
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(state as u32);
                }
            }
        }
        if !changed {
            return;
        }

        // Fold merged states into their representatives.
        for (state, &target) in alias.iter().enumerate().take(n).skip(1) {
            if target == state as u32 || target == u32::MAX {
                continue;
            }
            let follows = std::mem::take(&mut nfa.follow[state]);
            nfa.follow[target as usize].extend(follows);
            let arms = std::mem::take(&mut nfa.arms[state]);
            let mut merged = std::mem::take(&mut nfa.arms[target as usize]);
            merged.extend(arms);
            nfa.arms[target as usize] = merge_arms(merged);
        }

        // Renumber the kept states and rewrite every follow edge through
        // the alias map.
        let mut renumber: Vec<u32> = vec![u32::MAX; n];
        let mut kept = 0u32;
        for state in 0..n {
            if alias[state] == state as u32 {
                renumber[state] = kept;
                kept += 1;
            }
        }
        let mut next = Nfa {
            preds: Vec::with_capacity(kept as usize),
            follow: Vec::with_capacity(kept as usize),
            arms: Vec::with_capacity(kept as usize),
        };
        for state in 0..n {
            if alias[state] != state as u32 {
                continue;
            }
            let mut follows: Vec<u32> = nfa.follow[state]
                .iter()
                .filter_map(|&t| {
                    let target = alias[t as usize];
                    (target != u32::MAX).then(|| renumber[target as usize])
                })
                .collect();
            follows.sort_unstable();
            follows.dedup();
            next.preds.push(nfa.preds[state]);
            next.follow.push(follows);
            next.arms.push(std::mem::take(&mut nfa.arms[state]));
        }
        *nfa = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cicero_isa::Instruction::*;

    fn lowered(instructions: Vec<Instruction>) -> Nfa {
        let program = Program::from_instructions(instructions).unwrap();
        lower(&program).expect("lowering within budget")
    }

    #[test]
    fn anchored_literal_is_a_chain() {
        // `^ab$`
        let nfa = lowered(vec![Match(b'a'), Match(b'b'), Accept]);
        assert_eq!(nfa.preds.len(), 3);
        assert_eq!(nfa.follow[0], vec![1]);
        assert!(nfa.preds[1].contains(b'a') && nfa.preds[1].len() == 1);
        assert_eq!(nfa.follow[1], vec![2]);
        // The accepting state fires only at EOI (plain `Accept`).
        assert_eq!(nfa.arms[2].len(), 1);
        assert!(nfa.arms[2][0].eoi && nfa.arms[2][0].bytes.is_empty());
    }

    #[test]
    fn notmatch_guards_narrow_acceptance() {
        // `[^ab]c`-ish shape: NotMatch a; NotMatch b; MatchAny; AcceptPartial
        let nfa = lowered(vec![NotMatch(b'a'), NotMatch(b'b'), MatchAny, AcceptPartial]);
        // Start consumes one byte under the narrowed predicate.
        assert_eq!(nfa.follow[0].len(), 1);
        let state = nfa.follow[0][0] as usize;
        assert!(!nfa.preds[state].contains(b'a'));
        assert!(!nfa.preds[state].contains(b'b'));
        assert!(nfa.preds[state].contains(b'c'));
        // The arm on the consumed state is unconditional (the guard was on
        // the previous position) and fires at EOI too.
        assert!(nfa.arms[state][0].bytes.is_full() && nfa.arms[state][0].eoi);
    }

    #[test]
    fn notmatch_guarded_acceptance_never_fires_at_eoi() {
        // Match x; NotMatch a; AcceptPartial — accepting only while a
        // non-`a` byte is current.
        let nfa = lowered(vec![Match(b'x'), NotMatch(b'a'), AcceptPartial]);
        let state = nfa.follow[0][0] as usize;
        let arm = &nfa.arms[state][0];
        assert!(!arm.eoi, "NotMatch kills the thread at end of input");
        assert!(!arm.bytes.contains(b'a') && arm.bytes.contains(b'b'));
    }

    #[test]
    fn split_loops_close_within_budget() {
        // Pathological `(a*)*` loop shape closes fine (dedup on (pc, set)).
        let nfa = lowered(vec![Split(2), Jump(0), Match(b'a'), Jump(0), Accept]);
        assert!(nfa.preds.len() >= 2);
    }

    #[test]
    fn factoring_merges_shared_prefixes() {
        // `^(ab|ac)$` written as two duplicated branches: the two `a`
        // states have identical predicate + incoming and must merge.
        let mut nfa = lowered(vec![
            Split(4),
            Match(b'a'),
            Match(b'b'),
            Jump(7),
            Match(b'a'),
            Match(b'c'),
            Jump(7),
            Accept,
        ]);
        let before = nfa.preds.len();
        factor(&mut nfa);
        assert!(nfa.preds.len() < before, "shared `a` prefix must fold");
        // Exactly one state is entered on `a`.
        let a_states = nfa.preds.iter().filter(|p| p.contains(b'a') && p.len() == 1).count();
        assert_eq!(a_states, 1);
    }

    #[test]
    fn factoring_prunes_unreachable_states() {
        // Match(z) at PC 3 is reachable only through Match(a)'s successor;
        // shape chosen so pruning has something to do after merging.
        let mut nfa = lowered(vec![Match(b'a'), Match(b'b'), AcceptPartial, Accept]);
        factor(&mut nfa);
        for follows in &nfa.follow {
            for &t in follows {
                assert!((t as usize) < nfa.preds.len());
            }
        }
    }
}
