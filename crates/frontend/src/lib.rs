//! Regular-expression front-end: parsing text patterns into an AST.
//!
//! The paper's compiler front-end uses ANTLR4 for "syntax and grammar
//! checking, ensuring that input REs are well-formed and employ only
//! supported operations", producing an AST that the `regex` dialect is then
//! built from (§3). This crate replaces ANTLR with a hand-written
//! recursive-descent parser over the same grammar:
//!
//! ```text
//! regex        := '^'? alternation '$'?
//! alternation  := concatenation ('|' concatenation)*
//! concatenation:= piece*
//! piece        := atom quantifier?
//! atom         := literal | '.' | class | '(' alternation ')'
//! quantifier   := '*' | '+' | '?' | '{' INT (',' INT?)? '}'
//! class        := '[' '^'? (char | char '-' char | escape)+ ']'
//! ```
//!
//! Supported escapes: `\n \t \r \0 \xNN`, identity escapes for all
//! metacharacters, and the perl classes `\d \D \w \W \s \S` (sugar for
//! character classes).
//!
//! A leading `^` disables the implicit `.*` prefix and a trailing `$`
//! disables the implicit `.*` suffix, exactly as the paper describes for
//! `RootOp`'s `hasPrefix`/`hasSuffix` arguments.
//!
//! # Example
//!
//! ```
//! let ast = regex_frontend::parse("(ab)|c{3,6}d+")?;
//! assert!(ast.has_prefix && ast.has_suffix);
//! assert_eq!(ast.alternation.alternatives.len(), 2);
//! # Ok::<(), regex_frontend::ParseRegexError>(())
//! ```

pub mod ast;
pub mod parser;

pub use ast::{Alternation, Atom, ClassSet, Concatenation, Piece, Quantifier, RegexAst, Span};
pub use parser::{parse, ParseRegexError};
