//! The equivalence matrix: one (pattern, input) case fanned out over
//! every execution cell, with a precise description of the first
//! disagreement.
//!
//! Cells per case:
//!
//! * the reference Pike VM ([`regex_oracle::Oracle`]) — ground truth for
//!   `is_match` and the earliest match end;
//! * the functional ISA interpreter over the compiled program at `O0`
//!   (all optimizations off) and `O2` (all on) — must reproduce both the
//!   verdict and the earliest end exactly;
//! * the cycle-level simulator over both programs on every configuration
//!   in [`sim_matrix`] (the single-core reference at `CC_ID` 3, the
//!   two-engine ring, plus multi-core organizations at `CC_ID` 1 and 2) —
//!   must reproduce the verdict and report a member of
//!   [`Oracle::match_ends`]. Even the single-core configuration races in
//!   hardware time (S2→S2 forwarding lets one NFA path run ahead of
//!   queued threads at earlier positions), so *every* simulator cell has
//!   any-match semantics — the ruling pinned in
//!   `tests/match_end_semantics.rs`;
//! * batch level: [`simulate_batch_parallel`] at 1/2/4 workers must be
//!   byte-identical to the sequential [`simulate_batch`], and the
//!   [`Runtime`]'s cached path must reproduce the same reports.

use cicero_core::{CompileError, Compiler, CompilerOptions};
use cicero_isa::Program;
use cicero_sim::{simulate, simulate_batch, simulate_batch_parallel, ArchConfig};
use regex_oracle::Oracle;

/// Worker counts exercised at batch level.
pub const PARALLEL_JOBS: [usize; 3] = [1, 2, 4];

/// One concrete disagreement between two cells of the matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The cell that disagreed (e.g. `interp/O2`, `sim/O0/NEW 4x1 CORES`).
    pub cell: String,
    /// Human-readable got-vs-want description.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.cell, self.detail)
    }
}

/// The outcome of checking one case (or one whole input set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every cell agreed.
    Pass,
    /// The case could not be run (capacity limits, unparseable pattern);
    /// not a divergence.
    Skip(String),
    /// Two cells disagreed.
    Diverged(Divergence),
}

impl Outcome {
    /// Whether this outcome is a divergence.
    pub fn diverged(&self) -> bool {
        matches!(self, Outcome::Diverged(_))
    }
}

/// The simulator configurations every case runs on.
///
/// Spans every *viable* `CC_ID` from 1 to 3: the single-core reference,
/// the two-engine ring of the old organization, and the
/// in-engine-parallel new organizations at `CC_ID` 1/2.
///
/// `CC_ID = 0` is deliberately absent: a one-character window can never
/// accept a consuming match's successor, so the FIFO window deadlocks by
/// construction — the simulator rejects such configs (see
/// `cicero_sim::Machine::new`).
pub fn sim_matrix() -> Vec<ArchConfig> {
    vec![
        ArchConfig::old_organization(1),
        ArchConfig::old_organization(2),
        ArchConfig::new_organization(2, 1),
        ArchConfig::new_organization(4, 1),
        ArchConfig::new_organization(4, 2),
    ]
}

/// A pattern compiled for every cell: the oracle plus both optimization
/// levels of the multi-dialect compiler.
pub struct PatternUnderTest {
    /// The pattern text.
    pub pattern: String,
    /// The reference matcher.
    pub oracle: Oracle,
    /// `("O0"|"O2", program)` pairs.
    pub programs: Vec<(&'static str, Program)>,
}

impl PatternUnderTest {
    /// Parse and compile `pattern` at both levels.
    ///
    /// # Errors
    ///
    /// Returns [`Outcome::Skip`] for patterns the front-end rejects or
    /// that exceed capacity limits (instruction memory), and
    /// [`Outcome::Diverged`] when compilation fails for any *other*
    /// reason — a pass error on a parseable pattern is a compiler bug.
    pub fn build(pattern: &str) -> Result<PatternUnderTest, Outcome> {
        let ast = regex_frontend::parse(pattern)
            .map_err(|e| Outcome::Skip(format!("unparseable pattern: {e}")))?;
        let oracle = Oracle::from_ast(&ast);
        let mut programs = Vec::with_capacity(2);
        for (level, options) in
            [("O0", CompilerOptions::unoptimized()), ("O2", CompilerOptions::optimized())]
        {
            match Compiler::with_options(options).compile(pattern) {
                Ok(compiled) => programs.push((level, compiled.into_program())),
                Err(CompileError::Codegen(e)) => {
                    return Err(Outcome::Skip(format!("{level} exceeds capacity: {e}")))
                }
                Err(e) => {
                    return Err(Outcome::Diverged(Divergence {
                        cell: format!("compile/{level}"),
                        detail: format!("compilation failed on a parseable pattern: {e}"),
                    }))
                }
            }
        }
        Ok(PatternUnderTest { pattern: pattern.to_owned(), oracle, programs })
    }
}

/// Run one input through every per-input cell of the matrix.
pub fn check_case(put: &PatternUnderTest, input: &[u8]) -> Outcome {
    let want = put.oracle.is_match(input);
    let want_end = put.oracle.match_end(input);
    let valid_ends = put.oracle.match_ends(input);

    for (level, program) in &put.programs {
        let out = cicero_isa::run(program, input);
        if out.accepted != want {
            return diverged(
                format!("interp/{level}"),
                format!("is_match = {}, oracle says {want}", out.accepted),
                put,
                input,
            );
        }
        if out.match_position != want_end {
            return diverged(
                format!("interp/{level}"),
                format!("match_end = {:?}, oracle says {want_end:?}", out.match_position),
                put,
                input,
            );
        }
        for config in sim_matrix() {
            let report = simulate(program, input, &config);
            let cell = format!("sim/{level}/{}/cc{}", config.name(), config.cc_id_bits);
            if report.hit_cycle_limit {
                return diverged(cell, "hit the cycle limit".to_owned(), put, input);
            }
            if report.accepted != want {
                return diverged(
                    cell,
                    format!("is_match = {}, oracle says {want}", report.accepted),
                    put,
                    input,
                );
            }
            match report.match_position {
                Some(end) if !valid_ends.contains(&end) => {
                    return diverged(
                        cell,
                        format!("match_end = {end} is not a valid end ({valid_ends:?})"),
                        put,
                        input,
                    );
                }
                None if want => {
                    return diverged(
                        cell,
                        "accepted without a match position".to_owned(),
                        put,
                        input,
                    );
                }
                _ => {}
            }
        }
    }
    Outcome::Pass
}

/// Batch-level determinism: parallel enumeration over the worker pool must
/// be observationally identical to sequential execution, and the runtime's
/// cached path must serve byte-identical reports.
pub fn check_batch(put: &PatternUnderTest, inputs: &[Vec<u8>]) -> Outcome {
    if inputs.is_empty() {
        return Outcome::Pass;
    }
    let config = ArchConfig::new_organization(4, 1);
    for (level, program) in &put.programs {
        let sequential = simulate_batch(program, inputs, &config);
        for jobs in PARALLEL_JOBS {
            let parallel = simulate_batch_parallel(program, inputs, &config, jobs);
            if parallel != sequential {
                let detail = first_report_difference(&sequential, &parallel, jobs);
                return diverged(format!("parallel/{level}/jobs{jobs}"), detail, put, &[]);
            }
        }
    }
    Outcome::Pass
}

fn first_report_difference(
    sequential: &[cicero_sim::ExecReport],
    parallel: &[cicero_sim::ExecReport],
    jobs: usize,
) -> String {
    for (i, (s, p)) in sequential.iter().zip(parallel).enumerate() {
        if s != p {
            return format!(
                "input {i} differs at {jobs} workers: sequential {s:?}, parallel {p:?}"
            );
        }
    }
    format!("report count differs: {} sequential vs {} parallel", sequential.len(), parallel.len())
}

/// The full check for one pattern and its input set: every per-input cell
/// plus the batch-level determinism cells. First divergence wins.
pub fn check_all(pattern: &str, inputs: &[Vec<u8>]) -> Outcome {
    let put = match PatternUnderTest::build(pattern) {
        Ok(put) => put,
        Err(outcome) => return outcome,
    };
    for input in inputs {
        if let Outcome::Diverged(d) = check_case(&put, input) {
            return Outcome::Diverged(d);
        }
    }
    check_batch(&put, inputs)
}

fn diverged(cell: String, detail: String, put: &PatternUnderTest, input: &[u8]) -> Outcome {
    let _ = (put, input); // context lives in the reproducer, not the cell
    Outcome::Diverged(Divergence { cell, detail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_patterns_pass_the_whole_matrix() {
        for pattern in [
            "ab|cd",
            "^(a*)*b$",
            "x(a?|a*)y",
            "[^ab]c",
            "th(is|at|ose)",
            "a{2,4}b?$",
            "ab|",
            "\\xff\\x80*",
        ] {
            let inputs: Vec<Vec<u8>> = vec![
                b"".to_vec(),
                b"ab".to_vec(),
                b"xxaayy".to_vec(),
                b"zcz".to_vec(),
                vec![0xff, 0x80, 0x80],
                vec![b'a'; 40],
            ];
            let outcome = check_all(pattern, &inputs);
            assert_eq!(outcome, Outcome::Pass, "{pattern:?}: {outcome:?}");
        }
    }

    #[test]
    fn unparseable_patterns_skip() {
        assert!(matches!(check_all("(", &[]), Outcome::Skip(_)));
        assert!(matches!(check_all("a{9999}{9999}", &[]), Outcome::Skip(_)));
    }

    #[test]
    fn matrix_spans_every_viable_cc_id() {
        let ccs: Vec<u32> = sim_matrix().iter().map(|c| c.cc_id_bits).collect();
        for cc in 1..=3 {
            assert!(ccs.contains(&cc), "matrix misses CC_ID {cc}: {ccs:?}");
        }
        // Exactly one single-core reference cell.
        assert_eq!(sim_matrix().iter().filter(|c| c.total_cores() == 1).count(), 1);
    }

    #[test]
    fn a_wrong_verdict_is_reported_as_a_divergence() {
        // Hand-build a PatternUnderTest whose program is miscompiled: the
        // pattern `ab` paired with a program for `ac`.
        let put = PatternUnderTest {
            pattern: "ab".to_owned(),
            oracle: Oracle::new("ab").unwrap(),
            programs: vec![("O2", cicero_core::compile("ac").unwrap().into_program())],
        };
        let outcome = check_case(&put, b"zzabzz");
        match outcome {
            Outcome::Diverged(d) => assert!(d.cell.starts_with("interp/"), "{d}"),
            other => panic!("miscompile not caught: {other:?}"),
        }
    }
}
