//! One point in the compiler × architecture search space.
//!
//! [`TuneConfig`] bundles every knob the tuner may move. It is `Copy +
//! Hash + Eq` end to end so the searcher can memoize evaluations keyed by
//! `(workload fingerprint, config)` with no serialization step — which is
//! also why the simulated-architecture axis is expressed as the hashable
//! [`ArchParams`] rather than `cicero_sim::ArchConfig` (whose `lb_*` and
//! safety-valve fields are not part of the search and are re-derived on
//! conversion).

use cicero_core::CompilerOptions;
use cicero_hostexec::HostTiers;
use cicero_sim::{ArchConfig, CacheConfig, Organization};

/// The architectural organization axis, mirroring
/// [`cicero_sim::Organization`] (kept separate so this crate's config
/// types are self-contained in `tune.toml` serialization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrganizationKind {
    /// Original Cicero: one time-multiplexed core per engine.
    Old,
    /// Proposed organization: `2^CC_ID` cores per engine.
    New,
}

impl OrganizationKind {
    /// The `tune.toml` spelling.
    pub fn token(self) -> &'static str {
        match self {
            OrganizationKind::Old => "old",
            OrganizationKind::New => "new",
        }
    }

    /// Parse the `tune.toml` spelling.
    pub fn from_token(token: &str) -> Option<OrganizationKind> {
        match token {
            "old" => Some(OrganizationKind::Old),
            "new" => Some(OrganizationKind::New),
            _ => None,
        }
    }
}

/// The searched subset of the simulated machine's parameters (§4's
/// organization and CC_ID, §5's icache geometry, plus engine count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchParams {
    /// Old (1 core/engine) vs new (`2^CC_ID` cores/engine) organization.
    pub organization: OrganizationKind,
    /// Cores per engine: 1 for old, a power of two ≥ 2 for new.
    pub cores_per_engine: usize,
    /// Engine count (ring topology when > 1).
    pub engines: usize,
    /// `CC_ID`: the character window holds `2^CC_ID` bytes.
    pub cc_id_bits: u32,
    /// Per-core icache lines.
    pub cache_lines: usize,
    /// Instructions per icache line (power of two).
    pub cache_line_size: usize,
    /// Line-fill service time in cycles.
    pub cache_miss_penalty: u64,
}

impl Default for ArchParams {
    /// The CLI's default machine: `NEW 16x1 CORES` with the paper's
    /// default cache geometry.
    fn default() -> ArchParams {
        ArchParams::from_arch_config(&ArchConfig::new_organization(16, 1))
    }
}

impl ArchParams {
    /// Project the searched parameters out of a full [`ArchConfig`].
    pub fn from_arch_config(config: &ArchConfig) -> ArchParams {
        ArchParams {
            organization: match config.organization {
                Organization::Old => OrganizationKind::Old,
                Organization::New => OrganizationKind::New,
            },
            cores_per_engine: config.cores_per_engine,
            engines: config.engines,
            cc_id_bits: config.cc_id_bits,
            cache_lines: config.cache.lines,
            cache_line_size: config.cache.line_size,
            cache_miss_penalty: config.cache.miss_penalty,
        }
    }

    /// Expand into a full simulator config. Non-searched fields take the
    /// presets' values (`lb_latency` 2, `lb_threshold` 0, dedup on, the
    /// standard cycle safety valve).
    pub fn to_arch_config(self) -> ArchConfig {
        let mut config = match self.organization {
            OrganizationKind::Old => ArchConfig::old_organization(self.engines),
            OrganizationKind::New => {
                ArchConfig::new_organization(self.cores_per_engine, self.engines)
            }
        };
        config.cc_id_bits = self.cc_id_bits;
        config.cache = CacheConfig {
            lines: self.cache_lines,
            line_size: self.cache_line_size,
            miss_penalty: self.cache_miss_penalty,
        };
        config
    }

    /// The paper's display name for the expanded machine.
    pub fn name(self) -> String {
        self.to_arch_config().name()
    }
}

/// Everything the tuner may decide: compiler toggles + pass order, the
/// simulated machine, host-backend engine tiers, and runtime knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuneConfig {
    /// Compiler configuration (includes [`pass_order`]).
    ///
    /// [`pass_order`]: CompilerOptions::pass_order
    pub compiler: CompilerOptions,
    /// Simulated-architecture parameters.
    pub arch: ArchParams,
    /// Host-backend engine-tier thresholds.
    pub host: HostTiers,
    /// Runtime worker threads (0 = all host cores).
    pub jobs: usize,
    /// Program-cache lock stripes (0 = the runtime default).
    pub cache_shards: usize,
}

impl Default for TuneConfig {
    /// The built-in defaults every other layer uses — the baseline every
    /// tuning run must beat or match.
    fn default() -> TuneConfig {
        TuneConfig {
            compiler: CompilerOptions::optimized(),
            arch: ArchParams::default(),
            host: HostTiers::default(),
            jobs: 0,
            cache_shards: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_params_round_trip_through_arch_config() {
        for config in [
            ArchConfig::old_organization(4),
            ArchConfig::new_organization(8, 2),
            ArchConfig::new_organization(16, 1),
        ] {
            let params = ArchParams::from_arch_config(&config);
            assert_eq!(params.to_arch_config(), config, "{}", config.name());
        }
    }

    #[test]
    fn default_config_matches_the_stack_defaults() {
        let config = TuneConfig::default();
        assert_eq!(config.compiler, CompilerOptions::optimized());
        assert_eq!(config.arch.name(), "NEW 16x1 CORES");
        assert_eq!(config.host, HostTiers::default());
    }

    #[test]
    fn tune_config_is_usable_as_a_hash_key() {
        let mut map = std::collections::HashMap::new();
        map.insert(TuneConfig::default(), 1u32);
        assert_eq!(map.get(&TuneConfig::default()), Some(&1));
    }
}
