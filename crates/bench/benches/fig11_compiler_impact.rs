//! **Figure 11** — compiler impact on the *old* architecture (9 and 16
//! engines): average execution time per RE with old-compiled vs
//! new-compiled code.
//!
//! Reproduction target: the new compiler alone yields ~1.7x on
//! Protomata(4) and ~1.2x on Brill(4), purely from better code locality.

use cicero_bench::{banner, f2, measure, paper, suites, CompiledSuite, Scale, Table};
use cicero_sim::ArchConfig;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 11", "compiler impact on the old architecture (avg us per RE)", scale);
    let mut table =
        Table::new(vec!["suite", "arch", "old compiler", "new compiler", "speedup", "(paper)"]);
    for (i, bench) in suites(scale).iter().enumerate() {
        let s = CompiledSuite::build(bench);
        for engines in [9usize, 16] {
            let config = ArchConfig::old_organization(engines);
            let old = measure(&s.old_opt, &s.chunks, &config);
            let new = measure(&s.new_opt, &s.chunks, &config);
            table.row(vec![
                s.name.to_owned(),
                config.name(),
                f2(old.avg_time_us),
                f2(new.avg_time_us),
                f2(old.avg_time_us / new.avg_time_us),
                format!("(~{})", f2(paper::FIG11_SPEEDUP[i])),
            ]);
        }
    }
    table.print();
}
