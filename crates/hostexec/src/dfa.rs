//! Lazy-DFA fallback for automata too large for one machine word.
//!
//! Above 128 states the bit-parallel step would need multi-word masks;
//! instead the engine runs a classic lazy subset construction over the
//! same epsilon-free NFA: DFA states are sorted NFA state sets, memoized
//! on demand, with per-byte-class transitions filled in the first time a
//! class is seen from a state. Acceptance (a class bitset + an EOI flag)
//! is computed once per DFA state; identifier resolution walks the sparse
//! per-arm entries only when an acceptance actually fires.
//!
//! The state table is bounded: hitting [`DFA_STATE_CAP`] flushes the memo
//! (keeping only the in-flight target) rather than growing without limit,
//! so adversarial inputs cost re-derivation time, never memory. The cache
//! lives inside the matcher — per run, per thread — so the engine itself
//! stays `Sync` without interior mutability.

use std::collections::HashMap;

use crate::bytes::ByteSet;
use crate::engine::{byte_classes, Classes};
use crate::nfa::Nfa;
use crate::{HostAllOutcome, HostOutcome};

/// Maximum materialized DFA states before the memo is flushed.
const DFA_STATE_CAP: usize = 4096;

/// Transition sentinel: not yet computed.
const UNKNOWN: u32 = u32::MAX;
/// Transition sentinel: dead (empty state set).
const DEAD: u32 = u32::MAX - 1;

fn class_words(count: usize) -> usize {
    count.div_ceil(64)
}

fn bit_set(words: &mut [u64], index: usize) {
    words[index / 64] |= 1u64 << (index % 64);
}

fn bit_get(words: &[u64], index: usize) -> bool {
    words[index / 64] & (1u64 << (index % 64)) != 0
}

/// One identifier's acceptance sites: `(NFA state, firing classes, fires
/// at EOI)`.
struct SparseArm {
    id: Option<u16>,
    entries: Vec<(u32, Box<[u64]>, bool)>,
}

impl SparseArm {
    /// Whether the arm fires from the sorted NFA state set `set`;
    /// `class == None` means end of input.
    fn fires(&self, set: &[u32], class: Option<usize>) -> bool {
        self.entries.iter().any(|(state, classes, eoi)| {
            let firing = match class {
                Some(class) => bit_get(classes, class),
                None => *eoi,
            };
            firing && set.binary_search(state).is_ok()
        })
    }
}

/// The shared, immutable subset-construction substrate.
pub(crate) struct SparseNfa {
    pub classes: Classes,
    follow: Vec<Box<[u32]>>,
    /// Per NFA state: classes contained in the entry predicate.
    pred_classes: Vec<Box<[u64]>>,
    /// Per NFA state: classes under which any arm fires.
    accept_classes: Vec<Box<[u64]>>,
    accept_eoi: Vec<bool>,
    /// Arms in resolution order (unidentified first, then ids ascending).
    arms: Vec<SparseArm>,
    pub n_states: usize,
}

impl SparseNfa {
    pub(crate) fn build(nfa: &Nfa) -> SparseNfa {
        let classes = byte_classes(
            nfa.preds.iter().copied().chain(nfa.arms.iter().flatten().map(|arm| arm.bytes)),
        );
        let words = class_words(classes.count);
        let class_bits = |set: &ByteSet| -> Box<[u64]> {
            let mut bits = vec![0u64; words];
            for (class, &byte) in classes.repr.iter().enumerate() {
                if set.contains(byte) {
                    bit_set(&mut bits, class);
                }
            }
            bits.into_boxed_slice()
        };

        let follow: Vec<Box<[u32]>> =
            nfa.follow.iter().map(|f| f.clone().into_boxed_slice()).collect();
        let pred_classes: Vec<Box<[u64]>> = nfa.preds.iter().map(&class_bits).collect();

        let mut accept_classes: Vec<Box<[u64]>> = Vec::with_capacity(nfa.preds.len());
        let mut accept_eoi = Vec::with_capacity(nfa.preds.len());
        let mut arms: Vec<SparseArm> = Vec::new();
        for (state, state_arms) in nfa.arms.iter().enumerate() {
            let mut bits = vec![0u64; words];
            let mut eoi = false;
            for arm in state_arms {
                let arm_bits = class_bits(&arm.bytes);
                for (word, &arm_word) in bits.iter_mut().zip(arm_bits.iter()) {
                    *word |= arm_word;
                }
                eoi |= arm.eoi;
                let entry = match arms.iter_mut().find(|a| a.id == arm.id) {
                    Some(entry) => entry,
                    None => {
                        arms.push(SparseArm { id: arm.id, entries: Vec::new() });
                        arms.last_mut().expect("just pushed")
                    }
                };
                entry.entries.push((state as u32, arm_bits, arm.eoi));
            }
            accept_classes.push(bits.into_boxed_slice());
            accept_eoi.push(eoi);
        }
        arms.sort_by_key(|arm| arm.id.map_or(-1i32, i32::from));

        SparseNfa {
            classes,
            follow,
            pred_classes,
            accept_classes,
            accept_eoi,
            arms,
            n_states: nfa.preds.len(),
        }
    }

    fn resolve_id(&self, set: &[u32], class: Option<usize>) -> Option<u16> {
        self.arms.iter().find(|arm| arm.fires(set, class)).and_then(|arm| arm.id)
    }
}

struct DState {
    set: Box<[u32]>,
    /// Per class: successor DFA id ([`UNKNOWN`] until computed).
    trans: Box<[u32]>,
    accept_classes: Box<[u64]>,
    accept_eoi: bool,
}

/// The per-matcher lazy subset construction.
pub(crate) struct LazyDfa<'n> {
    nfa: &'n SparseNfa,
    states: Vec<DState>,
    memo: HashMap<Box<[u32]>, u32>,
    /// Scratch flags for the gather step (one per NFA state).
    gathered: Vec<bool>,
}

impl<'n> LazyDfa<'n> {
    fn new(nfa: &'n SparseNfa) -> LazyDfa<'n> {
        let mut dfa = LazyDfa {
            nfa,
            states: Vec::new(),
            memo: HashMap::new(),
            gathered: vec![false; nfa.n_states],
        };
        dfa.intern(vec![0]);
        dfa
    }

    fn intern(&mut self, set: Vec<u32>) -> u32 {
        let boxed = set.into_boxed_slice();
        if let Some(&id) = self.memo.get(&boxed) {
            return id;
        }
        let words = class_words(self.nfa.classes.count);
        let mut accept_classes = vec![0u64; words];
        let mut accept_eoi = false;
        for &state in boxed.iter() {
            for (word, &src) in
                accept_classes.iter_mut().zip(self.nfa.accept_classes[state as usize].iter())
            {
                *word |= src;
            }
            accept_eoi |= self.nfa.accept_eoi[state as usize];
        }
        let id = self.states.len() as u32;
        self.memo.insert(boxed.clone(), id);
        self.states.push(DState {
            set: boxed,
            trans: vec![UNKNOWN; self.nfa.classes.count].into_boxed_slice(),
            accept_classes: accept_classes.into_boxed_slice(),
            accept_eoi,
        });
        id
    }

    /// Successor of `from` under `class` ([`DEAD`] when the state set
    /// empties). `from` is invalidated if a flush occurs; callers must
    /// continue from the returned id only.
    fn step(&mut self, from: u32, class: usize) -> u32 {
        let known = self.states[from as usize].trans[class];
        if known != UNKNOWN {
            return known;
        }
        let nfa = self.nfa;
        let mut target: Vec<u32> = Vec::new();
        for i in 0..self.states[from as usize].set.len() {
            let state = self.states[from as usize].set[i];
            for &next in nfa.follow[state as usize].iter() {
                if !self.gathered[next as usize] && bit_get(&nfa.pred_classes[next as usize], class)
                {
                    self.gathered[next as usize] = true;
                    target.push(next);
                }
            }
        }
        for &state in &target {
            self.gathered[state as usize] = false;
        }
        if target.is_empty() {
            self.states[from as usize].trans[class] = DEAD;
            return DEAD;
        }
        target.sort_unstable();
        if self.states.len() >= DFA_STATE_CAP {
            // Bounded memory: drop everything and restart from the target
            // set. `from`'s transition entry dies with it, which only
            // costs re-derivation later.
            self.states.clear();
            self.memo.clear();
            return self.intern(target);
        }
        let id = self.intern(target);
        self.states[from as usize].trans[class] = id;
        id
    }
}

/// Resumable matcher over the lazy DFA (owns its subset cache).
pub(crate) struct DfaMatcher<'n> {
    dfa: LazyDfa<'n>,
    current: u32,
}

impl<'n> DfaMatcher<'n> {
    pub(crate) fn new(nfa: &'n SparseNfa) -> DfaMatcher<'n> {
        let dfa = LazyDfa::new(nfa);
        DfaMatcher { dfa, current: 0 }
    }

    pub(crate) fn feed(&mut self, chunk: &[u8], position: &mut usize) -> Option<HostOutcome> {
        for &byte in chunk {
            let class = usize::from(self.dfa.nfa.classes.of[usize::from(byte)]);
            let state = &self.dfa.states[self.current as usize];
            if bit_get(&state.accept_classes, class) {
                let id = self.dfa.nfa.resolve_id(&state.set, Some(class));
                return Some(HostOutcome {
                    accepted: true,
                    match_position: Some(*position),
                    matched_id: id,
                });
            }
            self.current = self.dfa.step(self.current, class);
            if self.current == DEAD {
                return Some(HostOutcome {
                    accepted: false,
                    match_position: None,
                    matched_id: None,
                });
            }
            *position += 1;
        }
        None
    }

    pub(crate) fn finish(&self, position: usize) -> HostOutcome {
        let state = &self.dfa.states[self.current as usize];
        if state.accept_eoi {
            HostOutcome {
                accepted: true,
                match_position: Some(position),
                matched_id: self.dfa.nfa.resolve_id(&state.set, None),
            }
        } else {
            HostOutcome { accepted: false, match_position: None, matched_id: None }
        }
    }
}

/// Exhaustive multi-match scan on the lazy-DFA path.
pub(crate) fn run_all(nfa: &SparseNfa, input: &[u8]) -> HostAllOutcome {
    let mut out =
        HostAllOutcome { accepted: false, matched_ids: Vec::new(), first_match_position: None };
    if nfa.arms.is_empty() {
        return out;
    }
    let mut live: Vec<bool> = vec![true; nfa.arms.len()];
    let mut live_count = nfa.arms.len();
    let mut dfa = LazyDfa::new(nfa);
    let mut current = 0u32;
    let fire = |set: &[u32],
                class: Option<usize>,
                pos: usize,
                out: &mut HostAllOutcome,
                live: &mut [bool],
                live_count: &mut usize| {
        for (index, arm) in nfa.arms.iter().enumerate() {
            if live[index] && arm.fires(set, class) {
                out.accepted = true;
                out.first_match_position.get_or_insert(pos);
                if let Some(id) = arm.id {
                    if let Err(at) = out.matched_ids.binary_search(&id) {
                        out.matched_ids.insert(at, id);
                    }
                }
                live[index] = false;
                *live_count -= 1;
            }
        }
    };
    for (pos, &byte) in input.iter().enumerate() {
        let class = usize::from(nfa.classes.of[usize::from(byte)]);
        let state = &dfa.states[current as usize];
        if bit_get(&state.accept_classes, class) {
            let set = state.set.clone();
            fire(&set, Some(class), pos, &mut out, &mut live, &mut live_count);
            if live_count == 0 {
                return out;
            }
        }
        current = dfa.step(current, class);
        if current == DEAD {
            return out;
        }
    }
    let state = &dfa.states[current as usize];
    if state.accept_eoi {
        let set = state.set.clone();
        fire(&set, None, input.len(), &mut out, &mut live, &mut live_count);
    }
    out
}
