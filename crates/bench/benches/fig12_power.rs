//! **Figure 12** — total on-chip power (static + dynamic) for every
//! architecture configuration. Pure static analysis of the calibrated
//! power model (no Vivado here; see DESIGN.md).

use cicero_bench::{banner, f2, Scale, Table};
use cicero_sim::{power_watts, ArchConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 12", "power consumption per configuration (W)", scale);
    let mut table = Table::new(vec!["configuration", "power [W]", "clock [MHz]"]);
    let mut configs: Vec<ArchConfig> =
        [1, 4, 9, 16, 32].iter().map(|m| ArchConfig::old_organization(*m)).collect();
    for (n, ms) in [(8usize, vec![1usize, 4, 9, 16]), (16, vec![1, 4, 9]), (32, vec![1, 4])] {
        for m in ms {
            configs.push(ArchConfig::new_organization(n, m));
        }
    }
    for config in &configs {
        table.row(vec![
            config.name(),
            f2(power_watts(config)),
            format!("{:.0}", config.clock_mhz()),
        ]);
    }
    table.print();
    println!("\n  calibration anchors (paper Table 6 implied): OLD 1x9 = 2.42 W,");
    println!("  OLD 1x16 = 2.66 W, NEW 8x1 = 2.20 W, NEW 16x1 = 2.39 W");
}
