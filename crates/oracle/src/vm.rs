//! The lockstep Pike VM executing an [`Nfa`] over an input.

use crate::nfa::{Nfa, State};

/// Whether the NFA matches the input (see [`crate::Oracle::is_match`]).
pub fn is_match(nfa: &Nfa, input: &[u8]) -> bool {
    match_end(nfa, input).is_some()
}

/// Earliest end position of a match, or `None`.
///
/// Runs the textbook lockstep simulation: a frontier of NFA states per
/// input position, epsilon closure with a visited set (so pathological
/// patterns like `(a*)*` cannot loop), halting at the first acceptance.
pub fn match_end(nfa: &Nfa, input: &[u8]) -> Option<usize> {
    let mut current: Vec<u32> = Vec::with_capacity(nfa.len());
    let mut next: Vec<u32> = Vec::with_capacity(nfa.len());
    let mut seen = vec![false; nfa.len()];

    add_closure(nfa, nfa.start(), &mut current, &mut seen);
    for position in 0..=input.len() {
        let at_end = position == input.len();
        // Acceptance check on the closed frontier.
        for id in &current {
            if matches!(nfa.states()[*id as usize], State::Accept) && (!nfa.exact_end() || at_end) {
                return Some(position);
            }
        }
        if at_end {
            break;
        }
        let byte = input[position];
        next.clear();
        seen.iter_mut().for_each(|s| *s = false);
        for id in &current {
            if let State::Byte { test, next: succ } = &nfa.states()[*id as usize] {
                if test.matches(byte) {
                    add_closure(nfa, *succ, &mut next, &mut seen);
                }
            }
        }
        std::mem::swap(&mut current, &mut next);
        if current.is_empty() {
            break;
        }
    }
    None
}

/// Every end position of a match, in ascending order (empty when the
/// pattern does not match at all).
///
/// Unlike [`match_end`] this does **not** halt at the first acceptance: it
/// keeps the lockstep simulation running to the end of the input and
/// records every position at which an accept state is live. The result is
/// exactly the set of end positions a halt-on-first-accept engine *could*
/// report when acceptance races are resolved in hardware time rather than
/// position order (the parallel organizations' any-match semantics), which
/// is what the differential harness validates reported positions against.
pub fn match_ends(nfa: &Nfa, input: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut current: Vec<u32> = Vec::with_capacity(nfa.len());
    let mut next: Vec<u32> = Vec::with_capacity(nfa.len());
    let mut seen = vec![false; nfa.len()];

    add_closure(nfa, nfa.start(), &mut current, &mut seen);
    for position in 0..=input.len() {
        let at_end = position == input.len();
        if current.iter().any(|id| matches!(nfa.states()[*id as usize], State::Accept))
            && (!nfa.exact_end() || at_end)
        {
            ends.push(position);
        }
        if at_end {
            break;
        }
        let byte = input[position];
        next.clear();
        seen.iter_mut().for_each(|s| *s = false);
        for id in &current {
            if let State::Byte { test, next: succ } = &nfa.states()[*id as usize] {
                if test.matches(byte) {
                    add_closure(nfa, *succ, &mut next, &mut seen);
                }
            }
        }
        std::mem::swap(&mut current, &mut next);
        if current.is_empty() {
            break;
        }
    }
    ends
}

/// Add `id` and its epsilon closure to the frontier.
fn add_closure(nfa: &Nfa, id: u32, frontier: &mut Vec<u32>, seen: &mut [bool]) {
    if seen[id as usize] {
        return;
    }
    seen[id as usize] = true;
    match &nfa.states()[id as usize] {
        State::Split { left, right } => {
            add_closure(nfa, *left, frontier, seen);
            add_closure(nfa, *right, frontier, seen);
        }
        _ => frontier.push(id),
    }
}

#[cfg(test)]
mod tests {
    use crate::Oracle;

    /// Cross-check against a naive exponential backtracker on small cases.
    mod against_backtracker {
        use regex_frontend::{Alternation, Atom, Piece, RegexAst};

        /// Match `pieces[pi..]` against `input[pos..]`, returning all
        /// possible end positions. Exponential; only for tiny tests.
        fn match_concat(pieces: &[Piece], input: &[u8], pos: usize, ends: &mut Vec<usize>) {
            let Some(piece) = pieces.first() else {
                ends.push(pos);
                return;
            };
            let (min, max) = match piece.quantifier {
                None => (1, Some(1)),
                Some(q) => (q.min, q.max),
            };
            // Try every admissible repetition count.
            let mut positions = vec![pos];
            let mut count = 0u32;
            loop {
                if count >= min {
                    for p in &positions {
                        match_concat(&pieces[1..], input, *p, ends);
                    }
                }
                if max == Some(count) {
                    break;
                }
                let mut nexts = Vec::new();
                for p in &positions {
                    atom_matches(&piece.atom, input, *p, &mut nexts);
                }
                nexts.sort_unstable();
                nexts.dedup();
                if nexts.is_empty() {
                    break;
                }
                positions = nexts;
                count += 1;
                if count > 64 {
                    break; // safety net for the test harness
                }
            }
        }

        fn atom_matches(atom: &Atom, input: &[u8], pos: usize, out: &mut Vec<usize>) {
            match atom {
                Atom::Char(c) => {
                    if input.get(pos) == Some(c) {
                        out.push(pos + 1);
                    }
                }
                Atom::Any => {
                    if pos < input.len() {
                        out.push(pos + 1);
                    }
                }
                Atom::Class { negated, set } => {
                    if let Some(b) = input.get(pos) {
                        if set.contains(*b) != *negated {
                            out.push(pos + 1);
                        }
                    }
                }
                Atom::Group(alt) => alt_matches(alt, input, pos, out),
            }
        }

        fn alt_matches(alt: &Alternation, input: &[u8], pos: usize, out: &mut Vec<usize>) {
            for concat in &alt.alternatives {
                match_concat(&concat.pieces, input, pos, out);
            }
        }

        /// Backtracking reference: does the AST match `input` under the
        /// prefix/suffix flags?
        pub fn matches(ast: &RegexAst, input: &[u8]) -> bool {
            let starts: Vec<usize> =
                if ast.has_prefix { (0..=input.len()).collect() } else { vec![0] };
            for start in starts {
                let mut ends = Vec::new();
                alt_matches(&ast.alternation, input, start, &mut ends);
                if ast.has_suffix {
                    if !ends.is_empty() {
                        return true;
                    }
                } else if ends.contains(&input.len()) {
                    return true;
                }
            }
            false
        }
    }

    #[test]
    fn agrees_with_backtracker_on_exhaustive_small_inputs() {
        let patterns = [
            "ab",
            "^ab$",
            "a|b",
            "a*",
            "^a+b?$",
            "(ab)+",
            "[ab]c",
            "[^a]b",
            "a{2,3}",
            "^(a|bb){1,2}$",
            "a.b",
            "(a|b)(b|a)$",
            "^x(yz)*",
        ];
        let alphabet = [b'a', b'b', b'x'];
        for pattern in patterns {
            let ast = regex_frontend::parse(pattern).unwrap();
            let oracle = crate::Oracle::from_ast(&ast);
            // All inputs over {a,b,x} of length 0..=4.
            let mut inputs: Vec<Vec<u8>> = vec![vec![]];
            for len in 1..=4usize {
                let mut level = Vec::new();
                for prev in inputs.iter().filter(|i| i.len() == len - 1) {
                    for c in alphabet {
                        let mut next = prev.clone();
                        next.push(c);
                        level.push(next);
                    }
                }
                inputs.extend(level);
            }
            for input in &inputs {
                let expected = against_backtracker::matches(&ast, input);
                let actual = oracle.is_match(input);
                assert_eq!(
                    actual,
                    expected,
                    "pattern {pattern:?} on input {:?}",
                    String::from_utf8_lossy(input)
                );
            }
        }
    }

    #[test]
    fn long_input_linear_behaviour() {
        let oracle = Oracle::new("a{10}").unwrap();
        let mut input = vec![b'b'; 10_000];
        input.extend_from_slice(&[b'a'; 10]);
        assert!(oracle.is_match(&input));
        assert_eq!(oracle.match_end(&input), Some(10_010));
    }
}
