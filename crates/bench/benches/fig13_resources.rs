//! **Figure 13** — FPGA resource usage (%) on the XCZU3EG for the
//! configurations selected by the micro-benchmark pre-filtering.
//!
//! Reproduction target: "NEW 8x1 is the most resource-efficient", and the
//! new organization uses fewer resources than the old at equal core count
//! (no replicated FIFOs or balancer stations).

use cicero_bench::{banner, selected_configs, Scale, Table};
use cicero_sim::resource_usage;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 13", "resource usage (%) on the XCZU3EG", scale);
    let mut table = Table::new(vec!["configuration", "LUT %", "REG %", "BRAM %", "clock"]);
    for config in selected_configs() {
        let usage = resource_usage(&config);
        table.row(vec![
            config.name(),
            format!("{:.1}", usage.lut_fraction * 100.0),
            format!("{:.1}", usage.reg_fraction * 100.0),
            format!("{:.1}", usage.bram_fraction * 100.0),
            format!("{:.0} MHz", config.clock_mhz()),
        ]);
    }
    table.print();
    println!("\n  expectation: NEW 8x1 minimal on all three; NEW 16x1 well below OLD 1x16");
}
