//! Minimal hand-rolled JSON *parser* for request bodies (the workspace
//! has no serde; `cicero-telemetry` owns the serializer side).
//!
//! Full JSON grammar — objects, arrays, strings with escapes (incl.
//! `\uXXXX` and surrogate pairs), numbers, booleans, null — with a
//! recursion-depth cap so hostile bodies cannot overflow the stack.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing non-whitespace is an error).
///
/// # Errors
///
/// A human-readable message with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), at: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.at));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.at) == Some(&byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.at))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.at));
        }
        match self.bytes.get(self.at) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", *c as char, self.at)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.bytes.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while matches!(self.bytes.get(self.at), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let escape = self.bytes.get(self.at).copied();
                    self.at += 1;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.bytes.get(self.at) == Some(&b'\\')
                                    && self.bytes.get(self.at + 1) == Some(&b'u')
                                {
                                    self.at += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape before byte {}", self.at)
                            })?);
                        }
                        other => {
                            return Err(format!("bad escape {other:?} before byte {}", self.at))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the body came in as &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "non-UTF-8 string content".to_owned())?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("unescaped control character at byte {}", self.at));
                    }
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.at.checked_add(4).filter(|e| *e <= self.bytes.len());
        let slice = end.map(|e| &self.bytes[self.at..e]).ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_owned())?;
        let unit = u16::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))?;
        self.at += 4;
        Ok(unit)
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let doc = parse(r#"{"patterns": ["ab|cd", "x+"], "input": "scan me", "config": "16x1"}"#)
            .unwrap();
        let patterns: Vec<&str> = doc
            .get("patterns")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|p| p.as_str().unwrap())
            .collect();
        assert_eq!(patterns, vec!["ab|cd", "x+"]);
        assert_eq!(doc.get("input").unwrap().as_str(), Some("scan me"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(
            parse(r#"[1, [2, {"a": 3}]]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0), Json::Obj(vec![("a".to_owned(), Json::Num(3.0))])]),
            ])
        );
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn decodes_escapes_and_surrogate_pairs() {
        assert_eq!(parse(r#""a\"b\\c\ndA😀""#).unwrap(), Json::Str("a\"b\\c\ndA😀".to_owned()));
    }

    #[test]
    fn round_trips_the_telemetry_serializer() {
        let line = cicero_telemetry::JsonObject::new()
            .field("name", "sim.cycles")
            .field("count", 3u64)
            .field("ratio", 0.5f64)
            .finish();
        let doc = parse(&line).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("sim.cycles"));
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{\"a\":1}x"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn rejects_unescaped_control_characters() {
        assert!(parse("\"a\u{1}b\"").is_err());
    }
}
