//! AST → `regex` dialect conversion (the compiler's second stage, §3).

use mlir_lite::Operation;
use regex_frontend::{Alternation, Atom, Concatenation, Piece, RegexAst};

use crate::ops;

/// Convert a parsed AST into `regex` dialect IR rooted at `regex.root`.
///
/// Negated classes are complemented here — the dialect's `regex.group`
/// carries the *acceptance* bitmap, matching the paper's
/// `"[ac]" becomes [false, …, true, false, true, false, …]` example. A
/// trailing `$` was already folded into the AST's `has_suffix` flag by the
/// parser, so this conversion never emits `regex.dollar` itself (the op
/// remains available to dialect users building IR by hand).
pub fn ast_to_ir(ast: &RegexAst) -> Operation {
    ops::root(ast.has_prefix, ast.has_suffix, convert_alternatives(&ast.alternation))
}

fn convert_alternatives(alt: &Alternation) -> Vec<Operation> {
    alt.alternatives.iter().map(convert_concatenation).collect()
}

fn convert_concatenation(concat: &Concatenation) -> Operation {
    ops::concatenation(concat.pieces.iter().map(convert_piece).collect())
}

fn convert_piece(piece: &Piece) -> Operation {
    let atom = convert_atom(&piece.atom);
    let quant = piece.quantifier.filter(|q| !q.is_one()).map(|q| ops::quantifier(q.min, q.max));
    ops::piece(atom, quant)
}

fn convert_atom(atom: &Atom) -> Operation {
    match atom {
        Atom::Char(c) => ops::match_char(*c),
        Atom::Any => ops::match_any_char(),
        Atom::Class { negated, set } => {
            let set = if *negated { set.complement() } else { set.clone() };
            ops::group(set.to_bool_array())
        }
        Atom::Group(alt) => ops::sub_regex(convert_alternatives(alt)),
    }
}

/// Convert verified `regex` dialect IR back into an AST (the inverse of
/// [`ast_to_ir`]).
///
/// Unlike rendering to pattern text with [`crate::ir_to_pattern`] and
/// re-parsing, this conversion handles IR with no textual equivalent, such
/// as an alternation whose branches are all empty (which the shortest-match
/// reduction can produce from `a*|b*`). Spans are synthesized as empty.
///
/// # Panics
///
/// Panics on IR that does not verify against the dialect.
pub fn ir_to_ast(root: &Operation) -> RegexAst {
    use crate::ops::attrs;
    use mlir_lite::Attribute;
    assert!(root.is(ops::names::ROOT), "expected regex.root, got {}", root.name());
    let flag = |key| {
        root.attr(key)
            .and_then(Attribute::as_bool)
            .unwrap_or_else(|| panic!("regex.root missing `{key}`"))
    };
    RegexAst {
        has_prefix: flag(attrs::HAS_PREFIX),
        has_suffix: flag(attrs::HAS_SUFFIX),
        alternation: region_to_alternation(&root.only_region().ops),
    }
}

fn region_to_alternation(concats: &[Operation]) -> Alternation {
    Alternation {
        alternatives: concats.iter().map(op_to_concatenation).collect(),
        span: regex_frontend::Span::default(),
    }
}

fn op_to_concatenation(concat: &Operation) -> Concatenation {
    Concatenation {
        pieces: concat.only_region().ops.iter().map(op_to_piece).collect(),
        span: regex_frontend::Span::default(),
    }
}

fn op_to_piece(piece: &Operation) -> Piece {
    use crate::ops::{attrs, names, piece_parts, quantifier_bounds};
    use mlir_lite::Attribute;
    use regex_frontend::{ClassSet, Quantifier};
    let (atom_op, quant_op) = piece_parts(piece);
    let atom = match atom_op.name().as_str() {
        names::MATCH_CHAR => Atom::Char(
            atom_op.attr(attrs::TARGET_CHAR).and_then(Attribute::as_char).expect("verified"),
        ),
        names::MATCH_ANY_CHAR => Atom::Any,
        names::GROUP => {
            let bits = atom_op
                .attr(attrs::TARGET_CHARS)
                .and_then(Attribute::as_bool_array)
                .expect("verified");
            Atom::Class { negated: false, set: ClassSet::from_bool_array(bits) }
        }
        names::SUB_REGEX => {
            Atom::Group(Box::new(region_to_alternation(&atom_op.only_region().ops)))
        }
        names::DOLLAR => {
            // `$` as an atom has no AST equivalent mid-pattern; model it as
            // an empty class complemented — but since the parser folds `$`
            // into `has_suffix`, conversion from parsed IR never hits this.
            panic!("regex.dollar cannot be converted to an AST atom")
        }
        other => panic!("unexpected atom {other}"),
    };
    let quantifier = quant_op.map(|q| {
        let (min, max) = quantifier_bounds(q);
        Quantifier::range(min, max)
    });
    Piece { atom, quantifier, span: regex_frontend::Span::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{attrs, names};
    use mlir_lite::{Attribute, Context};

    fn ir(pattern: &str) -> Operation {
        let ast = regex_frontend::parse(pattern).unwrap();
        let op = ast_to_ir(&ast);
        let mut ctx = Context::new();
        ctx.register_dialect(crate::dialect());
        ctx.verify(&op).expect("conversion must produce verified IR");
        op
    }

    #[test]
    fn listing1_structure() {
        // `(ab)|c{3,6}d+` — Listing 1 of the paper.
        let root = ir("(ab)|c{3,6}d+");
        assert_eq!(root.attr(attrs::HAS_PREFIX), Some(&Attribute::Bool(true)));
        assert_eq!(root.attr(attrs::HAS_SUFFIX), Some(&Attribute::Bool(true)));
        let alts = &root.only_region().ops;
        assert_eq!(alts.len(), 2);
        // First alternative: one piece wrapping the sub-regex (ab).
        let first = &alts[0].only_region().ops;
        assert_eq!(first.len(), 1);
        let (atom, quant) = crate::ops::piece_parts(&first[0]);
        assert!(atom.is(names::SUB_REGEX));
        assert!(quant.is_none());
        // Second alternative: c{3,6} then d+.
        let second = &alts[1].only_region().ops;
        assert_eq!(second.len(), 2);
        let (atom, quant) = crate::ops::piece_parts(&second[0]);
        assert!(atom.is(names::MATCH_CHAR));
        assert_eq!(crate::ops::quantifier_bounds(quant.unwrap()), (3, Some(6)));
        let (_, quant) = crate::ops::piece_parts(&second[1]);
        assert_eq!(crate::ops::quantifier_bounds(quant.unwrap()), (1, None));
    }

    #[test]
    fn anchors_map_to_root_flags() {
        let root = ir("^ab$");
        assert_eq!(root.attr(attrs::HAS_PREFIX), Some(&Attribute::Bool(false)));
        assert_eq!(root.attr(attrs::HAS_SUFFIX), Some(&Attribute::Bool(false)));
    }

    #[test]
    fn negated_class_is_complemented() {
        let root = ir("[^ab]");
        let alts = &root.only_region().ops;
        let (atom, _) = crate::ops::piece_parts(&alts[0].only_region().ops[0]);
        let bits = atom.attr(attrs::TARGET_CHARS).and_then(Attribute::as_bool_array).unwrap();
        assert!(!bits[b'a' as usize]);
        assert!(!bits[b'b' as usize]);
        assert!(bits[b'c' as usize]);
        assert_eq!(bits.iter().filter(|b| **b).count(), 254);
    }

    #[test]
    fn trivial_quantifier_is_dropped() {
        let root = ir("a{1}");
        let (_, quant) = crate::ops::piece_parts(&root.only_region().ops[0].only_region().ops[0]);
        assert!(quant.is_none(), "{{1}} is the same as no quantifier");
    }

    #[test]
    fn nested_groups_convert_recursively() {
        let root = ir("a(b(c|d))e");
        let pieces = &root.only_region().ops[0].only_region().ops;
        assert_eq!(pieces.len(), 3);
        let (sub, _) = crate::ops::piece_parts(&pieces[1]);
        assert!(sub.is(names::SUB_REGEX));
        let inner_pieces = &sub.only_region().ops[0].only_region().ops;
        assert_eq!(inner_pieces.len(), 2);
        let (inner_sub, _) = crate::ops::piece_parts(&inner_pieces[1]);
        assert!(inner_sub.is(names::SUB_REGEX));
        assert_eq!(inner_sub.only_region().len(), 2, "c|d has two alternatives");
    }
}
