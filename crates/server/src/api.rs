//! Endpoint handlers: route one parsed [`Request`] to a [`Response`].
//!
//! All handlers are pure request → response functions over the shared
//! server state; transport concerns (timeouts, keep-alive, draining)
//! live in the connection loop, and every error path produces a typed
//! JSON body — a client never sees a hang or a bare connection reset
//! for a request the server actually read.

use std::time::Duration;

use cicero_core::Backend;
use cicero_runtime::{Budget, BudgetKind, MatchOutcome};
use cicero_sim::ArchConfig;
use cicero_telemetry::{render_chrome_trace, JsonObject, TraceSpan};

use crate::http::{Request, Response};
use crate::json::{self, Json};
use crate::Shared;

/// Whether `path` addresses the flight-recorder debug surface.
fn is_traces_path(path: &str) -> bool {
    path == "/debug/traces" || path.starts_with("/debug/traces/")
}

/// Route a request to its handler. `root` is the request's trace span;
/// handlers hang their compile/execute/merge children off it.
pub(crate) fn handle(shared: &Shared, request: &Request, root: &TraceSpan) -> Response {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/match") => handle_match(shared, request, root),
        ("POST", "/scan") => handle_scan(shared, request, root),
        ("GET", "/metrics") => handle_metrics(shared, request),
        ("GET", "/healthz") => handle_healthz(shared),
        ("POST", "/shutdown") => handle_shutdown(shared),
        ("GET", _) if is_traces_path(path) => handle_traces(shared, request),
        (_, "/match" | "/scan" | "/metrics" | "/healthz" | "/shutdown") => error_response(
            405,
            &format!("method {} not allowed on {}", request.method, request.path),
        ),
        _ if is_traces_path(path) => error_response(
            405,
            &format!("method {} not allowed on {}", request.method, request.path),
        ),
        _ => error_response(404, &format!("no such endpoint {:?}", request.path)),
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, JsonObject::new().field("error", message).finish())
}

/// The `X-Cicero-Fuel` / `X-Cicero-Deadline-Ms` headers as a [`Budget`].
fn budget_from_headers(request: &Request) -> Result<Budget, Response> {
    let mut budget = Budget::default();
    if let Some(value) = request.header("x-cicero-fuel") {
        let fuel: u64 = value
            .parse()
            .map_err(|_| error_response(400, &format!("bad X-Cicero-Fuel value {value:?}")))?;
        budget.fuel = Some(fuel);
    }
    if let Some(value) = request.header("x-cicero-deadline-ms") {
        let ms: u64 = value.parse().map_err(|_| {
            error_response(400, &format!("bad X-Cicero-Deadline-Ms value {value:?}"))
        })?;
        budget.deadline = Some(Duration::from_millis(ms));
    }
    Ok(budget)
}

/// The `X-Cicero-Backend` header (`sim` or `host`); absent, the
/// runtime's configured default (the server serves host-native unless
/// started with `--backend sim`).
fn backend_from_headers(shared: &Shared, request: &Request) -> Result<Backend, Response> {
    match request.header("x-cicero-backend") {
        None => Ok(shared.runtime.backend()),
        Some(value) => value
            .parse()
            .map_err(|e: String| error_response(400, &format!("bad X-Cicero-Backend value: {e}"))),
    }
}

/// The paper's `NxM` architecture naming, as also used by the CLI's
/// `--config` flag.
fn parse_arch_config(spec: &str) -> Result<ArchConfig, String> {
    let (n, m) =
        spec.split_once('x').ok_or_else(|| format!("config {spec:?} is not of the form NxM"))?;
    let n: usize = n.parse().map_err(|_| format!("bad core count in {spec:?}"))?;
    let m: usize = m.parse().map_err(|_| format!("bad engine count in {spec:?}"))?;
    if n == 1 {
        Ok(ArchConfig::old_organization(m))
    } else if n.is_power_of_two() {
        Ok(ArchConfig::new_organization(n, m))
    } else {
        Err(format!("core count {n} must be 1 (old organization) or a power of two"))
    }
}

/// The body shape shared by `/match` and `/scan`.
struct MatchBody {
    patterns: Vec<String>,
    input: Vec<u8>,
    config: ArchConfig,
}

fn parse_match_body(shared: &Shared, request: &Request) -> Result<MatchBody, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error_response(400, "request body is not UTF-8"))?;
    let doc = json::parse(text)
        .map_err(|e| error_response(400, &format!("request body is not valid JSON: {e}")))?;
    let patterns: Vec<String> = match (doc.get("patterns"), doc.get("pattern")) {
        (Some(list), None) => list
            .as_arr()
            .ok_or_else(|| error_response(400, "\"patterns\" must be an array of strings"))?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| error_response(400, "\"patterns\" must be an array of strings"))
            })
            .collect::<Result<_, _>>()?,
        (None, Some(Json::Str(pattern))) => vec![pattern.clone()],
        (None, Some(_)) => return Err(error_response(400, "\"pattern\" must be a string")),
        (Some(_), Some(_)) => {
            return Err(error_response(400, "provide \"patterns\" or \"pattern\", not both"))
        }
        (None, None) => {
            return Err(error_response(400, "missing \"patterns\" (or \"pattern\") field"))
        }
    };
    if patterns.is_empty() {
        return Err(error_response(400, "\"patterns\" must name at least one pattern"));
    }
    let input = doc
        .get("input")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(400, "missing \"input\" string field"))?
        .as_bytes()
        .to_vec();
    let config = match doc.get("config") {
        None => shared.config.clone(),
        Some(Json::Str(spec)) => parse_arch_config(spec).map_err(|e| error_response(400, &e))?,
        Some(_) => return Err(error_response(400, "\"config\" must be a string like \"16x1\"")),
    };
    Ok(MatchBody { patterns, input, config })
}

/// The §6 batch granularity, mirroring the CLI's chunker: 500-byte
/// chunks, with an empty input still yielding one (empty) chunk.
fn chunk_input(input: &[u8]) -> Vec<Vec<u8>> {
    if input.is_empty() {
        return vec![Vec::new()];
    }
    input.chunks(workloads::CHUNK_BYTES).map(<[u8]>::to_vec).collect()
}

fn budget_kind_name(kind: BudgetKind) -> &'static str {
    match kind {
        BudgetKind::Fuel => "fuel",
        BudgetKind::Deadline => "deadline",
    }
}

/// Wrap per-row JSON objects and top-level summary fields into the final
/// response, downgrading the status to `429` on a tripped budget (the
/// partial rows still ship) or `500` on a worker fault.
fn verdict_status(budget_kind: Option<BudgetKind>, faults: usize) -> u16 {
    if budget_kind.is_some() {
        429
    } else if faults > 0 {
        500
    } else {
        200
    }
}

fn finish_with_budget(
    mut object: JsonObject,
    budget_kind: Option<BudgetKind>,
    faults: usize,
) -> Response {
    object = object.field("budget_exceeded", budget_kind.is_some());
    if let Some(kind) = budget_kind {
        object = object.field("kind", budget_kind_name(kind));
    }
    if faults > 0 {
        object = object.field("faults", faults as u64);
    }
    let status = verdict_status(budget_kind, faults);
    let response = Response::json(status, object.finish());
    if status == 429 {
        response.with_header("retry-after", "1".to_owned())
    } else {
        response
    }
}

/// `POST /match`: each pattern is matched independently over the whole
/// input through the runtime's guarded path (cache, budgets, panic
/// isolation). Body: `{"patterns": [...], "input": "...", "config"?: "NxM"}`.
fn handle_match(shared: &Shared, request: &Request, root: &TraceSpan) -> Response {
    let budget = match budget_from_headers(request) {
        Ok(budget) => budget,
        Err(response) => return response,
    };
    let backend = match backend_from_headers(shared, request) {
        Ok(backend) => backend,
        Err(response) => return response,
    };
    let body = match parse_match_body(shared, request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let inputs = vec![body.input.clone()];
    let mut rows = Vec::new();
    let mut budget_kind = None;
    let mut faults = 0usize;
    for pattern in &body.patterns {
        let batch = match shared.runtime.match_batch_guarded_traced_on(
            backend,
            pattern,
            &inputs,
            &body.config,
            &budget,
            Some(root),
        ) {
            Ok(batch) => batch,
            Err(e) => return error_response(400, &format!("pattern {pattern:?}: {e}")),
        };
        let outcome = &batch.outcomes[0];
        let mut row = JsonObject::new().field("pattern", pattern.as_str());
        match outcome {
            MatchOutcome::Complete(report) => {
                row = row
                    .field("verdict", if report.accepted { "match" } else { "no-match" })
                    .field("matched", report.accepted)
                    .field("cycles", report.cycles);
                if let Some(position) = report.match_position {
                    row = row.field("match_position", position as u64);
                }
            }
            MatchOutcome::Budget { kind, partial } => {
                budget_kind = Some(*kind);
                row = row
                    .field("verdict", "budget")
                    .field("matched", false)
                    .field("kind", budget_kind_name(*kind));
                if let Some(partial) = partial {
                    row = row.field("partial_cycles", partial.cycles);
                }
            }
            MatchOutcome::Fault(message) => {
                faults += 1;
                row = row
                    .field("verdict", "fault")
                    .field("matched", false)
                    .field("fault", message.as_str());
            }
        }
        rows.push(row.field("cache_hit", batch.cache_hit).finish());
    }
    let object = JsonObject::new()
        .field("input_bytes", body.input.len() as u64)
        .field("config", body.config.name())
        .field_raw("results", &format!("[{}]", rows.join(",")));
    finish_with_budget(object, budget_kind, faults)
}

/// `POST /scan`: the patterns compile as one multi-matching set (through
/// the LRU cache), the input is scanned in 500-byte chunks on the worker
/// pool, and per-pattern chunk counts come from an all-matches pass
/// (host engine `run_all`, or [`cicero_isa::run_all`] under
/// `X-Cicero-Backend: sim`) so overlapping set members are all
/// reported — the same accounting as `cicero scan --jobs N`.
fn handle_scan(shared: &Shared, request: &Request, root: &TraceSpan) -> Response {
    let budget = match budget_from_headers(request) {
        Ok(budget) => budget,
        Err(response) => return response,
    };
    let backend = match backend_from_headers(shared, request) {
        Ok(backend) => backend,
        Err(response) => return response,
    };
    let body = match parse_match_body(shared, request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let (program, _cache_hit) = match shared.runtime.compile_set_traced(&body.patterns, Some(root))
    {
        Ok(compiled) => compiled,
        Err(e) => return error_response(400, &format!("compiling the pattern set: {e}")),
    };
    let chunks = chunk_input(&body.input);
    let batch = shared.runtime.run_batch_guarded_traced_on(
        backend,
        &program,
        &chunks,
        &body.config,
        &budget,
        Some(root),
    );

    // Merging the per-chunk outcomes re-runs accepted chunks through the
    // all-matches interpreter, which is real work worth its own span.
    let merge_span = root.child("merge");
    let mut per_pattern = vec![0u64; body.patterns.len()];
    let mut cycles = 0u64;
    let mut budget_kind = None;
    let mut faults = 0usize;
    for (chunk, outcome) in chunks.iter().zip(&batch.outcomes) {
        match outcome {
            MatchOutcome::Complete(report) => {
                cycles += report.cycles;
                if report.accepted {
                    // The first-acceptance run halts on any set member
                    // (hardware semantics); the all-matches pass reports
                    // every distinct one. On the host backend that pass
                    // is the memoized host engine; on sim it is the
                    // functional interpreter. Their id sets are
                    // byte-identical (proptested in cicero-runtime).
                    let ids = match backend {
                        Backend::Host => {
                            shared.runtime.host_program(&program).run_all(chunk).matched_ids
                        }
                        Backend::Sim => cicero_isa::run_all(&program, chunk).matched_ids,
                    };
                    for id in ids {
                        if let Some(count) = per_pattern.get_mut(usize::from(id)) {
                            *count += 1;
                        }
                    }
                }
            }
            MatchOutcome::Budget { kind, partial } => {
                budget_kind = Some(*kind);
                if let Some(partial) = partial {
                    cycles += partial.cycles;
                }
            }
            MatchOutcome::Fault(_) => faults += 1,
        }
    }
    merge_span.annotate("chunks", chunks.len());
    merge_span.annotate("pattern_hits", per_pattern.iter().sum::<u64>());
    merge_span.close();

    let rows: Vec<String> = body
        .patterns
        .iter()
        .zip(&per_pattern)
        .enumerate()
        .map(|(id, (pattern, count))| {
            JsonObject::new()
                .field("id", id as u64)
                .field("pattern", pattern.as_str())
                .field("chunks_matched", *count)
                .finish()
        })
        .collect();
    let object = JsonObject::new()
        .field("chunks", chunks.len() as u64)
        .field("chunk_bytes", workloads::CHUNK_BYTES as u64)
        .field("completed", batch.completed() as u64)
        .field("matched", per_pattern.iter().any(|c| *c > 0))
        .field("cycles", cycles)
        .field("jobs", batch.jobs as u64)
        .field("worker_restarts", batch.worker_restarts)
        .field_raw("per_pattern", &format!("[{}]", rows.join(",")));
    finish_with_budget(object, budget_kind, faults)
}

/// `GET /metrics?format=summary|jsonl|prometheus`: the unified telemetry
/// dump, including the Prometheus text exposition format scrapers expect.
fn handle_metrics(shared: &Shared, request: &Request) -> Response {
    shared.refresh_gauges();
    match request.query_param("format").unwrap_or("summary") {
        "summary" => Response::text(200, shared.telemetry.render_summary()),
        "jsonl" => Response {
            status: 200,
            headers: Vec::new(),
            content_type: "application/jsonl",
            body: shared.telemetry.render_jsonl().into_bytes(),
        },
        "prometheus" => Response {
            status: 200,
            headers: Vec::new(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: shared.telemetry.render_prometheus().into_bytes(),
        },
        other => error_response(
            400,
            &format!("unknown format {other:?} (use summary, jsonl, or prometheus)"),
        ),
    }
}

/// `GET /debug/traces[/{request_id}]`: the flight recorder. The index
/// lists retained traces (`?format=chrome` exports them all as one
/// Chrome `trace_event` document); a request id fetches one trace as
/// span-tree JSON (`?format=chrome` or `?format=tree` re-render it).
fn handle_traces(shared: &Shared, request: &Request) -> Response {
    let format = request.query_param("format").unwrap_or("json");
    let id = request.path.strip_prefix("/debug/traces").unwrap_or("").trim_start_matches('/');
    if id.is_empty() {
        return match format {
            "json" => Response::json(200, shared.recorder.render_index_json()),
            "chrome" => Response::json(200, shared.recorder.render_chrome_json()),
            other => error_response(400, &format!("unknown format {other:?} (use json or chrome)")),
        };
    }
    let Some(trace) = shared.recorder.get(id) else {
        return error_response(404, &format!("no retained trace for request id {id:?}"));
    };
    match format {
        "json" => Response::json(200, trace.render_json(shared.recorder.is_slow(&trace))),
        "chrome" => Response::json(200, render_chrome_trace(&[trace])),
        "tree" => Response::text(200, trace.render_tree()),
        other => {
            error_response(400, &format!("unknown format {other:?} (use json, chrome, or tree)"))
        }
    }
}

/// `GET /healthz`: liveness plus the drain state.
fn handle_healthz(shared: &Shared) -> Response {
    Response::json(
        200,
        JsonObject::new()
            .field("status", "ok")
            .field("draining", shared.is_draining())
            .field("requests", shared.requests.load(std::sync::atomic::Ordering::SeqCst))
            .field("cache_entries", shared.runtime.cache().stats().entries as u64)
            .finish(),
    )
}

/// `POST /shutdown`: begin draining. The acceptor stops taking
/// connections; queued and in-flight requests (including this one)
/// complete.
fn handle_shutdown(shared: &Shared) -> Response {
    shared.shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    shared.telemetry.counter_add("server.shutdown_requests", 1);
    Response::json(200, JsonObject::new().field("status", "draining").finish())
}
