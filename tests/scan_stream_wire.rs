//! Wire-level chunk-split invariance for `POST /scan/stream`.
//!
//! The engine-level property (PR 4) says a resumable matcher fed the
//! input in arbitrary chunks is byte-identical to the whole-input run.
//! This file proves the property *end-to-end over a socket*: the same
//! body delivered as HTTP `Transfer-Encoding: chunked` — split at
//! arbitrary chunk boundaries — must produce a raw HTTP response
//! byte-identical to the `Content-Length` delivery (same deterministic
//! body fields, same ruleset version header), and its verdict must agree
//! with the JSON `/scan` endpoint over the same ruleset.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

use cicero::server::{Server, ServerHandle, ServerOptions};
use proptest::prelude::*;

/// The pattern set every request scans against; installed once.
const PATTERNS: &str = r#"{"patterns":["ab|cd","x(a?|a*)y","gh+i"]}"#;

fn server_addr() -> SocketAddr {
    static SERVER: OnceLock<(SocketAddr, ServerHandle)> = OnceLock::new();
    SERVER
        .get_or_init(|| {
            let options = ServerOptions {
                addr: "127.0.0.1:0".to_owned(),
                workers: 2,
                queue_depth: 16,
                runtime: cicero::runtime::RuntimeOptions {
                    jobs: 1,
                    ..ServerOptions::default().runtime
                },
                ..ServerOptions::default()
            };
            let server = Server::bind(options).expect("bind");
            let addr = server.local_addr().expect("addr");
            let handle = server.handle();
            std::thread::spawn(move || server.run());
            let put = roundtrip(
                addr,
                format!(
                    "PUT /rulesets/wire HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{PATTERNS}",
                    PATTERNS.len()
                )
                .into_bytes(),
            );
            assert!(
                status_line(&put).contains("201"),
                "ruleset install failed: {}",
                String::from_utf8_lossy(&put)
            );
            (addr, handle)
        })
        .0
}

/// One request over a fresh connection; returns the raw response bytes.
fn roundtrip(addr: SocketAddr, request: Vec<u8>) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&request).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    response
}

fn status_line(response: &[u8]) -> String {
    String::from_utf8_lossy(response).lines().next().unwrap_or_default().to_owned()
}

/// The whole-body delivery: one `Content-Length` request.
fn whole_body_request(path: &str, body: &[u8]) -> Vec<u8> {
    let mut request = format!(
        "POST {path} HTTP/1.1\r\nx-cicero-request-id: wire-prop\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    request
}

/// The chunked delivery: the same body split at the given boundaries.
fn chunked_request(path: &str, chunks: &[Vec<u8>]) -> Vec<u8> {
    let mut request = format!(
        "POST {path} HTTP/1.1\r\nx-cicero-request-id: wire-prop\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n"
    )
    .into_bytes();
    for chunk in chunks {
        request.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        request.extend_from_slice(chunk);
        request.extend_from_slice(b"\r\n");
    }
    request.extend_from_slice(b"0\r\n\r\n");
    request
}

fn body_field(response: &[u8], field: &str) -> Option<String> {
    let text = String::from_utf8_lossy(response);
    let body = text.split("\r\n\r\n").nth(1)?;
    let tail = body.split(&format!("\"{field}\":")).nth(1)?;
    Some(tail.split([',', '}']).next()?.trim().to_owned())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Chunk-split invariance over the wire: splitting the HTTP body at
    /// arbitrary boundaries must not change one byte of the response,
    /// and the streamed verdict must agree with the batch `/scan` path.
    #[test]
    fn scan_stream_responses_are_invariant_to_http_chunking(
        input in prop::collection::vec(prop::num::u8::ANY.prop_map(|b| b'a' + b % 8), 0..48),
        splits in prop::collection::vec(0usize..48, 0..6),
    ) {
        let addr = server_addr();
        let path = "/scan/stream?ruleset=wire";
        let chunks = cicero::difftest::apply_splits(&input, &splits);
        let whole = roundtrip(addr, whole_body_request(path, &input));
        let split = roundtrip(addr, chunked_request(path, &chunks));
        prop_assert_eq!(
            &whole,
            &split,
            "response changed under chunking at {:?} for input {:?}",
            &splits,
            String::from_utf8_lossy(&input)
        );
        prop_assert!(status_line(&whole).contains("200"), "{}", status_line(&whole));
        // Every response is tagged with the version that served it.
        let version = body_field(&whole, "ruleset_version");
        prop_assert!(version.is_some(), "missing ruleset_version");

        // Verdict agreement with the JSON batch endpoint over the same
        // pinned ruleset (the endpoints share the compiled program).
        let scan_body =
            format!(r#"{{"input":"{}"}}"#, String::from_utf8_lossy(&input));
        let scan = roundtrip(addr, whole_body_request("/scan?ruleset=wire", scan_body.as_bytes()));
        prop_assert!(status_line(&scan).contains("200"), "{}", status_line(&scan));
        prop_assert_eq!(
            body_field(&whole, "matched"),
            body_field(&scan, "matched"),
            "stream and batch verdicts diverged on {:?}",
            String::from_utf8_lossy(&input)
        );
        prop_assert_eq!(body_field(&scan, "ruleset_version"), version);
    }
}
