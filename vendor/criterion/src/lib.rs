//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the API surface the workspace's micro-benchmarks use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` and `Bencher::iter_batched`). Instead of criterion's
//! statistical machinery it runs each benchmark a fixed number of samples
//! and prints min / median / max wall-clock per iteration — enough to
//! compare alternatives locally and to keep the bench targets compiling
//! and runnable.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for signature compatibility;
/// the stub times one routine call per sample either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
            routine(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed / bencher.iterations);
            }
        }
        samples.sort();
        if samples.is_empty() {
            println!("  {}/{id}: no iterations recorded", self.name);
        } else {
            println!(
                "  {}/{id}: min {:?}  median {:?}  max {:?}  ({} samples)",
                self.name,
                samples[0],
                samples[samples.len() / 2],
                samples[samples.len() - 1],
                samples.len()
            );
        }
        self
    }

    /// Finish the group (printing already happened incrementally).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Time `routine` once per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    /// Time `routine` on a fresh input from `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
