//! A 256-bit byte set — the predicate alphabet of the epsilon-free NFA.
//!
//! Every consuming transition of the lowered automaton carries one of
//! these as its byte predicate, and every mid-input acceptance carries one
//! as the set of current bytes under which it may fire (`NotMatch` guards
//! narrow it below the full alphabet). The set is `Copy`, `Eq`, and
//! `Hash` because it is part of the identity of a lowered state: two
//! paths reaching the same PC under different `NotMatch` constraints must
//! stay distinct states or the bit-parallel step would over-approximate.

/// A set of byte values, stored as four 64-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteSet([u64; 4]);

impl ByteSet {
    /// The empty set.
    pub const EMPTY: ByteSet = ByteSet([0; 4]);
    /// All 256 byte values.
    pub const FULL: ByteSet = ByteSet([u64::MAX; 4]);

    /// The singleton `{b}`.
    pub fn single(b: u8) -> ByteSet {
        let mut set = ByteSet::EMPTY;
        set.insert(b);
        set
    }

    /// Add `b` to the set.
    pub fn insert(&mut self, b: u8) {
        self.0[usize::from(b >> 6)] |= 1u64 << (b & 63);
    }

    /// The set without `b`.
    #[must_use]
    pub fn without(mut self, b: u8) -> ByteSet {
        self.0[usize::from(b >> 6)] &= !(1u64 << (b & 63));
        self
    }

    /// Whether `b` is a member.
    pub fn contains(&self, b: u8) -> bool {
        self.0[usize::from(b >> 6)] & (1u64 << (b & 63)) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Whether the set contains every byte value.
    pub fn is_full(&self) -> bool {
        self.0 == [u64::MAX; 4]
    }

    /// Set union.
    #[must_use]
    pub fn union(mut self, other: ByteSet) -> ByteSet {
        for (word, other) in self.0.iter_mut().zip(other.0) {
            *word |= other;
        }
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).map(|b| b as u8).filter(|&b| self.contains(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_and_cardinality() {
        let mut set = ByteSet::EMPTY;
        assert!(set.is_empty() && !set.is_full());
        set.insert(0);
        set.insert(63);
        set.insert(64);
        set.insert(255);
        assert_eq!(set.len(), 4);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 63, 64, 255]);
        assert!(set.contains(64) && !set.contains(65));
        assert_eq!(set.without(64).len(), 3);
    }

    #[test]
    fn full_without_one_byte_is_the_notmatch_constraint() {
        let set = ByteSet::FULL.without(b'a');
        assert!(!set.is_full() && !set.is_empty());
        assert_eq!(set.len(), 255);
        assert!(!set.contains(b'a') && set.contains(b'b'));
        // Removing the same byte twice is idempotent, so a chain of
        // identical NotMatch guards maps to one constraint (and one state).
        assert_eq!(set.without(b'a'), set);
    }

    #[test]
    fn union_and_single() {
        let ab = ByteSet::single(b'a').union(ByteSet::single(b'b'));
        assert_eq!(ab.len(), 2);
        assert!(ab.contains(b'a') && ab.contains(b'b'));
    }
}
