//! Cycle-level simulator of the Cicero domain-specific architecture.
//!
//! Models both architectural organizations of the paper:
//!
//! * the **old** organization (§2.2, Figure 1): each engine has one
//!   *time-multiplexed* three-stage core serving `2^CC_ID` FIFOs, and a
//!   multi-engine ring with distributed *cross-engine* load balancing
//!   (thread transfers cost ≥ 2 cycles, Figure 4);
//! * the **new** organization (§4, Figure 3): one engine packs `2^CC_ID`
//!   cores, one per FIFO/window character, with *in-engine* balancing —
//!   a thread from FIFO `N` can only end up in FIFO `N` or `N+1`, so load
//!   spreads with no interconnect. Multi-engine variants connect only the
//!   last core to the ring (which is why they underperform, Table 5).
//!
//! Microarchitectural detail shared by both: a three-stage pipeline
//! (fetch / execute / second-split-push), a per-core direct-mapped
//! instruction cache backed by the engine's central instruction memory
//! through a single arbitrated port (this is what makes the compiler's
//! `D_offset` locality causally affect cycles, §5), per-character-slot
//! FIFOs with Thompson-set deduplication, and a lockstep window of
//! `2^CC_ID` input characters.
//!
//! The simulator is deterministic; [`simulate`] returns an [`ExecReport`]
//! with cycles, cache statistics, thread movements and the match verdict.
//! Batch drivers use [`simulate_batch`] (one machine, caches warm across
//! inputs, canonical per-run prefetch) or [`simulate_batch_parallel`]
//! (fixed worker pool, one machine per worker, byte-identical reports for
//! any worker count).
//! Analytic [`power`] and [`resources`] models (calibrated against the
//! paper's published numbers — see DESIGN.md) complete the evaluation
//! stack for Figures 12–15 and Tables 2/5/6.
//!
//! # Example
//!
//! ```
//! use cicero_sim::{simulate, ArchConfig};
//!
//! let program = cicero_core::compile("ab|cd").unwrap().into_program();
//! let report = simulate(&program, b"xxxxcdxx", &ArchConfig::new_organization(8, 1));
//! assert!(report.accepted);
//! assert!(report.cycles > 0);
//! ```

pub mod cache;
pub mod config;
pub mod machine;
pub mod power;
pub mod resources;
pub mod stats;
pub mod stream;
pub mod trace;

pub use cache::CacheCounters;
pub use config::{ArchConfig, CacheConfig, Organization};
pub use machine::{
    simulate, simulate_batch, simulate_batch_parallel, simulate_batch_parallel_stats,
    simulate_with_telemetry, InputRead, Machine, WorkerStats,
};
pub use power::power_watts;
pub use resources::{resource_usage, ResourceUsage, XCZU3EG};
pub use stats::ExecReport;
pub use stream::{simulate_streaming, StreamMachine, StreamStatus};
pub use trace::{render_trace, TraceEvent, TraceNote};
