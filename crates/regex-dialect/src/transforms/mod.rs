//! The high-level transformation sets of §3.2.
//!
//! Each set is an independent [`Pass`](mlir_lite::Pass), mirroring the
//! paper's "each transformation is optional and can be enabled or disabled
//! individually by toggling different compiler options":
//!
//! * [`CanonicalizePass`] — sub-regex simplification (set 1);
//! * [`FactorizeAlternationsPass`] — alternation prefix factorization
//!   (set 2);
//! * [`ShortestMatchPass`] — boundary quantifier reduction for any-match
//!   engines (set 3, the only semantics-changing one: it preserves *whether
//!   a match exists*, not the match extent);
//! * [`ShortestMatchLeadingPass`] — the symmetric reduction at the leading
//!   boundary, an extension beyond the paper (off by default).

mod factorize;
mod shortest_match;
mod simplify;

pub use factorize::FactorizeAlternationsPass;
pub use shortest_match::{ShortestMatchLeadingPass, ShortestMatchPass};
pub use simplify::CanonicalizePass;

use mlir_lite::PassManager;

/// Which high-level transformation sets to register (all on by default,
/// except the beyond-the-paper leading reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HighLevelOptions {
    /// Set 1: sub-regex simplification / canonicalization.
    pub canonicalize: bool,
    /// Set 2: alternation prefix factorization.
    pub factorize: bool,
    /// Set 3: shortest-match boundary quantifier reduction.
    pub shortest_match: bool,
    /// Extension: the same reduction at the leading boundary.
    pub shortest_match_leading: bool,
}

impl Default for HighLevelOptions {
    fn default() -> HighLevelOptions {
        HighLevelOptions {
            canonicalize: true,
            factorize: true,
            shortest_match: true,
            shortest_match_leading: false,
        }
    }
}

/// Register the enabled `regex`-dialect transforms on a pass manager, in
/// the paper's order (canonicalize → factorize → shortest-match), with a
/// trailing cleanup canonicalization when structural transforms ran.
///
/// This is the dialect's single registration point: every driver —
/// compiler, CLI, benchmarks — builds its high-level pipeline here, so
/// pass order and instrumentation hooks stay consistent.
pub fn build_pipeline(pm: &mut PassManager, options: &HighLevelOptions) {
    if options.canonicalize {
        pm.add_pass(Box::new(CanonicalizePass));
    }
    if options.factorize {
        pm.add_pass(Box::new(FactorizeAlternationsPass));
    }
    if options.shortest_match {
        pm.add_pass(Box::new(ShortestMatchPass));
    }
    if options.shortest_match_leading {
        pm.add_pass(Box::new(ShortestMatchLeadingPass));
    }
    if options.canonicalize && (options.factorize || options.shortest_match) {
        // Clean up wrappers the structural transforms introduce.
        pm.add_pass(Box::new(CanonicalizePass));
    }
}

#[cfg(test)]
mod equivalence_tests;

#[cfg(test)]
mod pipeline_tests {
    use super::*;

    #[test]
    fn default_pipeline_registers_all_paper_sets() {
        let mut pm = PassManager::new();
        build_pipeline(&mut pm, &HighLevelOptions::default());
        assert_eq!(pm.len(), 4); // canonicalize, factorize, shortest, cleanup
    }

    #[test]
    fn disabled_options_register_nothing() {
        let all_off = HighLevelOptions {
            canonicalize: false,
            factorize: false,
            shortest_match: false,
            shortest_match_leading: false,
        };
        let mut pm = PassManager::new();
        build_pipeline(&mut pm, &all_off);
        assert!(pm.is_empty());
    }
}
