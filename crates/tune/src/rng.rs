//! A tiny deterministic PRNG for the searcher.
//!
//! The vendored `rand` crate serves the workload generators; the tuner
//! carries its own SplitMix64 so its sampling sequence is pinned by this
//! crate alone — a `rand` implementation change can never silently change
//! which configs a given `--seed` visits (the determinism contract is
//! byte-identical `tune.toml` for identical seed/workload/budget).

/// SplitMix64 (Steele, Lea & Flood; the seeding PRNG of the xoshiro
/// family). Full 2^64 period, passes BigCrush, two lines of state-free
/// arithmetic.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire sequence is determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply trick (Lemire); the modulo bias is at
    /// most 2^-64 per draw — irrelevant for picking among a handful of
    /// axis values, and still perfectly deterministic.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "below(0) is meaningless");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_bounds_and_covers_small_ranges() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let draw = rng.below(5);
            assert!(draw < 5);
            seen[draw] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }
}
