//! **Parallel runtime** — batch-matching throughput vs. worker count on
//! the Table-2 workload, exported to `BENCH_parallel.json`.
//!
//! The scenario is serving traffic: `ROUNDS` rounds over each suite's
//! patterns, every request matching the suite's 500-byte chunks. Two
//! serving strategies are compared:
//!
//! * **sequential baseline** — the pre-runtime behavior: compile the
//!   pattern from scratch for every request, then walk the chunks one at
//!   a time on a single machine;
//! * **runtime** — the worker pool with the LRU program cache: the first
//!   round compiles (cache misses), later rounds hit, and each batch is
//!   spread over `N` per-worker machines.
//!
//! Two throughput views are reported, because they answer different
//! questions:
//!
//! * *aggregate (simulated)* — total bytes over the batch **makespan** in
//!   simulated time (the slowest worker's cycles per batch, summed over
//!   requests). Each worker owns an independent `Machine`, i.e. models
//!   its own engine array instance, so `N` workers are `N` replicated
//!   accelerators chewing chunks concurrently — the paper's Table-2
//!   scaling axis applied to chunk-level parallelism. This is the
//!   headline "aggregate throughput" number.
//! * *host (wall-clock)* — bytes over host seconds for the whole sweep.
//!   The cache's compile amortization shows up here. Worker scaling only
//!   shows on a multicore host; the JSON records `host_cpus` so readers
//!   can interpret the column, and on a host with ≥ 4 CPUs the bench
//!   *asserts* ≥ `HOST_SPEEDUP_FLOOR`× wall-clock scaling at 4 workers.
//!
//! A third sweep runs the same workload on the **host-native backend**
//! (the bit-parallel NFA engine): there the engine *is* the host CPU, so
//! wall-clock is the only throughput view, and its rows land in
//! `host_backend_rows`. Every JSON row records the `host_cpus` it was
//! measured on, and host-scaling assertions are skipped (and marked via
//! `host_speedup_asserted: false`) on hosts with fewer than 4 CPUs, so a
//! result produced on a pinned single core cannot masquerade as a
//! scaling measurement.
//!
//! Scale via `CICERO_BENCH_SCALE` (quick/default/full); output path via
//! `CICERO_BENCH_PARALLEL` (empty to disable, default
//! `BENCH_parallel.json`).

use std::fmt::Write as _;
use std::time::Instant;

use cicero_bench::{banner, f2, suites, Scale, Table};
use cicero_core::Backend;
use cicero_runtime::{Budget, Runtime, RuntimeOptions};
use cicero_sim::{simulate_batch, ArchConfig};

/// Serving rounds per suite: one cold round, the rest cache hits.
const ROUNDS: usize = 3;
/// Worker counts measured (the acceptance point is 4).
const WORKERS: [usize; 4] = [1, 2, 4, 8];
/// Minimum wall-clock speedup at 4 workers vs 1, asserted only on a
/// host with >= 4 CPUs (thread scaling cannot show on a pinned core).
const HOST_SPEEDUP_FLOOR: f64 = 1.5;

struct Row {
    suite: &'static str,
    jobs: usize,
    sim_mbps: f64,
    sim_speedup: f64,
    host_kbps: f64,
    host_speedup: f64,
    cache_hit_rate: f64,
}

/// One measurement of the host-native backend: the same serving sweep,
/// but executed by the bit-parallel host engine instead of the cycle
/// simulator, so the only throughput view is wall-clock.
struct HostRow {
    suite: &'static str,
    jobs: usize,
    wall_mbps: f64,
    speedup_vs_1_worker: f64,
}

fn main() {
    let mut scale = Scale::from_env();
    // Serving wants wide batches (so 8 workers have work) more than many
    // patterns; cap/floor the Table-2 scale accordingly.
    scale.patterns = scale.patterns.min(8);
    scale.chunks = scale.chunks.max(8);
    banner("Parallel", "runtime batch throughput vs worker count (Table-2 workload)", scale);
    let config = ArchConfig::new_organization(16, 1);
    let clock_hz = config.clock_mhz() * 1e6;
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);

    let mut rows: Vec<Row> = Vec::new();
    for bench in suites(scale) {
        let request_bytes: usize = bench.chunks.iter().map(Vec::len).sum();
        let total_bytes = ROUNDS * bench.patterns.len() * request_bytes;

        // Sequential compile-per-request baseline (pre-runtime behavior).
        let start = Instant::now();
        let mut baseline_cycles = 0u64;
        for _ in 0..ROUNDS {
            for pattern in &bench.patterns {
                let program = cicero_core::compile(pattern).expect("suite compiles").into_program();
                for report in simulate_batch(&program, &bench.chunks, &config) {
                    baseline_cycles += report.cycles;
                }
            }
        }
        let baseline_host = total_bytes as f64 / start.elapsed().as_secs_f64();
        let baseline_sim = total_bytes as f64 / (baseline_cycles as f64 / clock_hz);

        for jobs in WORKERS {
            let runtime = Runtime::new(RuntimeOptions { jobs, ..RuntimeOptions::default() });
            let start = Instant::now();
            let mut makespan_cycles = 0u64;
            for _ in 0..ROUNDS {
                for pattern in &bench.patterns {
                    let batch = runtime
                        .match_batch(pattern, &bench.chunks, &config)
                        .expect("suite compiles");
                    makespan_cycles += batch.workers.iter().map(|w| w.cycles).max().unwrap_or(0);
                }
            }
            let host_bps = total_bytes as f64 / start.elapsed().as_secs_f64();
            let sim_bps = total_bytes as f64 / (makespan_cycles as f64 / clock_hz);
            rows.push(Row {
                suite: bench.name,
                jobs,
                sim_mbps: sim_bps / 1e6,
                sim_speedup: sim_bps / baseline_sim,
                host_kbps: host_bps / 1e3,
                host_speedup: host_bps / baseline_host,
                cache_hit_rate: runtime.cache().stats().hit_rate(),
            });
        }
    }

    // The same serving sweep on the host-native backend: the workers run
    // the bit-parallel NFA engine instead of the cycle simulator, so the
    // only throughput view is wall-clock — the axis that actually scales
    // with worker threads (on a multicore host).
    let mut host_rows: Vec<HostRow> = Vec::new();
    for bench in suites(scale) {
        let request_bytes: usize = bench.chunks.iter().map(Vec::len).sum();
        let total_bytes = ROUNDS * bench.patterns.len() * request_bytes;
        let mut mbps_at_1 = 0.0f64;
        for jobs in WORKERS {
            let runtime = Runtime::new(RuntimeOptions { jobs, ..RuntimeOptions::default() });
            let start = Instant::now();
            for _ in 0..ROUNDS {
                for pattern in &bench.patterns {
                    runtime
                        .match_batch_guarded_traced_on(
                            Backend::Host,
                            pattern,
                            &bench.chunks,
                            &config,
                            &Budget::default(),
                            None,
                        )
                        .expect("suite compiles");
                }
            }
            let wall_mbps = total_bytes as f64 / start.elapsed().as_secs_f64() / 1e6;
            if jobs == 1 {
                mbps_at_1 = wall_mbps;
            }
            host_rows.push(HostRow {
                suite: bench.name,
                jobs,
                wall_mbps,
                speedup_vs_1_worker: wall_mbps / mbps_at_1,
            });
        }
    }

    let mut table = Table::new(vec![
        "Suite",
        "Workers",
        "Agg MB/s",
        "Speedup",
        "Host KB/s",
        "Speedup",
        "Cache hit%",
    ]);
    for row in &rows {
        table.row(vec![
            row.suite.to_owned(),
            row.jobs.to_string(),
            f2(row.sim_mbps),
            f2(row.sim_speedup),
            format!("{:.0}", row.host_kbps),
            f2(row.host_speedup),
            format!("{:.0}", row.cache_hit_rate * 100.0),
        ]);
    }
    table.print();

    let mut host_table =
        Table::new(vec!["Suite", "Workers", "Host backend MB/s", "Speedup vs 1 worker"]);
    for row in &host_rows {
        host_table.row(vec![
            row.suite.to_owned(),
            row.jobs.to_string(),
            f2(row.wall_mbps),
            f2(row.speedup_vs_1_worker),
        ]);
    }
    println!("\n  host-native backend (wall-clock only; scaling needs host_cpus > 1):");
    host_table.print();

    let at4: Vec<f64> = rows.iter().filter(|r| r.jobs == 4).map(|r| r.sim_speedup).collect();
    let speedup_at_4 = at4.iter().sum::<f64>() / at4.len() as f64;
    println!(
        "\n  aggregate throughput at 4 workers: {}x the sequential baseline \
         (acceptance floor 1.5x)",
        f2(speedup_at_4)
    );

    // Host (wall-clock) scaling: 4 workers vs 1 worker, averaged over
    // suites. Only meaningful — and only asserted — on a multicore host;
    // a single-core container records the ratio for the record.
    let host_at = |jobs: usize| -> f64 {
        let v: Vec<f64> = rows.iter().filter(|r| r.jobs == jobs).map(|r| r.host_kbps).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let host_speedup_at_4 = host_at(4) / host_at(1);
    let host_speedup_asserted = host_cpus >= 4;
    println!(
        "  host columns measured on {host_cpus} CPU(s): 4-worker wall-clock speedup {}x \
         (floor {HOST_SPEEDUP_FLOOR}x, asserted only when host_cpus >= 4)",
        f2(host_speedup_at_4)
    );
    if host_speedup_asserted {
        assert!(
            host_speedup_at_4 >= HOST_SPEEDUP_FLOOR,
            "multi-core host must show >= {HOST_SPEEDUP_FLOOR}x wall-clock scaling at 4 workers, \
             got {host_speedup_at_4:.2}x"
        );
    } else {
        println!(
            "  host-scaling assertion SKIPPED: host_cpus = {host_cpus} < 4 \
             (thread scaling cannot show on a pinned core)"
        );
    }

    // Host-backend wall-clock scaling at 4 workers, same gating.
    let host_backend_at = |jobs: usize| -> f64 {
        let v: Vec<f64> =
            host_rows.iter().filter(|r| r.jobs == jobs).map(|r| r.wall_mbps).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let host_backend_speedup_at_4 = host_backend_at(4) / host_backend_at(1);
    println!(
        "  host-native backend 4-worker wall-clock speedup: {}x \
         (asserted only when host_cpus >= 4)",
        f2(host_backend_speedup_at_4)
    );
    if host_speedup_asserted {
        assert!(
            host_backend_speedup_at_4 >= HOST_SPEEDUP_FLOOR,
            "multi-core host must show >= {HOST_SPEEDUP_FLOOR}x host-backend scaling at 4 \
             workers, got {host_backend_speedup_at_4:.2}x"
        );
    }

    let path =
        std::env::var("CICERO_BENCH_PARALLEL").unwrap_or_else(|_| "BENCH_parallel.json".to_owned());
    if !path.is_empty() {
        let json = render_json(
            &rows,
            &host_rows,
            &config,
            host_cpus,
            speedup_at_4,
            host_speedup_at_4,
            host_backend_speedup_at_4,
            host_speedup_asserted,
        );
        match std::fs::write(&path, json) {
            Ok(()) => println!("\n  results written to {path}"),
            Err(e) => eprintln!("  warning: could not write {path}: {e}"),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    rows: &[Row],
    host_rows: &[HostRow],
    config: &ArchConfig,
    host_cpus: usize,
    speedup_at_4: f64,
    host_speedup_at_4: f64,
    host_backend_speedup_at_4: f64,
    host_speedup_asserted: bool,
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"parallel_runtime\",\n");
    let _ = writeln!(json, "  \"config\": \"{}\",", config.name());
    let _ = writeln!(json, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str(
        "  \"notes\": \"aggregate_* is simulated: total bytes over the per-batch makespan \
         (slowest worker's cycles), i.e. N workers model N replicated engine arrays; host_* \
         is wall-clock and reflects the program cache (thread scaling needs host_cpus > \
         1); the baseline compiles every request and runs chunks sequentially; every row \
         records the host_cpus it was measured on, and host-scaling assertions are skipped \
         (host_speedup_asserted = false) on hosts with fewer than 4 CPUs; host_backend_rows \
         run the same sweep on the bit-parallel host-native engine, where wall-clock is the \
         only throughput view\",\n",
    );
    let _ = writeln!(json, "  \"aggregate_speedup_at_4_workers\": {speedup_at_4:.3},");
    let _ = writeln!(json, "  \"host_speedup_at_4_workers\": {host_speedup_at_4:.3},");
    let _ =
        writeln!(json, "  \"host_backend_speedup_at_4_workers\": {host_backend_speedup_at_4:.3},");
    let _ = writeln!(json, "  \"host_speedup_asserted\": {host_speedup_asserted},");
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"suite\": \"{}\", \"workers\": {}, \"host_cpus\": {}, \
             \"config_source\": \"default\", \
             \"aggregate_throughput_mbps\": {:.3}, \
             \"aggregate_speedup_vs_sequential_baseline\": {:.3}, \
             \"host_throughput_kbps\": {:.1}, \
             \"host_speedup_vs_sequential_baseline\": {:.3}, \
             \"cache_hit_rate\": {:.3}}}",
            row.suite,
            row.jobs,
            host_cpus,
            row.sim_mbps,
            row.sim_speedup,
            row.host_kbps,
            row.host_speedup,
            row.cache_hit_rate,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"host_backend_rows\": [\n");
    for (i, row) in host_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"suite\": \"{}\", \"workers\": {}, \"host_cpus\": {}, \
             \"config_source\": \"default\", \
             \"wall_throughput_mbps\": {:.3}, \"speedup_vs_1_worker\": {:.3}}}",
            row.suite, row.jobs, host_cpus, row.wall_mbps, row.speedup_vs_1_worker,
        );
        json.push_str(if i + 1 < host_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}
