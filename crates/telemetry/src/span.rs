//! Span tracing: nested wall-clock regions with annotations.

use std::time::Duration;

use crate::{Telemetry, Value};

/// A finished (or still-open) span as stored in the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, e.g. `pass:regex-canonicalize`.
    pub name: String,
    /// Start time relative to the collector's creation.
    pub start: Duration,
    /// Wall-clock duration (zero until the span closes).
    pub duration: Duration,
    /// Nesting depth at open time (0 = root).
    pub depth: usize,
    /// Key/value annotations, in insertion order.
    pub attrs: Vec<(String, Value)>,
    /// Whether the span has closed.
    pub closed: bool,
}

/// An open span; records its duration when dropped.
///
/// Obtained from [`Telemetry::span`]. Annotations can be attached at any
/// point before the span closes.
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    index: usize,
    start: std::time::Instant,
}

pub(crate) fn enter(telemetry: Telemetry, name: String) -> Span {
    let start = std::time::Instant::now();
    let index = {
        let mut inner = telemetry.lock();
        let depth = inner.open.len();
        let rel_start = start.duration_since(inner.epoch);
        let index = inner.spans.len();
        inner.spans.push(SpanRecord {
            name,
            start: rel_start,
            duration: Duration::ZERO,
            depth,
            attrs: Vec::new(),
            closed: false,
        });
        inner.open.push(index);
        index
    };
    Span { telemetry, index, start }
}

impl Span {
    /// Attach a key/value annotation.
    pub fn annotate(&self, key: impl Into<String>, value: impl Into<Value>) {
        let mut inner = self.telemetry.lock();
        let record = &mut inner.spans[self.index];
        record.attrs.push((key.into(), value.into()));
    }

    /// Close the span now (equivalent to dropping it).
    pub fn close(self) {}

    /// The span's name.
    pub fn name(&self) -> String {
        self.telemetry.lock().spans[self.index].name.clone()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let mut inner = self.telemetry.lock();
        let record = &mut inner.spans[self.index];
        record.duration = elapsed;
        record.closed = true;
        // Tolerate out-of-order drops: remove this span wherever it sits
        // in the open stack.
        inner.open.retain(|open| *open != self.index);
    }
}
