//! Regression tests for the `cicero` binary's flag handling.
//!
//! These drive the compiled binary itself (via `CARGO_BIN_EXE_cicero`),
//! because the bugs they pin down lived in `parse_flags` registration —
//! exactly the layer unit tests of the library can't see.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cicero(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cicero"))
        .args(args)
        .output()
        .expect("running the cicero binary")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn temp_file(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("cicero-cli-test-{}-{name}", std::process::id()));
    path
}

/// The long spellings `--O0` and `--output FILE` were documented but never
/// registered with the flag parser, so `compile` rejected them as unknown
/// flags. This is the issue's acceptance-criterion invocation.
#[test]
fn compile_accepts_long_o0_and_output_flags() {
    let out_path = temp_file("long-flags.bin");
    let output = cicero(&[
        "compile",
        "ab|cd",
        "--O0",
        "--emit",
        "bin",
        "--output",
        out_path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let bytes = std::fs::read(&out_path).expect("compile wrote the output file");
    assert!(!bytes.is_empty());
    std::fs::remove_file(&out_path).ok();
}

/// The short spellings must keep working, and produce the same artifact.
#[test]
fn compile_short_and_long_flags_are_equivalent() {
    let short_path = temp_file("short.bin");
    let long_path = temp_file("long.bin");
    let short =
        cicero(&["compile", "a+b", "-O0", "--emit", "bin", "-o", short_path.to_str().unwrap()]);
    let long = cicero(&[
        "compile",
        "a+b",
        "--O0",
        "--emit",
        "bin",
        "--output",
        long_path.to_str().unwrap(),
    ]);
    assert!(short.status.success(), "stderr: {}", stderr(&short));
    assert!(long.status.success(), "stderr: {}", stderr(&long));
    assert_eq!(
        std::fs::read(&short_path).unwrap(),
        std::fs::read(&long_path).unwrap(),
        "-O0/-o and --O0/--output must emit identical binaries"
    );
    std::fs::remove_file(&short_path).ok();
    std::fs::remove_file(&long_path).ok();
}

/// Genuinely unknown flags must still be rejected.
#[test]
fn unknown_flags_are_still_rejected() {
    let output = cicero(&["compile", "ab", "--no-such-flag"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("unknown flag"));
}

/// `--` ends flag parsing: patterns that start with a dash become
/// expressible instead of being rejected as unknown flags.
#[test]
fn double_dash_separator_passes_dash_patterns_through() {
    let rejected = cicero(&["run", "--text", "a--b", "--b"]);
    assert!(!rejected.status.success(), "`--`-pattern without the separator is a flag error");

    let output = cicero(&["run", "--text", "a--b", "--", "--b"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("MATCH"), "stdout: {}", stdout(&output));

    // Single-dash patterns work too, and flags after `--` are positional.
    let output = cicero(&["run", "--text", "a-b", "--", "-b"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("MATCH"), "stdout: {}", stdout(&output));
    let extra = cicero(&["run", "--", "-b", "--text", "a-b"]);
    assert!(!extra.status.success(), "everything after `--` is positional");
}

/// `run --jobs N` must print the same verdict/cycle totals for every
/// worker count — the runtime's determinism guarantee, observed end to
/// end through the CLI.
#[test]
fn run_jobs_output_is_identical_for_every_worker_count() {
    let text = format!("{}ab{}cd", "x".repeat(700), "y".repeat(600));
    let outputs: Vec<String> = [1, 2, 4]
        .iter()
        .map(|jobs| {
            let output = cicero(&["run", "ab|cd", "--text", &text, "--jobs", &jobs.to_string()]);
            assert!(output.status.success(), "stderr: {}", stderr(&output));
            // Strip host-dependent lines (wall clock, worker count).
            stdout(&output)
                .lines()
                .filter(|l| !l.starts_with("host wall") && !l.starts_with("batch"))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    assert!(outputs[0].contains("MATCH"), "output: {}", outputs[0]);
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

/// `scan --jobs N` reports which pattern of the set matched.
#[test]
fn scan_jobs_reports_per_pattern_matches() {
    let text = format!("{}cd", "x".repeat(600));
    let output = cicero(&["scan", "ab", "cd", "--text", &text, "--jobs", "2"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let stdout = stdout(&output);
    assert!(stdout.contains("MATCH: pattern 1"), "stdout: {stdout}");
    assert!(stdout.contains("\"cd\""), "stdout: {stdout}");
}

/// `--jobs` values must be numeric.
#[test]
fn run_jobs_rejects_non_numeric_values() {
    let output = cicero(&["run", "ab", "--text", "ab", "--jobs", "lots"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("is not a number"));
}

/// `--jobs 0` historically meant "all host cores", which reads as "no
/// workers"; it is now rejected in favour of the explicit `auto`.
#[test]
fn jobs_zero_is_rejected_with_a_pointer_to_auto() {
    for subcommand in [&["run", "ab", "--text", "ab"][..], &["scan", "ab", "--text", "ab"][..]] {
        let mut args = subcommand.to_vec();
        args.extend(["--jobs", "0"]);
        let output = cicero(&args);
        assert!(!output.status.success(), "{args:?} must fail");
        let err = stderr(&output);
        assert!(err.contains("--jobs 0 is ambiguous"), "stderr: {err}");
        assert!(err.contains("--jobs auto"), "stderr: {err}");
    }
}

/// `--jobs auto` is the supported spelling for "all host cores".
#[test]
fn jobs_auto_uses_all_host_cores() {
    let output = cicero(&["run", "ab|cd", "--text", "xxabyy", "--jobs", "auto"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("MATCH"), "stdout: {}", stdout(&output));
}

/// Unknown flags name the flag and print usage, on every subcommand.
#[test]
fn unknown_flag_errors_name_the_flag_and_show_usage() {
    for args in [
        &["run", "ab", "--frobnicate"][..],
        &["scan", "ab", "--frobnicate", "--text", "x"][..],
        &["difftest", "--frobnicate"][..],
    ] {
        let output = cicero(args);
        assert!(!output.status.success(), "{args:?} must fail");
        let err = stderr(&output);
        assert!(err.contains("unknown flag `--frobnicate`"), "stderr: {err}");
        assert!(err.contains("USAGE"), "unknown-flag errors include usage; stderr: {err}");
    }
}

/// A flag-like pattern after `--` must reach the matcher verbatim even
/// when it collides with a *registered* flag name.
#[test]
fn double_dash_passes_registered_flag_names_as_patterns() {
    // `--jobs` is a registered value flag of `run`; after `--` it is a
    // pattern. `--text` provides input containing the literal `--jobs`.
    let output = cicero(&["run", "--text", "x--jobsx", "--", "--jobs"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("MATCH"), "stdout: {}", stdout(&output));

    // And `--` itself can precede a pattern that is only dashes.
    let output = cicero(&["run", "--text", "a---b", "--", "---"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("MATCH"), "stdout: {}", stdout(&output));
}

/// `scan --stream` must print the same verdict and cycle count as the
/// whole-input scan, for any chunk size — the chunk-split-invariance
/// contract observed end to end through the CLI.
#[test]
fn scan_stream_verdict_matches_whole_input_scan() {
    let text = format!("{}cd{}", "x".repeat(300), "y".repeat(100));
    let whole = cicero(&["scan", "ab", "cd", "--text", &text]);
    assert!(whole.status.success(), "stderr: {}", stderr(&whole));
    let whole_verdict = stdout(&whole);
    for chunk_size in ["1", "7", "64", "100000"] {
        let streamed =
            cicero(&["scan", "ab", "cd", "--text", &text, "--stream", "--chunk-size", chunk_size]);
        assert!(streamed.status.success(), "stderr: {}", stderr(&streamed));
        let out = stdout(&streamed);
        // The streamed verdict line carries the same pattern id and cycle
        // count the whole-input scan printed.
        let verdict = out.lines().find(|l| l.starts_with("verdict")).unwrap();
        assert!(verdict.contains("MATCH: pattern 1"), "chunk {chunk_size}: {out}");
        let cycles = whole_verdict.split("in ").nth(1).unwrap();
        assert!(verdict.contains(cycles.trim()), "chunk {chunk_size}: {verdict} vs {cycles}");
    }
}

/// `scan --stream --input FILE` processes a file much larger than the
/// chunk size, and reports a bounded peak buffer.
#[test]
fn scan_stream_handles_files_larger_than_the_chunk_size() {
    let path = temp_file("stream-large.txt");
    let mut data = vec![b'q'; 256 * 1024];
    data.extend_from_slice(b"needle");
    std::fs::write(&path, &data).unwrap();
    let output = cicero(&[
        "scan",
        "needle",
        "--input",
        path.to_str().unwrap(),
        "--stream",
        "--chunk-size",
        "4096",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let out = stdout(&output);
    assert!(out.contains("MATCH: pattern 0"), "stdout: {out}");
    let peak: usize = out
        .split("peak buffer ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .and_then(|n| n.parse().ok())
        .expect("peak buffer reported");
    assert!(peak < 16 * 1024, "peak buffer {peak} not bounded by the chunk size");
    std::fs::remove_file(&path).ok();
}

/// `--chunk-size 0` is rejected with a clean error, not a hang or panic.
#[test]
fn scan_stream_rejects_chunk_size_zero() {
    let output = cicero(&["scan", "ab", "--text", "x", "--stream", "--chunk-size", "0"]);
    assert!(!output.status.success());
    let err = stderr(&output);
    assert!(err.contains("--chunk-size 0"), "stderr: {err}");
    assert!(err.contains("at least 1 byte"), "stderr: {err}");
}

/// An unreadable `--input` path produces a clean error naming the path —
/// on the whole-input path and the streaming path alike.
#[test]
fn scan_errors_cleanly_on_unreadable_input_paths() {
    let missing = "/nonexistent/cicero-cli-test/input.txt";
    for extra in [&[][..], &["--stream"][..]] {
        let mut args = vec!["scan", "ab", "--input", missing];
        args.extend_from_slice(extra);
        let output = cicero(&args);
        assert!(!output.status.success(), "{args:?} must fail");
        let err = stderr(&output);
        assert!(err.starts_with("error:"), "{args:?} stderr: {err}");
        assert!(err.contains(missing), "error must name the path; stderr: {err}");
    }
}

/// Streaming-only flags are rejected outside `--stream`, and `--stream`
/// cannot be combined with the batch runtime.
#[test]
fn scan_stream_flag_combinations_are_validated() {
    let output = cicero(&["scan", "ab", "--text", "x", "--chunk-size", "8"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("only applies to `scan --stream`"));

    let output = cicero(&["scan", "ab", "--text", "x", "--stream", "--jobs", "2"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("--stream and --jobs"));
}

/// An exhausted fuel budget exits non-zero with a budget error naming the
/// partial progress, instead of hanging on a pathological pattern.
#[test]
fn scan_stream_fuel_budget_exits_with_a_clean_error() {
    let text = "z".repeat(4096);
    let output = cicero(&[
        "scan",
        "ab|cd",
        "--text",
        &text,
        "--stream",
        "--chunk-size",
        "64",
        "--fuel",
        "16",
    ]);
    assert!(!output.status.success(), "a cut-off stream is an error exit");
    assert!(stderr(&output).contains("fuel budget exceeded"), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("partial"), "stdout: {}", stdout(&output));
}

/// `cicero difftest` smoke test: a tiny seeded run over the committed
/// corpus plus fresh fuzzing, exercising the full subcommand path.
#[test]
fn difftest_subcommand_runs_clean() {
    let output = cicero(&["difftest", "--seed", "7", "--iters", "25", "--stream-splits", "2"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let out = stdout(&output);
    assert!(out.contains("corpus"), "stdout: {out}");
    assert!(out.contains("divergences: 0"), "stdout: {out}");
}

/// The difftest subcommand validates its flags.
#[test]
fn difftest_rejects_bad_flag_values() {
    let output = cicero(&["difftest", "--seed", "banana"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("--seed `banana` is not a number"));

    let output = cicero(&["difftest", "--jobs", "0"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("--jobs 0 is ambiguous"));

    let output = cicero(&["difftest", "stray-positional"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("no positional arguments"));

    let output = cicero(&["difftest", "--stream-splits", "many"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("--stream-splits `many` is not a number"));
}

/// Difftest exports its `difftest.*` telemetry counters via `--metrics`.
#[test]
fn difftest_exports_telemetry_counters() {
    let path = temp_file("difftest-metrics.jsonl");
    let output = cicero(&[
        "difftest",
        "--seed",
        "5",
        "--iters",
        "10",
        "--no-replay",
        "--metrics",
        path.to_str().unwrap(),
        "--metrics-format",
        "jsonl",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let metrics = std::fs::read_to_string(&path).expect("metrics file written");
    assert!(metrics.contains("difftest.patterns"), "metrics: {metrics}");
    assert!(metrics.contains("difftest.cases"), "metrics: {metrics}");
    std::fs::remove_file(&path).ok();
}

/// `cicero trace` renders one connected span tree for a traced set-scan:
/// compile with per-pass children, execute with per-worker sim spans.
#[test]
fn trace_renders_a_span_tree_with_passes_and_workers() {
    let output = cicero(&[
        "trace",
        "GET /",
        "POST /",
        "--text",
        "GET /index POST /submit",
        "--request-id",
        "cli-tree",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let tree = stdout(&output);
    assert!(tree.starts_with("trace cli-tree"), "{tree}");
    for expect in ["request", "compile", "pass:", "execute", "sim.worker-0", "cycles="] {
        assert!(tree.contains(expect), "missing {expect} in:\n{tree}");
    }
}

/// `--export chrome -o FILE` writes a Perfetto-loadable trace_event
/// document; `--export json` emits the span-tree JSON schema.
#[test]
fn trace_exports_chrome_and_json_documents() {
    let path = temp_file("trace.chrome.json");
    let output = cicero(&[
        "trace",
        "ab|cd",
        "--text",
        "xxcdxx",
        "--export",
        "chrome",
        "-o",
        path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let chrome = std::fs::read_to_string(&path).expect("chrome export written");
    std::fs::remove_file(&path).ok();
    assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
    assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    assert!(chrome.contains("\"displayTimeUnit\":\"ms\""), "{chrome}");

    let output = cicero(&["trace", "ab", "--text", "ab", "--export", "json"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let json = stdout(&output);
    assert!(json.contains("\"request_id\":\"cli-trace\""), "{json}");
    assert!(json.contains("\"spans\":["), "{json}");

    let output = cicero(&["trace", "ab", "--text", "ab", "--export", "bogus"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("unknown export kind"));
}

/// `--backend host` runs the host-native engine: same verdict and match
/// position as the simulator, throughput instead of cycles, and the
/// summary names the engine tier the lowering picked.
#[test]
fn run_backend_host_agrees_with_sim_on_verdict_and_position() {
    let sim = cicero(&["run", "th(is|at|ose)", "--text", "take that!"]);
    assert!(sim.status.success(), "stderr: {}", stderr(&sim));
    let host = cicero(&["run", "th(is|at|ose)", "--text", "take that!", "--backend", "host"]);
    assert!(host.status.success(), "stderr: {}", stderr(&host));
    let (sim, host) = (stdout(&sim), stdout(&host));
    assert!(sim.contains("verdict    : MATCH"), "sim: {sim}");
    assert!(host.contains("verdict    : MATCH"), "host: {host}");
    assert!(host.contains("backend    : host (bit64"), "host: {host}");
    // Same earliest match end on both backends.
    assert!(sim.contains("match ends : 9"), "sim: {sim}");
    assert!(host.contains("match ends : 9"), "host: {host}");
    assert!(!host.contains("cycles"), "the host engine has no cycle model: {host}");
}

/// `scan --jobs --backend host` reports the same per-pattern counts as
/// the sim path, through the guarded host worker pool.
#[test]
fn scan_backend_host_counts_match_the_sim_path() {
    let text = format!("{}cd{}ab", "x".repeat(600), "y".repeat(600));
    let sim = cicero(&["scan", "ab", "cd", "--text", &text, "--jobs", "2"]);
    let host = cicero(&["scan", "ab", "cd", "--text", &text, "--jobs", "2", "--backend", "host"]);
    assert!(sim.status.success(), "stderr: {}", stderr(&sim));
    assert!(host.status.success(), "stderr: {}", stderr(&host));
    let (sim, host) = (stdout(&sim), stdout(&host));
    for expect in
        ["MATCH: pattern 0 (\"ab\") in 1 chunk(s)", "MATCH: pattern 1 (\"cd\") in 1 chunk(s)"]
    {
        assert!(sim.contains(expect), "sim: {sim}");
        assert!(host.contains(expect), "host: {host}");
    }
}

/// `scan --stream --backend host` concludes with the same verdict as the
/// sim stream, reporting bytes instead of cycles.
#[test]
fn scan_stream_backend_host_reports_bytes() {
    let output = cicero(&["scan", "ab", "--text", "xxabyy", "--stream", "--backend", "host"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let stdout = stdout(&output);
    assert!(stdout.contains("MATCH: pattern 0 (\"ab\") in 4 bytes"), "stdout: {stdout}");
}

/// Garbage `--backend` values are rejected with the expected spellings.
#[test]
fn backend_flag_rejects_unknown_values() {
    for cmd in [
        &["run", "ab", "--text", "ab", "--backend", "fpga"][..],
        &["serve", "--backend", "fpga"][..],
    ] {
        let output = cicero(cmd);
        assert!(!output.status.success());
        assert!(stderr(&output).contains("unknown backend `fpga`"), "{}", stderr(&output));
    }
}

/// The registry-client flags validate before any socket is touched:
/// `--addr` is meaningless without `--ruleset`, patterns cannot be mixed
/// with `--ruleset`, and the `ruleset` subcommand rejects unknown verbs.
#[test]
fn ruleset_client_flags_are_validated_offline() {
    let output = cicero(&["scan", "ab", "--text", "x", "--addr", "127.0.0.1:1"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("--addr only applies"), "{}", stderr(&output));

    let output =
        cicero(&["scan", "ab", "--ruleset", "web", "--text", "x", "--addr", "127.0.0.1:1"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("drop the positional patterns"), "{}", stderr(&output));

    let output = cicero(&["scan", "--ruleset", "web", "--text", "x", "--jobs", "2"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("the server owns the runtime"), "{}", stderr(&output));

    let output = cicero(&["ruleset", "install", "web", "ab"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("unknown ruleset subcommand"), "{}", stderr(&output));

    let output = cicero(&["ruleset", "put", "web"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("at least one pattern"), "{}", stderr(&output));
}

/// The tenant-governor serve flags parse and reject garbage without
/// binding a listener.
#[test]
fn serve_tenant_flags_are_validated() {
    for (flag, value) in
        [("--tenant-quota", "many"), ("--tenant-rate", "-1"), ("--tenant-burst", "NaN")]
    {
        let output = cicero(&["serve", flag, value]);
        assert!(!output.status.success(), "{flag} {value} must be rejected");
        assert!(stderr(&output).contains(flag), "{}", stderr(&output));
    }
}

/// Satellite of the tuning issue: a value-taking flag given twice is a
/// hard error, not silent first-one-wins.
#[test]
fn duplicate_value_flags_are_rejected() {
    let output = cicero(&["run", "ab", "--text", "ab", "--jobs", "2", "--jobs", "3"]);
    assert!(!output.status.success(), "duplicate --jobs must be rejected");
    assert!(stderr(&output).contains("--jobs given more than once"), "{}", stderr(&output));

    // The `-o` shorthand and `--output` long form are one flag.
    let output = cicero(&["compile", "ab", "-o", "/tmp/x.bin", "--output", "/tmp/y.bin"]);
    assert!(!output.status.success(), "-o plus --output must be rejected");
    assert!(stderr(&output).contains("--output given more than once"), "{}", stderr(&output));

    // Boolean flags stay idempotent: repeating them is harmless.
    let output = cicero(&["run", "ab", "--text", "ab", "--old", "--old"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
}

fn golden_tune_toml() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/crates/tune/testdata/golden.toml")
}

/// `cicero tune --seed N` is reproducible: the same seed, workload, and
/// eval budget write byte-identical tune.toml files (the issue's
/// acceptance criterion).
#[test]
fn tune_is_deterministic_given_a_seed() {
    let a_path = temp_file("tune-a.toml");
    let b_path = temp_file("tune-b.toml");
    for path in [&a_path, &b_path] {
        let output = cicero(&[
            "tune",
            "--budget",
            "8",
            "--seed",
            "7",
            "--out",
            path.to_str().unwrap(),
            "--",
            "ab+c",
            "th(is|at)",
        ]);
        assert!(output.status.success(), "stderr: {}", stderr(&output));
    }
    let a = std::fs::read(&a_path).expect("first tune.toml");
    let b = std::fs::read(&b_path).expect("second tune.toml");
    assert_eq!(a, b, "same seed + workload + budget must write identical bytes");
    std::fs::remove_file(&a_path).ok();
    std::fs::remove_file(&b_path).ok();
}

/// `--tuned-config` supplies the defaults; explicit flags still win.
#[test]
fn tuned_config_sets_defaults_and_explicit_flags_override() {
    // The committed golden file pins an old-organization 1x8 machine.
    let output = cicero(&["run", "ab+c", "--text", "xabbc", "--tuned-config", golden_tune_toml()]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("OLD 1x8"), "tuned arch must apply: {text}");
    assert!(text.contains("MATCH"), "{text}");

    // An explicit --config beats the tuned file.
    let output = cicero(&[
        "run",
        "ab+c",
        "--text",
        "xabbc",
        "--tuned-config",
        golden_tune_toml(),
        "--config",
        "16x1",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("NEW 16x1"), "{}", stdout(&output));

    // scan accepts the file too (set compilation under the tuned options).
    let output = cicero(&[
        "scan",
        "ab+c",
        "th(is|at)",
        "--text",
        "this abbc",
        "--tuned-config",
        golden_tune_toml(),
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("MATCH"), "{}", stdout(&output));
}

/// A tuned config that fails validation aborts the command — and `serve`
/// must refuse to start (no "listening on" line) rather than fall back
/// to defaults.
#[test]
fn bad_tuned_config_refuses_to_run() {
    let bad_path = temp_file("bad-tune.toml");
    std::fs::write(&bad_path, "version = 99\n").unwrap();
    for subcommand in ["run", "scan"] {
        let output = cicero(&[
            subcommand,
            "ab",
            "--text",
            "ab",
            "--tuned-config",
            bad_path.to_str().unwrap(),
        ]);
        assert!(!output.status.success(), "{subcommand} must reject the bad file");
        assert!(stderr(&output).contains("unsupported tune.toml version"), "{}", stderr(&output));
    }
    let output = cicero(&["serve", "--tuned-config", bad_path.to_str().unwrap()]);
    assert!(!output.status.success(), "serve must refuse to start");
    assert!(stderr(&output).contains("unsupported tune.toml version"), "{}", stderr(&output));
    assert!(
        !stdout(&output).contains("listening on"),
        "the listener must never bind under a bad tuned config: {}",
        stdout(&output)
    );

    // Unknown keys are corruption, not extension points.
    std::fs::write(
        &bad_path,
        include_str!("../crates/tune/testdata/golden.toml")
            .replace("jobs = 4", "jobs = 4\nturbo = yes"),
    )
    .unwrap();
    let output =
        cicero(&["run", "ab", "--text", "ab", "--tuned-config", bad_path.to_str().unwrap()]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("unknown key"), "{}", stderr(&output));
    std::fs::remove_file(&bad_path).ok();
}

/// `--tuned-config` tunes local execution; remote `scan --ruleset`
/// matches with the server's configuration, so combining them is an
/// error rather than a silent no-op.
#[test]
fn tuned_config_is_rejected_for_remote_ruleset_scans() {
    let output =
        cicero(&["scan", "--ruleset", "web", "--text", "x", "--tuned-config", golden_tune_toml()]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("only applies to local scans"), "{}", stderr(&output));
}
