//! What the tuner optimizes *for*: a named set of patterns plus
//! representative input chunks, fingerprinted for memoization.

use workloads::{witness_for, Benchmark, CHUNK_BYTES};

use crate::TuneError;

/// Generation seed for the built-in workload packs. Deliberately fixed
/// and decoupled from `--seed`: the tuning seed steers the *search*, not
/// the workload — otherwise two runs with different seeds would be tuning
/// for different inputs and their results would not be comparable.
const PACK_SEED: u64 = 0xC1CE_2025;

/// Pack scale used for tuning (patterns, chunks). Small on purpose: each
/// candidate evaluation simulates every (pattern × chunk) pair, and the
/// structural properties that drive the cost model show up at small n.
const PACK_PATTERNS: usize = 6;
const PACK_CHUNKS: usize = 2;

/// A tuning workload: patterns + input chunks + identity fingerprint.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (suite name for packs, `custom` for raw patterns).
    pub name: String,
    /// The regular expressions to compile under each candidate config.
    pub patterns: Vec<String>,
    /// The inputs each compiled program is scored on.
    pub chunks: Vec<Vec<u8>>,
}

impl Workload {
    /// A workload from one of the built-in benchmark packs:
    /// `protomata`, `brill`, `protomata4`, or `brill4`.
    pub fn pack(name: &str) -> Result<Workload, TuneError> {
        let bench = match name {
            "protomata" => Benchmark::protomata(PACK_SEED, PACK_PATTERNS, PACK_CHUNKS),
            "brill" => Benchmark::brill(PACK_SEED, PACK_PATTERNS, PACK_CHUNKS),
            "protomata4" => Benchmark::protomata4(PACK_SEED, PACK_PATTERNS, PACK_CHUNKS),
            "brill4" => Benchmark::brill4(PACK_SEED, PACK_PATTERNS, PACK_CHUNKS),
            other => {
                return Err(TuneError::Invalid(format!(
                    "unknown workload pack `{other}` (expected protomata, brill, protomata4, \
                     or brill4)"
                )))
            }
        };
        Ok(Workload::from_benchmark(&bench))
    }

    /// A workload from an already-generated benchmark.
    pub fn from_benchmark(bench: &Benchmark) -> Workload {
        Workload {
            name: bench.name.to_lowercase(),
            patterns: bench.patterns.clone(),
            chunks: bench.chunks.clone(),
        }
    }

    /// A workload from raw patterns. Inputs are synthesized: one chunk of
    /// low-entropy filler per pattern with that pattern's witness planted
    /// mid-chunk (when one can be derived), so both the scan-through and
    /// the halt-on-accept paths are exercised.
    pub fn from_patterns(patterns: &[String]) -> Result<Workload, TuneError> {
        if patterns.is_empty() {
            return Err(TuneError::Invalid("a workload needs at least one pattern".to_owned()));
        }
        let mut chunks = Vec::new();
        for (i, pattern) in patterns.iter().enumerate() {
            let mut chunk: Vec<u8> =
                (0..CHUNK_BYTES).map(|j| b'a' + ((i + j) % 17) as u8).collect();
            if let Some(witness) = witness_for(pattern) {
                if witness.len() < chunk.len() {
                    let at = (chunk.len() - witness.len()) / 2;
                    chunk[at..at + witness.len()].copy_from_slice(&witness);
                }
            }
            chunks.push(chunk);
        }
        Ok(Workload { name: "custom".to_owned(), patterns: patterns.to_vec(), chunks })
    }

    /// Total input bytes per full evaluation pass (each pattern scans
    /// every chunk).
    pub fn total_bytes(&self) -> usize {
        self.patterns.len() * self.chunks.iter().map(Vec::len).sum::<usize>()
    }

    /// Identity fingerprint over patterns and chunks (FNV-1a 64). Keys
    /// the memo table and is recorded in `tune.toml`, so a stale file is
    /// detectable when the workload generators change.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for pattern in &self.patterns {
            eat(pattern.as_bytes());
            eat(&[0xFF]); // separator: ("ab","c") != ("a","bc")
        }
        for chunk in &self.chunks {
            eat(chunk);
            eat(&[0xFE]);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_are_deterministic_and_named() {
        let a = Workload::pack("protomata").unwrap();
        let b = Workload::pack("protomata").unwrap();
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.chunks, b.chunks);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.name, "protomata");
        assert!(Workload::pack("nonesuch").is_err());
    }

    #[test]
    fn distinct_packs_have_distinct_fingerprints() {
        let protomata = Workload::pack("protomata").unwrap();
        let brill = Workload::pack("brill").unwrap();
        assert_ne!(protomata.fingerprint(), brill.fingerprint());
    }

    #[test]
    fn fingerprint_separates_pattern_boundaries() {
        let a = Workload::from_patterns(&["ab".to_owned(), "c".to_owned()]).unwrap();
        let b = Workload::from_patterns(&["a".to_owned(), "bc".to_owned()]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn custom_workloads_plant_witnesses() {
        let w = Workload::from_patterns(&["needle".to_owned()]).unwrap();
        assert_eq!(w.chunks.len(), 1);
        let hay = &w.chunks[0];
        assert!(hay.windows(6).any(|win| win == b"needle"), "witness must be planted");
        assert!(Workload::from_patterns(&[]).is_err());
    }
}
