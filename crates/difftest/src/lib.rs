//! Differential fuzzing subsystem: oracle-vs-compiler equivalence over a
//! configuration matrix, with divergence minimization and a committed
//! regression corpus.
//!
//! The pieces, in pipeline order:
//!
//! * [`generate`] — deterministic, seedable pattern and input generation
//!   covering the full supported grammar plus adversarial shapes;
//! * [`harness`] — the equivalence matrix: reference Pike VM × compiled
//!   programs at `O0`/`O2` × interpreter × cycle-level simulator over
//!   `CC_ID` 1–3 organizations × parallel batch execution at 1/2/4
//!   workers;
//! * [`shrink`] — greedy delta debugging that reduces a failing
//!   `(pattern, inputs)` pair to a minimal reproducer;
//! * [`corpus`] — the committed TOML regression corpus, replayed as a
//!   normal `cargo test` (see `tests/corpus_replay.rs`);
//! * [`registry`] — the serving-path axis: pattern sets round-tripped
//!   through the ruleset registry's compile → persist → reload pipeline
//!   and held to the oracle on both backends.
//!
//! The [`fuzz`] entry point ties them together and is what the
//! `cicero difftest` subcommand invokes.

pub mod corpus;
pub mod generate;
pub mod harness;
pub mod registry;
pub mod shrink;

use cicero_telemetry::Telemetry;

pub use corpus::{default_corpus_dir, load_dir, CorpusCase};
pub use generate::Generator;
pub use harness::{
    apply_splits, check_all, check_batch, check_case, check_stream_case, check_with_splits,
    Divergence, Outcome, PatternUnderTest,
};
pub use registry::{check_registry_case, split_set};
pub use shrink::{shrink, shrink_streamed, Shrunk, ShrunkStreamed};

/// Options for one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Base seed; the whole run is a pure function of
    /// `(seed, iters, jobs)`.
    pub seed: u64,
    /// Number of generated patterns (each checked against its full input
    /// set and the batch-determinism cells).
    pub iters: usize,
    /// Worker threads; `0` means all host cores.
    pub jobs: usize,
    /// Randomized chunk-split vectors per pattern on the streaming axis,
    /// on top of the deterministic splits [`check_all`] always runs
    /// (all-1-byte chunks and a middle split).
    pub stream_splits: usize,
    /// Telemetry sink for `difftest.*` counters.
    pub telemetry: Option<Telemetry>,
}

impl FuzzOptions {
    /// A single-threaded run with the given seed and iteration count.
    pub fn new(seed: u64, iters: usize) -> FuzzOptions {
        FuzzOptions { seed, iters, jobs: 1, stream_splits: 1, telemetry: None }
    }
}

/// One minimized divergence found by [`fuzz`].
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// The first disagreeing cell, as found (pre-minimization).
    pub divergence: Divergence,
    /// The generated pattern that exposed it.
    pub pattern: String,
    /// The generated input set that exposed it.
    pub inputs: Vec<Vec<u8>>,
    /// The minimized reproducer.
    pub shrunk: Shrunk,
    /// The minimized chunk-split points, for divergences that only fire
    /// on the streaming axis at a randomized split; `None` when the
    /// whole-input matrix (which includes the deterministic splits)
    /// already diverges.
    pub splits: Option<Vec<usize>>,
    /// The disagreeing cell of the *minimized* reproducer (minimization
    /// keeps "some cell diverges", not necessarily the same cell).
    pub shrunk_divergence: Divergence,
}

impl DivergenceReport {
    /// Convert to a corpus entry named `name`.
    pub fn to_corpus_case(&self, name: &str) -> CorpusCase {
        CorpusCase {
            name: name.to_owned(),
            pattern: self.shrunk.pattern.clone(),
            inputs: self.shrunk.inputs.clone(),
            kind: "divergence".to_owned(),
            note: format!(
                "minimized from {:?}; diverged at {}",
                self.pattern, self.shrunk_divergence
            ),
            splits: self.splits.clone().unwrap_or_default(),
        }
    }
}

/// Aggregate results of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Patterns generated and checked.
    pub patterns: usize,
    /// `(pattern, input)` cases checked across the matrix.
    pub cases: usize,
    /// Patterns skipped (capacity limits — never divergences).
    pub skipped: usize,
    /// Shrink steps spent minimizing, summed over all divergences.
    pub shrink_steps: usize,
    /// Every divergence found, minimized.
    pub divergences: Vec<DivergenceReport>,
}

impl FuzzReport {
    fn merge(&mut self, other: FuzzReport) {
        self.patterns += other.patterns;
        self.cases += other.cases;
        self.skipped += other.skipped;
        self.shrink_steps += other.shrink_steps;
        self.divergences.extend(other.divergences);
    }
}

/// The failure predicate used for minimization: *any* cell diverges.
///
/// Minimization deliberately does not pin the original cell — a smaller
/// reproducer that trips a different cell is still a compiler bug, and
/// chasing "the same cell" makes shrinking much weaker (classic ddmin
/// practice).
pub fn still_diverges(pattern: &str, inputs: &[Vec<u8>]) -> bool {
    check_all(pattern, inputs).diverged()
}

/// The stream-axis failure predicate: some cell diverges when every input
/// is additionally streamed at the given split points.
pub fn still_diverges_with_splits(pattern: &str, inputs: &[Vec<u8>], splits: &[usize]) -> bool {
    check_with_splits(pattern, inputs, std::slice::from_ref(&splits.to_vec())).diverged()
}

fn fuzz_worker(seed: u64, iters: usize, stream_splits: usize) -> FuzzReport {
    let mut generator = Generator::new(seed);
    let mut report = FuzzReport::default();
    for _ in 0..iters {
        let (pattern, ast) = generator.pattern();
        let inputs = generator.inputs(&ast);
        let extra: Vec<Vec<usize>> =
            (0..stream_splits).map(|_| generator.splits(&inputs)).collect();
        report.patterns += 1;
        report.cases += inputs.len();
        match check_with_splits(&pattern, &inputs, &extra) {
            Outcome::Pass => {}
            Outcome::Skip(_) => report.skipped += 1,
            Outcome::Diverged(divergence) => {
                let finding = minimize(divergence, pattern, inputs, &extra);
                report.shrink_steps += finding.shrunk.steps;
                report.divergences.push(finding);
            }
        }
    }
    report
}

/// Minimize one divergence, picking the split-aware shrinker when the
/// failure only fires at one of the randomized split vectors.
fn minimize(
    divergence: Divergence,
    pattern: String,
    inputs: Vec<Vec<u8>>,
    extra: &[Vec<usize>],
) -> DivergenceReport {
    if still_diverges(&pattern, &inputs) {
        let shrunk = shrink(&pattern, &inputs, &still_diverges);
        let shrunk_divergence = match check_all(&shrunk.pattern, &shrunk.inputs) {
            Outcome::Diverged(d) => d,
            // Unreachable by construction (shrink preserves the
            // predicate), but stay total.
            _ => divergence.clone(),
        };
        return DivergenceReport {
            divergence,
            pattern,
            inputs,
            shrunk,
            splits: None,
            shrunk_divergence,
        };
    }
    // The whole-input matrix passes, so the failure needs one of the
    // randomized split vectors; minimize the splits along with the case.
    if let Some(splits) =
        extra.iter().find(|splits| still_diverges_with_splits(&pattern, &inputs, splits))
    {
        let minimized = shrink_streamed(&pattern, &inputs, splits, &still_diverges_with_splits);
        let shrunk_divergence = match check_with_splits(
            &minimized.shrunk.pattern,
            &minimized.shrunk.inputs,
            std::slice::from_ref(&minimized.splits),
        ) {
            Outcome::Diverged(d) => d,
            _ => divergence.clone(),
        };
        return DivergenceReport {
            divergence,
            pattern,
            inputs,
            shrunk: minimized.shrunk,
            splits: Some(minimized.splits),
            shrunk_divergence,
        };
    }
    // Not reproducible in isolation (should not happen — the checks are
    // deterministic); report it unminimized rather than lose it.
    DivergenceReport {
        divergence: divergence.clone(),
        shrunk: Shrunk { pattern: pattern.clone(), inputs: inputs.clone(), steps: 0 },
        pattern,
        inputs,
        splits: None,
        shrunk_divergence: divergence,
    }
}

/// Mix a worker index into the base seed (SplitMix64 increment) so
/// workers explore disjoint pattern streams.
fn worker_seed(base: u64, worker: u64) -> u64 {
    base ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(worker)
}

/// Run the differential fuzzer.
///
/// Iterations are split across `jobs` workers, each with a seed derived
/// from `options.seed` and its worker index, so the run is reproducible
/// for a fixed `(seed, iters, jobs)` triple.
pub fn fuzz(options: &FuzzOptions) -> FuzzReport {
    let jobs = match options.jobs {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(options.iters.max(1));

    let mut report = FuzzReport::default();
    if jobs <= 1 {
        report = fuzz_worker(options.seed, options.iters, options.stream_splits);
    } else {
        let per = options.iters / jobs;
        let extra = options.iters % jobs;
        let partials = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    let iters = per + usize::from(w < extra);
                    let seed = worker_seed(options.seed, w as u64);
                    let stream_splits = options.stream_splits;
                    scope.spawn(move || fuzz_worker(seed, iters, stream_splits))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("fuzz worker panicked")).collect::<Vec<_>>()
        });
        for partial in partials {
            report.merge(partial);
        }
    }

    if let Some(telemetry) = &options.telemetry {
        telemetry.counter_add("difftest.patterns", report.patterns as u64);
        telemetry.counter_add("difftest.cases", report.cases as u64);
        telemetry.counter_add("difftest.skipped", report.skipped as u64);
        telemetry.counter_add("difftest.divergences", report.divergences.len() as u64);
        telemetry.counter_add("difftest.shrink_steps", report.shrink_steps as u64);
    }
    report
}

/// Replay every corpus case in `dir` through the full matrix, returning
/// each case with its outcome.
///
/// # Errors
///
/// Returns corpus I/O or parse errors; divergences are reported in the
/// outcomes, not as errors.
pub fn replay_corpus(dir: &std::path::Path) -> Result<Vec<(CorpusCase, Outcome)>, String> {
    let cases = corpus::load_dir(dir)?;
    // Registry cases need a runtime for the compile/persist round trip;
    // built lazily so a corpus without them pays nothing.
    let mut runtime = None;
    Ok(cases
        .into_iter()
        .map(|case| {
            let outcome = if case.kind == "registry" {
                // A registry case's `pattern` is a newline-joined set,
                // round-tripped through persist/reload instead of the
                // in-memory matrix.
                let runtime = runtime.get_or_insert_with(|| {
                    cicero_runtime::Runtime::new(cicero_runtime::RuntimeOptions {
                        jobs: 1,
                        ..cicero_runtime::RuntimeOptions::default()
                    })
                });
                let scratch = registry::case_dir(&case.name);
                let _ = std::fs::remove_dir_all(&scratch);
                let outcome = check_registry_case(
                    runtime,
                    &scratch,
                    &registry::split_set(&case.pattern),
                    &case.inputs,
                );
                if !outcome.diverged() {
                    let _ = std::fs::remove_dir_all(&scratch);
                }
                outcome
            } else {
                // Cases minimized on the streaming axis carry their split
                // points; replaying them re-streams every input at those
                // splits on top of the whole-input matrix.
                check_with_splits(&case.pattern, &case.inputs, std::slice::from_ref(&case.splits))
            };
            (case, outcome)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_run_is_deterministic() {
        let a = fuzz(&FuzzOptions::new(7, 20));
        let b = fuzz(&FuzzOptions::new(7, 20));
        assert_eq!(a.patterns, 20);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.divergences.len(), b.divergences.len());
    }

    #[test]
    fn a_short_run_finds_no_divergences() {
        let report = fuzz(&FuzzOptions::new(42, 60));
        assert!(
            report.divergences.is_empty(),
            "unexpected divergences: {:?}",
            report
                .divergences
                .iter()
                .map(|d| (&d.shrunk.pattern, &d.shrunk_divergence))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.patterns, 60);
        assert!(report.cases >= 60, "each pattern contributes at least one input");
    }

    #[test]
    fn stream_axis_runs_clean_with_extra_random_splits() {
        let report =
            fuzz(&FuzzOptions { seed: 42, iters: 30, jobs: 1, stream_splits: 3, telemetry: None });
        assert!(
            report.divergences.is_empty(),
            "chunk-split invariance violated: {:?}",
            report
                .divergences
                .iter()
                .map(|d| (&d.shrunk.pattern, &d.splits, &d.shrunk_divergence))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.patterns, 30);
    }

    #[test]
    fn stream_axis_corpus_cases_roundtrip_their_splits() {
        let finding = DivergenceReport {
            divergence: Divergence { cell: "stream/interp/O2".to_owned(), detail: "x".to_owned() },
            pattern: "ab".to_owned(),
            inputs: vec![b"xaby".to_vec()],
            shrunk: Shrunk { pattern: "ab".to_owned(), inputs: vec![b"ab".to_vec()], steps: 3 },
            splits: Some(vec![1]),
            shrunk_divergence: Divergence {
                cell: "stream/interp/O2".to_owned(),
                detail: "x".to_owned(),
            },
        };
        let case = finding.to_corpus_case("stream-case");
        assert_eq!(case.splits, vec![1]);
        let reparsed = CorpusCase::from_toml("stream-case", &case.to_toml()).unwrap();
        assert_eq!(reparsed.splits, vec![1]);
    }

    #[test]
    fn workers_split_the_iteration_budget() {
        let report =
            fuzz(&FuzzOptions { seed: 3, iters: 10, jobs: 4, stream_splits: 1, telemetry: None });
        assert_eq!(report.patterns, 10);
    }

    #[test]
    fn telemetry_counters_are_exported() {
        let telemetry = Telemetry::new();
        let report = fuzz(&FuzzOptions {
            seed: 11,
            iters: 15,
            jobs: 1,
            stream_splits: 1,
            telemetry: Some(telemetry.clone()),
        });
        assert_eq!(telemetry.counter("difftest.patterns"), 15);
        assert_eq!(telemetry.counter("difftest.cases"), report.cases as u64);
        assert_eq!(telemetry.counter("difftest.divergences"), 0);
    }

    /// End-to-end fault injection: emulate a miscompile (the "compiler"
    /// silently rewrites every `b` to `c`) and check the pipeline catches
    /// it and minimizes the reproducer to the acceptance bound of the
    /// differential-fuzzing issue (<= 20 chars of pattern + input).
    #[test]
    fn an_injected_miscompile_is_caught_and_minimized() {
        fn buggy_check(pattern: &str, inputs: &[Vec<u8>]) -> bool {
            let Ok(oracle) = regex_oracle::Oracle::new(pattern) else {
                return false;
            };
            let mangled = pattern.replace('b', "c");
            let Ok(compiled) = cicero_core::compile(&mangled) else {
                return false;
            };
            let program = compiled.into_program();
            inputs
                .iter()
                .any(|input| cicero_isa::run(&program, input).accepted != oracle.is_match(input))
        }

        let pattern = "x+(ab|cd)y{1,3}|qq*";
        let inputs: Vec<Vec<u8>> =
            vec![b"unrelated noise".to_vec(), b"zz xxabyy zz".to_vec(), b"xcdy".to_vec()];
        assert!(buggy_check(pattern, &inputs), "the injected fault must be visible");
        let shrunk = shrink(pattern, &inputs, &buggy_check);
        assert!(buggy_check(&shrunk.pattern, &shrunk.inputs));
        assert!(
            shrunk.size() <= 20,
            "expected <= 20 chars of pattern + input, got {:?} / {:?}",
            shrunk.pattern,
            shrunk.inputs
        );
    }

    #[test]
    fn worker_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..16).map(|w| worker_seed(42, w)).collect();
        assert_eq!(seeds.len(), 16);
    }
}
