//! The search space: per-axis candidate values, enumerable by index.
//!
//! Every axis lists its built-in default value *first*, so index 0 of the
//! whole space is exactly [`TuneConfig::default`] — exhaustive sweeps
//! always cover the baseline, and the searcher's "default is candidate
//! zero" guarantee falls out of the layout rather than a special case.

use cicero_hostexec::HostTiers;
use regex_dialect::transforms::PassOrder;

use crate::config::{ArchParams, OrganizationKind, TuneConfig};

/// One candidate machine shape (organization × cores × engines × CC_ID).
/// Pre-combined into a single axis because the dimensions are coupled:
/// the new organization pairs one core per FIFO, so its `CC_ID` is fixed
/// by the core count, while the old organization can vary `CC_ID` freely.
#[derive(Debug, Clone, Copy)]
struct ArchShape {
    organization: OrganizationKind,
    cores_per_engine: usize,
    engines: usize,
    cc_id_bits: u32,
}

/// The axes of the compiler × architecture space.
///
/// [`SearchSpace::full`] is the standard space (~7k points): pass order
/// (6) × leading reduction (2) × machine shape (6) × icache geometry (4)
/// × host tiers (3) × worker count (2) × cache stripes (2).
#[derive(Debug, Clone)]
pub struct SearchSpace {
    pass_orders: Vec<PassOrder>,
    leading: Vec<bool>,
    shapes: Vec<ArchShape>,
    caches: Vec<(usize, usize, u64)>,
    tiers: Vec<HostTiers>,
    jobs: Vec<usize>,
    shards: Vec<usize>,
}

impl Default for SearchSpace {
    fn default() -> SearchSpace {
        SearchSpace::full()
    }
}

impl SearchSpace {
    /// The standard search space. Defaults-first per axis (see the module
    /// docs).
    pub fn full() -> SearchSpace {
        SearchSpace {
            pass_orders: PassOrder::all().to_vec(),
            leading: vec![false, true],
            shapes: vec![
                // The CLI/default machine first.
                ArchShape {
                    organization: OrganizationKind::New,
                    cores_per_engine: 16,
                    engines: 1,
                    cc_id_bits: 4,
                },
                ArchShape {
                    organization: OrganizationKind::New,
                    cores_per_engine: 8,
                    engines: 1,
                    cc_id_bits: 3,
                },
                ArchShape {
                    organization: OrganizationKind::New,
                    cores_per_engine: 8,
                    engines: 2,
                    cc_id_bits: 3,
                },
                ArchShape {
                    organization: OrganizationKind::New,
                    cores_per_engine: 4,
                    engines: 2,
                    cc_id_bits: 2,
                },
                ArchShape {
                    organization: OrganizationKind::Old,
                    cores_per_engine: 1,
                    engines: 4,
                    cc_id_bits: 3,
                },
                ArchShape {
                    organization: OrganizationKind::Old,
                    cores_per_engine: 1,
                    engines: 8,
                    cc_id_bits: 3,
                },
            ],
            caches: vec![(8, 4, 4), (4, 4, 4), (16, 4, 4), (8, 8, 4)],
            tiers: vec![
                HostTiers { bit64_max: 64, bit128_max: 128 },
                HostTiers { bit64_max: 32, bit128_max: 128 },
                HostTiers { bit64_max: 48, bit128_max: 96 },
            ],
            jobs: vec![0, 4],
            shards: vec![0, 16],
        }
    }

    /// A compiler-only slice of the space (machine pinned to the
    /// default): pass order × leading reduction, 12 points — small enough
    /// that any realistic budget covers it exhaustively.
    pub fn compiler_only() -> SearchSpace {
        let mut space = SearchSpace::full();
        space.shapes.truncate(1);
        space.caches.truncate(1);
        space.tiers.truncate(1);
        space.jobs.truncate(1);
        space.shards.truncate(1);
        space
    }

    /// Candidate counts per axis, in index-decomposition order.
    pub fn axis_sizes(&self) -> Vec<usize> {
        vec![
            self.pass_orders.len(),
            self.leading.len(),
            self.shapes.len(),
            self.caches.len(),
            self.tiers.len(),
            self.jobs.len(),
            self.shards.len(),
        ]
    }

    /// Total number of points.
    pub fn size(&self) -> usize {
        self.axis_sizes().iter().product()
    }

    /// The config at a flat index in `[0, size())`, by mixed-radix
    /// decomposition (axis 0 varies slowest). Index 0 is the default
    /// config.
    pub fn config_at(&self, index: usize) -> TuneConfig {
        assert!(index < self.size(), "index {index} out of range (size {})", self.size());
        let sizes = self.axis_sizes();
        let mut indices = vec![0; sizes.len()];
        let mut rest = index;
        for (slot, &size) in indices.iter_mut().zip(&sizes).rev() {
            *slot = rest % size;
            rest /= size;
        }
        self.config_from_indices(&indices)
    }

    /// The config for explicit per-axis indices (the searcher's working
    /// representation — mutation flips one slot).
    pub fn config_from_indices(&self, indices: &[usize]) -> TuneConfig {
        assert_eq!(indices.len(), self.axis_sizes().len(), "one index per axis");
        let shape = self.shapes[indices[2]];
        let (lines, line_size, miss_penalty) = self.caches[indices[3]];
        let mut config = TuneConfig::default();
        config.compiler.pass_order = self.pass_orders[indices[0]];
        config.compiler.shortest_match_leading = self.leading[indices[1]];
        config.arch = ArchParams {
            organization: shape.organization,
            cores_per_engine: shape.cores_per_engine,
            engines: shape.engines,
            cc_id_bits: shape.cc_id_bits,
            cache_lines: lines,
            cache_line_size: line_size,
            cache_miss_penalty: miss_penalty,
        };
        config.host = self.tiers[indices[4]];
        config.jobs = self.jobs[indices[5]];
        config.cache_shards = self.shards[indices[6]];
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_zero_is_the_default_config() {
        assert_eq!(SearchSpace::full().config_at(0), TuneConfig::default());
        assert_eq!(SearchSpace::compiler_only().config_at(0), TuneConfig::default());
    }

    #[test]
    fn size_matches_axis_product_and_every_index_is_reachable() {
        let space = SearchSpace::compiler_only();
        assert_eq!(space.size(), 12);
        let mut seen = std::collections::HashSet::new();
        for i in 0..space.size() {
            seen.insert(space.config_at(i));
        }
        assert_eq!(seen.len(), 12, "every index yields a distinct config");
    }

    #[test]
    fn full_space_expands_to_valid_machines() {
        let space = SearchSpace::full();
        // Spot-check a spread of indices: every expansion must satisfy
        // the simulator's constructor invariants (power-of-two cores…).
        for i in (0..space.size()).step_by(97) {
            let config = space.config_at(i);
            let arch = config.arch.to_arch_config();
            assert!(arch.engines >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let space = SearchSpace::compiler_only();
        let _ = space.config_at(space.size());
    }
}
