//! The new multi-dialect Cicero compiler (§3 of the paper).
//!
//! A linear pipeline transforming a textual RE into a Cicero binary:
//!
//! ```text
//! pattern ──parse──▶ AST ──convert──▶ regex dialect ──{canonicalize,
//!   factorize, shortest-match}──▶ regex dialect ──lower──▶ cicero dialect
//!   ──jump-simplification──▶ cicero dialect ──codegen──▶ ISA program
//! ```
//!
//! High-level (architecture-agnostic) optimizations run on the `regex`
//! dialect; the back-end Jump Simplification runs on the `cicero` dialect,
//! after basic blocks have been mapped to instruction memory — avoiding
//! the *premature lowering* of the original single-IR compiler (§2.1).
//!
//! Every optimization is individually toggleable via [`CompilerOptions`],
//! matching the paper's per-transformation compiler flags, and every stage
//! is timed ([`CompileStats`]) to support the Figure 9 compile-time
//! experiments.
//!
//! # Example
//!
//! ```
//! use cicero_core::Compiler;
//!
//! let compiler = Compiler::new();
//! let compiled = compiler.compile("(ab)|c{3,6}d+")?;
//! assert!(compiled.program().len() > 0);
//! assert!(cicero_isa::accepts(compiled.program(), b"xx ccccd yy"));
//! # Ok::<(), cicero_core::CompileError>(())
//! ```

use std::fmt;
use std::time::{Duration, Instant};

use cicero_dialect::CodegenError;
use cicero_isa::Program;
use cicero_telemetry::Telemetry;
use mlir_lite::{Context, Operation, PassError, PassInstrumentation};
// Re-exported so downstream crates (runtime, server) can consume per-pass
// reports without depending on mlir-lite directly.
pub use mlir_lite::{PassReport, PipelineReport};
use regex_frontend::ParseRegexError;

/// Pass instrumentation bridging the pass manager to a [`Telemetry`]
/// collector: one `pass:<name>` span per executed pass, annotated with
/// the op-count delta (and the error message on failure).
///
/// Passes run sequentially, so open spans form a stack; the `Mutex` only
/// provides the interior mutability `PassInstrumentation`'s `&self` hooks
/// require.
struct TelemetrySpans {
    telemetry: Telemetry,
    open: std::sync::Mutex<Vec<cicero_telemetry::Span>>,
}

impl TelemetrySpans {
    fn new(telemetry: Telemetry) -> TelemetrySpans {
        TelemetrySpans { telemetry, open: std::sync::Mutex::new(Vec::new()) }
    }

    fn pop(&self) -> Option<cicero_telemetry::Span> {
        self.open.lock().unwrap_or_else(|p| p.into_inner()).pop()
    }
}

impl PassInstrumentation for TelemetrySpans {
    fn run_before_pass(&self, pass_name: &'static str, _root: &Operation) {
        let span = self.telemetry.span(format!("pass:{pass_name}"));
        self.open.lock().unwrap_or_else(|p| p.into_inner()).push(span);
    }

    fn run_after_pass(&self, _pass_name: &'static str, _root: &Operation, report: &PassReport) {
        if let Some(span) = self.pop() {
            span.annotate("ops_before", report.ops_before);
            span.annotate("ops_after", report.ops_after);
            span.annotate("ops_delta", report.ops_delta());
        }
        self.telemetry.counter_add("compiler.passes_run", 1);
    }

    fn run_after_pass_failed(&self, _pass_name: &'static str, error: &PassError) {
        if let Some(span) = self.pop() {
            span.annotate("error", error.to_string());
        }
        self.telemetry.counter_add("compiler.passes_failed", 1);
    }
}

/// Execution target for a compiled program.
///
/// Compilation itself is backend-agnostic — both targets execute the same
/// validated ISA [`Program`] — so this selects *how* the program runs, not
/// what is produced:
///
/// - [`Backend::Sim`] runs the cycle-level simulator, the architecture
///   oracle for the paper's hardware (cycle counts, icache behavior,
///   engine-transfer stats).
/// - [`Backend::Host`] runs the bit-parallel host-native engine
///   (`cicero-hostexec`): same match semantics, no microarchitectural
///   model, three orders of magnitude faster.
///
/// The default is `Host` — the serving path wants throughput; simulation
/// is opt-in where architecture numbers matter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Cycle-level simulator (the architecture oracle).
    Sim,
    /// Bit-parallel host-native engine.
    #[default]
    Host,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Sim => "sim",
            Backend::Host => "host",
        })
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "sim" | "simulator" => Ok(Backend::Sim),
            "host" | "native" => Ok(Backend::Host),
            other => Err(format!("unknown backend `{other}` (expected `sim` or `host`)")),
        }
    }
}

/// Per-transformation toggles (§3.2's "each transformation is optional and
/// can be enabled or disabled individually").
///
/// `Hash`/`Eq` matter operationally: the runtime's compiled-program cache
/// is keyed by `(pattern, CompilerOptions)`, so two requests share a cache
/// entry exactly when every toggle agrees. The [`backend`] field does not
/// affect the compiled program, and the runtime normalizes it out of cache
/// keys — sim and host requests for the same pattern share one entry.
///
/// [`backend`]: CompilerOptions::backend
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompilerOptions {
    /// Execution target for the compiled program (see [`Backend`]).
    /// `optimized()`/`unoptimized()` pin [`Backend::Sim`] — they describe
    /// the paper's simulated configurations; serving paths that want the
    /// native engine set this to [`Backend::Host`] explicitly (the server
    /// does so by default).
    pub backend: Backend,
    /// Set 1: sub-regex simplification / canonicalization.
    pub canonicalize: bool,
    /// Set 2: alternation prefix factorization.
    pub factorize: bool,
    /// Set 3: shortest-match boundary quantifier reduction.
    pub shortest_match: bool,
    /// Extension beyond the paper: the same reduction applied at the
    /// *leading* boundary (sound under the implicit `.*` prefix). Off by
    /// default to match the paper's pipeline.
    pub shortest_match_leading: bool,
    /// Back-end Jump Simplification on the `cicero` dialect (§5).
    pub jump_simplification: bool,
    /// Relative order of the enabled high-level sets (default: the
    /// paper's canonicalize → factorize → shortest-match). A tunable —
    /// `cicero tune` searches all six permutations.
    pub pass_order: regex_dialect::transforms::PassOrder,
    /// Verify the IR after every pass (slower; invaluable in tests).
    pub verify_each: bool,
}

impl CompilerOptions {
    /// All optimizations enabled (the paper's "w/ optimizations"
    /// configuration).
    pub fn optimized() -> CompilerOptions {
        CompilerOptions {
            backend: Backend::Sim,
            canonicalize: true,
            factorize: true,
            shortest_match: true,
            shortest_match_leading: false,
            jump_simplification: true,
            pass_order: regex_dialect::transforms::PassOrder::default(),
            verify_each: false,
        }
    }

    /// All optimizations disabled (the paper's "w/o optimizations").
    pub fn unoptimized() -> CompilerOptions {
        CompilerOptions {
            backend: Backend::Sim,
            canonicalize: false,
            factorize: false,
            shortest_match: false,
            shortest_match_leading: false,
            jump_simplification: false,
            pass_order: regex_dialect::transforms::PassOrder::default(),
            verify_each: false,
        }
    }

    /// The same toggles, retargeted to `backend`.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> CompilerOptions {
        self.backend = backend;
        self
    }
}

impl Default for CompilerOptions {
    fn default() -> CompilerOptions {
        CompilerOptions::optimized()
    }
}

/// Per-stage wall-clock timings for one compilation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileStats {
    /// Parsing (ANTLR-equivalent front-end).
    pub parse: Duration,
    /// AST → `regex` dialect conversion.
    pub convert: Duration,
    /// High-level `regex` dialect passes.
    pub high_level: Duration,
    /// `regex` → `cicero` lowering (basic-block mapping + control insts).
    pub lowering: Duration,
    /// Low-level `cicero` dialect passes (Jump Simplification).
    pub low_level: Duration,
    /// Code generation to the binary ISA format.
    pub codegen: Duration,
}

impl CompileStats {
    /// End-to-end compile time.
    pub fn total(&self) -> Duration {
        self.parse + self.convert + self.high_level + self.lowering + self.low_level + self.codegen
    }
}

/// A compiled regular expression: the binary program plus compile metadata.
#[derive(Debug, Clone)]
pub struct CompiledRegex {
    program: Program,
    stats: CompileStats,
    pass_report: PipelineReport,
}

impl CompiledRegex {
    /// The executable Cicero program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Consume and return the program.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// Code size in instructions (the Figure 8 metric).
    pub fn code_size(&self) -> usize {
        self.program.len()
    }

    /// Code locality `D_offset` (the Figure 10 metric, Equation 1).
    pub fn d_offset(&self) -> u64 {
        self.program.total_jump_offset()
    }

    /// Per-stage compile timings (the Figure 9 metric).
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Per-pass timing and op-count report across both dialect pipelines
    /// (high-level `regex` passes followed by low-level `cicero` passes).
    /// Its `Display` renders an aligned timing table.
    pub fn pass_report(&self) -> &PipelineReport {
        &self.pass_report
    }
}

/// Intermediate artifacts of one compilation, for tooling and debugging.
#[derive(Debug, Clone)]
pub struct CompilationArtifacts {
    /// The parsed AST, rendered back to canonical pattern syntax.
    pub canonical_pattern: String,
    /// `regex` dialect IR right after conversion.
    pub regex_ir_initial: Operation,
    /// `regex` dialect IR after the enabled high-level transforms.
    pub regex_ir_optimized: Operation,
    /// `cicero` dialect IR right after lowering.
    pub cicero_ir_initial: Operation,
    /// `cicero` dialect IR after Jump Simplification (if enabled).
    pub cicero_ir_optimized: Operation,
    /// The final compiled program.
    pub compiled: CompiledRegex,
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The pattern was rejected by the front-end.
    Parse(ParseRegexError),
    /// A pass failed or produced invalid IR.
    Pass(PassError),
    /// Code generation failed (e.g. the program exceeds instruction
    /// memory).
    Codegen(CodegenError),
    /// [`Compiler::compile_set`] was called with no patterns; a
    /// multi-matching program needs at least one set member.
    EmptySet,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Pass(e) => write!(f, "{e}"),
            CompileError::Codegen(e) => write!(f, "codegen error: {e}"),
            CompileError::EmptySet => {
                write!(f, "cannot compile an empty pattern set; provide at least one pattern")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseRegexError> for CompileError {
    fn from(e: ParseRegexError) -> CompileError {
        CompileError::Parse(e)
    }
}

impl From<PassError> for CompileError {
    fn from(e: PassError) -> CompileError {
        CompileError::Pass(e)
    }
}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> CompileError {
        CompileError::Codegen(e)
    }
}

/// The multi-dialect compiler.
#[derive(Debug)]
pub struct Compiler {
    options: CompilerOptions,
    ctx: Context,
    telemetry: Option<Telemetry>,
}

impl Default for Compiler {
    fn default() -> Compiler {
        Compiler::new()
    }
}

impl Compiler {
    /// A compiler with all optimizations enabled.
    pub fn new() -> Compiler {
        Compiler::with_options(CompilerOptions::optimized())
    }

    /// A compiler with explicit options.
    pub fn with_options(options: CompilerOptions) -> Compiler {
        let mut ctx = Context::new();
        ctx.register_dialect(regex_dialect::dialect());
        ctx.register_dialect(cicero_dialect::dialect());
        Compiler { options, ctx, telemetry: None }
    }

    /// Attach a telemetry collector: every compilation then emits a
    /// `compile` span with nested per-stage spans and one `pass:<name>`
    /// span per executed pass (annotated with op-count deltas), plus
    /// `compiler.*` counters and gauges.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Compiler {
        self.telemetry = Some(telemetry);
        self
    }

    /// The attached telemetry collector, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// The active options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Compile a pattern to a Cicero program.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(&self, pattern: &str) -> Result<CompiledRegex, CompileError> {
        Ok(self.compile_with_artifacts(pattern)?.compiled)
    }

    /// Compile, retaining every intermediate representation.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_with_artifacts(
        &self,
        pattern: &str,
    ) -> Result<CompilationArtifacts, CompileError> {
        let mut stats = CompileStats::default();
        let telemetry = self.telemetry.clone();
        let stage = |name: &str| telemetry.as_ref().map(|t| t.span(format!("stage:{name}")));
        let compile_span = telemetry.as_ref().map(|t| {
            t.counter_add("compiler.compilations", 1);
            let span = t.span("compile");
            span.annotate("pattern", pattern);
            span
        });
        let mut pass_report = PipelineReport::default();

        let span = stage("parse");
        let start = Instant::now();
        let ast = regex_frontend::parse(pattern)?;
        stats.parse = start.elapsed();
        drop(span);

        let span = stage("convert");
        let start = Instant::now();
        let mut regex_ir = regex_dialect::ast_to_ir(&ast);
        stats.convert = start.elapsed();
        drop(span);
        let regex_ir_initial = regex_ir.clone();

        let span = stage("high-level");
        let start = Instant::now();
        let mut high = mlir_lite::PassManager::new();
        high.verify_each(self.options.verify_each);
        regex_dialect::transforms::build_pipeline(&mut high, &self.high_level_options());
        if let Some(t) = &telemetry {
            high.add_instrumentation(Box::new(TelemetrySpans::new(t.clone())));
        }
        pass_report.extend(&high.run(&mut regex_ir, &self.ctx)?);
        stats.high_level = start.elapsed();
        drop(span);
        let regex_ir_optimized = regex_ir.clone();

        let span = stage("lowering");
        let start = Instant::now();
        let mut cicero_ir = cicero_dialect::lower_to_cicero(&regex_ir);
        stats.lowering = start.elapsed();
        drop(span);
        let cicero_ir_initial = cicero_ir.clone();

        let span = stage("low-level");
        let start = Instant::now();
        let mut low = mlir_lite::PassManager::new();
        low.verify_each(self.options.verify_each);
        cicero_dialect::build_pipeline(&mut low, &self.low_level_options());
        if let Some(t) = &telemetry {
            low.add_instrumentation(Box::new(TelemetrySpans::new(t.clone())));
        }
        pass_report.extend(&low.run(&mut cicero_ir, &self.ctx)?);
        stats.low_level = start.elapsed();
        drop(span);
        let cicero_ir_optimized = cicero_ir.clone();

        let span = stage("codegen");
        let start = Instant::now();
        let program = cicero_dialect::codegen(&cicero_ir)?;
        stats.codegen = start.elapsed();
        drop(span);

        if let (Some(t), Some(span)) = (&telemetry, &compile_span) {
            span.annotate("code_size", program.len());
            span.annotate("d_offset", program.total_jump_offset());
            t.gauge_set("compiler.code_size", program.len() as f64);
            t.gauge_set("compiler.d_offset", program.total_jump_offset() as f64);
        }

        Ok(CompilationArtifacts {
            canonical_pattern: ast.to_pattern(),
            regex_ir_initial,
            regex_ir_optimized,
            cicero_ir_initial,
            cicero_ir_optimized,
            compiled: CompiledRegex { program, stats, pass_report },
        })
    }

    fn high_level_options(&self) -> regex_dialect::transforms::HighLevelOptions {
        regex_dialect::transforms::HighLevelOptions {
            canonicalize: self.options.canonicalize,
            factorize: self.options.factorize,
            shortest_match: self.options.shortest_match,
            shortest_match_leading: self.options.shortest_match_leading,
            order: self.options.pass_order,
        }
    }

    fn low_level_options(&self) -> cicero_dialect::LowLevelOptions {
        cicero_dialect::LowLevelOptions { jump_simplification: self.options.jump_simplification }
    }
}

/// A multi-matching set compiled into one program (the paper's Future
/// Work ISA extension): the engine scans once and reports *which* RE
/// matched via `AcceptPartialId`.
#[derive(Debug, Clone)]
pub struct CompiledSet {
    program: Program,
    patterns: Vec<String>,
    pass_report: PipelineReport,
}

impl CompiledSet {
    /// The combined executable program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Per-pass timing and op-count report, accumulated across every
    /// pattern's high-level pipeline run.
    pub fn pass_report(&self) -> &PipelineReport {
        &self.pass_report
    }

    /// The pattern with the given identifier (as reported in
    /// [`cicero_isa::ExecOutcome::matched_id`]).
    pub fn pattern(&self, id: u16) -> Option<&str> {
        self.patterns.get(usize::from(id)).map(String::as_str)
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty (never true for a compiled set).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

impl Compiler {
    /// Compile a set of patterns into one multi-matching program.
    ///
    /// Each pattern gets the full high-level optimization pipeline, then
    /// all are lowered together around a single shared scan loop with
    /// identified acceptances.
    ///
    /// # Errors
    ///
    /// Fails like [`Compiler::compile`], and additionally for an empty
    /// set ([`CompileError::EmptySet`]) and for anchored patterns
    /// (`^`/`$`), which cannot participate in a combined scan.
    pub fn compile_set<S: AsRef<str>>(&self, patterns: &[S]) -> Result<CompiledSet, CompileError> {
        if patterns.is_empty() {
            return Err(CompileError::EmptySet);
        }
        let mut optimized_irs = Vec::with_capacity(patterns.len());
        let mut pass_report = PipelineReport::default();
        for pattern in patterns {
            let artifacts = self.compile_with_artifacts(pattern.as_ref())?;
            pass_report.extend(artifacts.compiled.pass_report());
            optimized_irs.push(artifacts.regex_ir_optimized);
        }
        let refs: Vec<&Operation> = optimized_irs.iter().collect();
        let mut cicero_ir = cicero_dialect::lower_multi(&refs).map_err(PassError::new)?;
        if self.options.jump_simplification {
            cicero_dialect::jump_simplify(&mut cicero_ir);
        }
        let program = cicero_dialect::codegen(&cicero_ir)?;
        Ok(CompiledSet {
            program,
            patterns: patterns.iter().map(|p| p.as_ref().to_owned()).collect(),
            pass_report,
        })
    }
}

/// Convenience: compile with default (optimized) options.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile(pattern: &str) -> Result<CompiledRegex, CompileError> {
    Compiler::new().compile(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_never_worse_than_unoptimized() {
        let opt = Compiler::new();
        let unopt = Compiler::with_options(CompilerOptions::unoptimized());
        for pattern in [
            "ab|cd",
            "this|that|those",
            "(ab)|c{3,6}d+",
            "a{2,3}|b{4,5}",
            "abcd*|efgh+",
            "[^xyz]+end",
        ] {
            let o = opt.compile(pattern).unwrap();
            let u = unopt.compile(pattern).unwrap();
            assert!(
                o.d_offset() <= u.d_offset(),
                "{pattern}: D_offset {} > {}",
                o.d_offset(),
                u.d_offset()
            );
        }
    }

    #[test]
    fn listing2_end_to_end() {
        let opt = compile("ab|cd").unwrap();
        assert_eq!(opt.d_offset(), 9);
        assert_eq!(opt.code_size(), 10);
        let unopt =
            Compiler::with_options(CompilerOptions::unoptimized()).compile("ab|cd").unwrap();
        assert_eq!(unopt.d_offset(), 14);
        assert_eq!(unopt.code_size(), 11);
    }

    #[test]
    fn compiled_programs_execute_correctly() {
        let compiled = compile("th(is|at|ose)").unwrap();
        assert!(cicero_isa::accepts(compiled.program(), b"take that!"));
        assert!(!cicero_isa::accepts(compiled.program(), b"nothing here"));
    }

    #[test]
    fn individual_toggles_apply() {
        let mut only_factorize = CompilerOptions::unoptimized();
        only_factorize.factorize = true;
        let c = Compiler::with_options(only_factorize);
        let artifacts = c.compile_with_artifacts("this|that").unwrap();
        assert_eq!(regex_dialect::ir_to_pattern(&artifacts.regex_ir_optimized), "th(is|at)");
    }

    #[test]
    fn artifacts_capture_all_stages() {
        let artifacts = Compiler::new().compile_with_artifacts("ab|cd").unwrap();
        assert_eq!(artifacts.canonical_pattern, "ab|cd");
        assert!(artifacts.regex_ir_initial.is("regex.root"));
        assert!(artifacts.cicero_ir_initial.is("cicero.program"));
        assert!(
            artifacts.cicero_ir_optimized.only_region().len()
                <= artifacts.cicero_ir_initial.only_region().len()
        );
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(compile("("), Err(CompileError::Parse(_))));
    }

    #[test]
    fn stats_are_populated() {
        let compiled = compile("a(b|c)*d").unwrap();
        assert!(compiled.stats().total() > Duration::ZERO);
    }

    #[test]
    fn pass_report_covers_both_pipelines() {
        let compiled = compile("ab|cd").unwrap();
        let names: Vec<_> = compiled.pass_report().passes.iter().map(|p| p.name).collect();
        assert!(names.contains(&"regex-canonicalize"), "{names:?}");
        assert!(names.contains(&"cicero-jump-simplification"), "{names:?}");
        let table = compiled.pass_report().to_string();
        assert!(table.contains("time (us)"), "{table}");
        assert!(table.contains("total"), "{table}");
    }

    #[test]
    fn telemetry_records_spans_and_metrics() {
        let telemetry = Telemetry::new();
        let compiler = Compiler::new().with_telemetry(telemetry.clone());
        let compiled = compiler.compile("ab|cd").unwrap();
        let spans = telemetry.spans();
        let compile_span = spans.iter().find(|s| s.name == "compile").unwrap();
        assert!(compile_span.attrs.iter().any(|(k, _)| k == "code_size"));
        assert!(compile_span.attrs.iter().any(|(k, _)| k == "d_offset"));
        for stage in ["parse", "convert", "high-level", "lowering", "low-level", "codegen"] {
            assert!(
                spans.iter().any(|s| s.name == format!("stage:{stage}")),
                "missing stage:{stage}"
            );
        }
        let pass_spans: Vec<_> = spans.iter().filter(|s| s.name.starts_with("pass:")).collect();
        assert_eq!(pass_spans.len(), compiled.pass_report().passes.len());
        for span in &pass_spans {
            assert!(span.depth >= 2, "pass span should nest under compile/stage");
            assert!(span.attrs.iter().any(|(k, _)| k == "ops_delta"), "{:?}", span.attrs);
        }
        assert_eq!(telemetry.counter("compiler.compilations"), 1);
        assert_eq!(telemetry.counter("compiler.passes_run") as usize, pass_spans.len());
        assert_eq!(telemetry.gauge("compiler.code_size"), Some(compiled.code_size() as f64));
        assert_eq!(telemetry.gauge("compiler.d_offset"), Some(compiled.d_offset() as f64));
    }

    #[test]
    fn telemetry_is_optional_and_absent_by_default() {
        let compiler = Compiler::new();
        assert!(compiler.telemetry().is_none());
        compiler.compile("ab").unwrap();
    }

    #[test]
    fn differential_against_oracle_on_random_patterns() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x51CE80);
        let compilers = [Compiler::with_options(CompilerOptions::unoptimized()), Compiler::new()];
        let mut tested = 0;
        while tested < 120 {
            let pattern = random_pattern(&mut rng);
            let Ok(oracle) = regex_oracle::Oracle::new(&pattern) else { continue };
            tested += 1;
            let programs: Vec<_> = compilers
                .iter()
                .map(|c| c.compile(&pattern).unwrap_or_else(|e| panic!("{pattern:?}: {e}")))
                .collect();
            for _ in 0..30 {
                let len = rng.random_range(0..20);
                let input: Vec<u8> = (0..len).map(|_| rng.random_range(b'a'..=b'f')).collect();
                let expected = oracle.is_match(&input);
                for (c, compiled) in programs.iter().enumerate() {
                    assert_eq!(
                        cicero_isa::accepts(compiled.program(), &input),
                        expected,
                        "compiler {c} on {pattern:?} with input {:?}",
                        String::from_utf8_lossy(&input)
                    );
                }
            }
        }
    }

    fn random_pattern(rng: &mut rand::rngs::StdRng) -> String {
        use rand::RngExt;
        let mut out = String::new();
        let alts = rng.random_range(1..=3);
        for i in 0..alts {
            if i > 0 {
                out.push('|');
            }
            for _ in 0..rng.random_range(1..=4) {
                match rng.random_range(0..8) {
                    0 => out.push('.'),
                    1 => {
                        out.push('[');
                        if rng.random_bool(0.4) {
                            out.push('^');
                        }
                        for _ in 0..rng.random_range(1..=3) {
                            out.push(rng.random_range(b'a'..=b'e') as char);
                        }
                        out.push(']');
                    }
                    2 => {
                        out.push('(');
                        out.push(rng.random_range(b'a'..=b'e') as char);
                        out.push('|');
                        out.push(rng.random_range(b'a'..=b'e') as char);
                        out.push(')');
                    }
                    _ => out.push(rng.random_range(b'a'..=b'e') as char),
                }
                match rng.random_range(0..6) {
                    0 => out.push('*'),
                    1 => out.push('+'),
                    2 => out.push('?'),
                    3 => out.push_str(&format!(
                        "{{{},{}}}",
                        rng.random_range(0..2),
                        rng.random_range(2..4)
                    )),
                    _ => {}
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod compile_set_tests {
    use super::*;

    #[test]
    fn multi_match_reports_ids_end_to_end() {
        let set = Compiler::new().compile_set(&["GET /", "POST /", r"\.\./\.\./"]).unwrap();
        assert_eq!(set.len(), 3);
        let out = cicero_isa::run(set.program(), b"xx POST /api yy");
        assert!(out.accepted);
        assert_eq!(out.matched_id, Some(1));
        assert_eq!(set.pattern(1), Some("POST /"));
        assert!(!cicero_isa::run(set.program(), b"clean payload").accepted);
    }

    #[test]
    fn set_verdict_equals_disjunction_of_singles() {
        let patterns = ["ab+c", "x[yz]", "qq"];
        let set = Compiler::new().compile_set(&patterns).unwrap();
        let singles: Vec<Program> =
            patterns.iter().map(|p| compile(p).unwrap().into_program()).collect();
        let inputs: [&[u8]; 6] = [b"abbbc", b"xz", b"qq", b"none", b"", b"abxq"];
        for input in inputs {
            let expected = singles.iter().any(|p| cicero_isa::accepts(p, input));
            let out = cicero_isa::run(set.program(), input);
            assert_eq!(out.accepted, expected, "{:?}", String::from_utf8_lossy(input));
            if let Some(id) = out.matched_id {
                // The reported pattern must genuinely match.
                assert!(
                    cicero_isa::accepts(&singles[usize::from(id)], input),
                    "reported id {id} does not match"
                );
            }
        }
    }

    #[test]
    fn anchored_patterns_rejected_in_sets() {
        let err = Compiler::new().compile_set(&["^abc", "xyz"]).unwrap_err();
        assert!(matches!(err, CompileError::Pass(_)));
    }

    #[test]
    fn empty_sets_are_rejected_with_a_clear_error() {
        let err = Compiler::new().compile_set::<&str>(&[]).unwrap_err();
        assert!(matches!(err, CompileError::EmptySet));
        assert!(err.to_string().contains("empty pattern set"), "{err}");
    }

    #[test]
    fn duplicate_patterns_keep_distinct_ids() {
        let set = Compiler::new().compile_set(&["ab", "cd", "ab"]).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.pattern(0), Some("ab"));
        assert_eq!(set.pattern(2), Some("ab"));
        // Both copies accept independently: an exhaustive execution sees
        // ids 0 and 2 fire on the same input.
        let all = cicero_isa::run_all(set.program(), b"xxabyy");
        assert_eq!(all.matched_ids, vec![0, 2]);
        let all = cicero_isa::run_all(set.program(), b"abcd");
        assert_eq!(all.matched_ids, vec![0, 1, 2]);
    }

    #[test]
    fn run_all_reports_every_matching_set_member() {
        let patterns = ["GET /", "POST /", "ab+c"];
        let set = Compiler::new().compile_set(&patterns).unwrap();
        let all = cicero_isa::run_all(set.program(), b"GET /abc POST /x");
        assert_eq!(all.matched_ids, vec![0, 1, 2]);
        // The halting path reports only the hardware's first acceptance.
        let one = cicero_isa::run(set.program(), b"GET /abc POST /x");
        assert_eq!(one.matched_id, Some(0));
        assert!(cicero_isa::run_all(set.program(), b"nothing").matched_ids.is_empty());
    }
}
