//! The searcher: exhaustive over small spaces, seeded random + greedy
//! mutation over large ones, memoized by `(workload fingerprint, config)`.

use std::collections::HashMap;
use std::time::Instant;

use cicero_telemetry::Telemetry;

use crate::config::TuneConfig;
use crate::cost::{CostModel, CostReport};
use crate::rng::SplitMix64;
use crate::space::SearchSpace;
use crate::workload::Workload;
use crate::TuneError;

/// How much searching to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// At most this many cost-model evaluations (memo hits are free).
    /// This is the deterministic budget: identical seed + workload +
    /// budget visit identical candidates.
    Evals(usize),
    /// Stop proposing new candidates once this much wall-clock has
    /// elapsed. Inherently machine-dependent; reproducibility is only
    /// promised for [`Budget::Evals`].
    TimeMs(u64),
}

/// What a tuning run concluded.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The winning config. Never worse than [`TuneConfig::default`] under
    /// the run's cost model: the default is always candidate zero and the
    /// incumbent only changes on strictly lower cost.
    pub best: TuneConfig,
    /// The winner's evaluation.
    pub best_report: CostReport,
    /// The baseline's evaluation (for tuned-vs-default reporting).
    pub default_report: CostReport,
    /// Cost-model invocations actually performed.
    pub evals: usize,
    /// Proposals answered from the memo table instead of the model.
    pub memo_hits: usize,
    /// `exhaustive` or `random-mutation`.
    pub strategy: &'static str,
}

/// Search `space` for the lowest-cost config on `workload`.
///
/// Strategy selection: if an eval budget covers the whole space the sweep
/// is exhaustive (in index order, so deterministic regardless of seed);
/// otherwise seeded random sampling interleaved with greedy single-axis
/// mutations of the incumbent. Either way the default config is evaluated
/// first and ties never dethrone it.
///
/// Telemetry (when given): a `tune.search` span plus `tune.evals` /
/// `tune.memo_hits` counters and a `tune.best_cost` gauge.
///
/// # Errors
///
/// [`TuneError::Invalid`] for an empty workload or zero budget;
/// [`TuneError::Compile`] if the *default* config cannot compile the
/// workload (candidate compile failures just disqualify the candidate).
pub fn tune(
    workload: &Workload,
    space: &SearchSpace,
    model: &dyn CostModel,
    budget: Budget,
    seed: u64,
    telemetry: Option<&Telemetry>,
) -> Result<TuneOutcome, TuneError> {
    if workload.patterns.is_empty() {
        return Err(TuneError::Invalid("workload has no patterns".to_owned()));
    }
    match budget {
        Budget::Evals(0) => {
            return Err(TuneError::Invalid("budget must allow at least one eval".to_owned()))
        }
        Budget::Evals(_) | Budget::TimeMs(_) => {}
    }
    let _span = telemetry.map(|t| t.span("tune.search"));
    let fingerprint = workload.fingerprint();
    let started = Instant::now();
    let mut memo: HashMap<(u64, TuneConfig), CostReport> = HashMap::new();
    let mut evals = 0usize;
    let mut memo_hits = 0usize;

    // One evaluation, through the memo table. `None` = candidate failed
    // to compile (disqualified, budget still charged).
    let mut evaluate = |config: &TuneConfig,
                        evals: &mut usize,
                        memo_hits: &mut usize|
     -> Result<Option<CostReport>, TuneError> {
        if let Some(report) = memo.get(&(fingerprint, *config)) {
            *memo_hits += 1;
            if let Some(t) = telemetry {
                t.counter_add("tune.memo_hits", 1);
            }
            return Ok(Some(*report));
        }
        *evals += 1;
        if let Some(t) = telemetry {
            t.counter_add("tune.evals", 1);
        }
        match model.evaluate(workload, config) {
            Ok(report) => {
                memo.insert((fingerprint, *config), report);
                Ok(Some(report))
            }
            Err(TuneError::Compile(_)) => Ok(None),
            Err(e) => Err(e),
        }
    };

    let exhausted = |evals: usize| match budget {
        Budget::Evals(max) => evals >= max,
        Budget::TimeMs(ms) => started.elapsed().as_millis() >= u128::from(ms),
    };

    // The baseline is always candidate zero — and its failure is the
    // run's failure: a tuner that cannot score the default has nothing
    // sound to compare against.
    let default_config = TuneConfig::default();
    let default_report = match evaluate(&default_config, &mut evals, &mut memo_hits)? {
        Some(report) => report,
        None => {
            return Err(model
                .evaluate(workload, &default_config)
                .err()
                .unwrap_or_else(|| TuneError::Invalid("default evaluation failed".to_owned())))
        }
    };
    let mut best = default_config;
    let mut best_report = default_report;
    let mut best_indices: Vec<usize> = vec![0; space.axis_sizes().len()];

    let exhaustive = matches!(budget, Budget::Evals(max) if space.size() <= max);
    let strategy = if exhaustive { "exhaustive" } else { "random-mutation" };

    if exhaustive {
        // Index 0 is the default config — already evaluated above.
        for index in 1..space.size() {
            if exhausted(evals) {
                break;
            }
            let config = space.config_at(index);
            if let Some(report) = evaluate(&config, &mut evals, &mut memo_hits)? {
                if report.cost < best_report.cost {
                    best = config;
                    best_report = report;
                }
            }
        }
    } else {
        let mut rng = SplitMix64::new(seed);
        let sizes = space.axis_sizes();
        // Cap total proposals so a fully-memoized neighborhood cannot
        // spin forever on free memo hits.
        let proposal_cap = match budget {
            Budget::Evals(max) => max.saturating_mul(10),
            Budget::TimeMs(_) => usize::MAX,
        };
        let mut proposals = 0usize;
        while !exhausted(evals) && proposals < proposal_cap {
            proposals += 1;
            // Alternate exploration (fresh uniform draw) with
            // exploitation (mutate one axis of the incumbent).
            let indices: Vec<usize> = if proposals.is_multiple_of(2) {
                sizes.iter().map(|&size| rng.below(size)).collect()
            } else {
                let mut indices = best_indices.clone();
                // Pick an axis with at least two candidates.
                let mutable: Vec<usize> = (0..sizes.len()).filter(|&a| sizes[a] > 1).collect();
                if mutable.is_empty() {
                    break; // single-point space: nothing to search
                }
                let axis = mutable[rng.below(mutable.len())];
                let bump = 1 + rng.below(sizes[axis] - 1);
                indices[axis] = (indices[axis] + bump) % sizes[axis];
                indices
            };
            let config = space.config_from_indices(&indices);
            if let Some(report) = evaluate(&config, &mut evals, &mut memo_hits)? {
                if report.cost < best_report.cost {
                    best = config;
                    best_report = report;
                    best_indices = indices;
                }
            }
        }
    }

    if let Some(t) = telemetry {
        t.gauge_set("tune.best_cost", best_report.cost);
        t.gauge_set("tune.default_cost", default_report.cost);
    }
    debug_assert!(best_report.cost <= default_report.cost, "tuned can never lose to default");
    Ok(TuneOutcome { best, best_report, default_report, evals, memo_hits, strategy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SimCostModel;

    fn workload() -> Workload {
        Workload::from_patterns(&["ab+c".to_owned(), "th(is|at)".to_owned()]).unwrap()
    }

    #[test]
    fn small_space_goes_exhaustive_and_beats_or_matches_default() {
        let workload = workload();
        let space = SearchSpace::compiler_only();
        let outcome = tune(&workload, &space, &SimCostModel, Budget::Evals(100), 42, None).unwrap();
        assert_eq!(outcome.strategy, "exhaustive");
        assert!(outcome.evals <= space.size());
        assert!(outcome.best_report.cost <= outcome.default_report.cost);
    }

    #[test]
    fn large_space_uses_seeded_search_deterministically() {
        let workload = workload();
        let space = SearchSpace::full();
        let a = tune(&workload, &space, &SimCostModel, Budget::Evals(12), 42, None).unwrap();
        let b = tune(&workload, &space, &SimCostModel, Budget::Evals(12), 42, None).unwrap();
        assert_eq!(a.strategy, "random-mutation");
        assert_eq!(a.best, b.best, "same seed, same winner");
        assert_eq!(a.evals, b.evals);
        assert!(a.best_report.cost <= a.default_report.cost);
    }

    #[test]
    fn different_seeds_may_visit_different_candidates_but_never_regress() {
        let workload = workload();
        let space = SearchSpace::full();
        for seed in [1u64, 7, 99] {
            let outcome =
                tune(&workload, &space, &SimCostModel, Budget::Evals(8), seed, None).unwrap();
            assert!(outcome.best_report.cost <= outcome.default_report.cost, "seed {seed}");
        }
    }

    #[test]
    fn memo_answers_repeat_proposals() {
        let workload = workload();
        // A 12-point space with a 100-eval budget sweeps exhaustively
        // with no repeats; force the sampling path instead, where the
        // proposal stream revisits configs.
        let space = SearchSpace::full();
        let outcome = tune(&workload, &space, &SimCostModel, Budget::Evals(40), 3, None).unwrap();
        // 40 evals over ~7k points rarely collide, but mutation
        // re-proposes neighbors of the incumbent constantly; at least
        // one memo hit is effectively guaranteed. If this ever flakes,
        // the seed is pinned, so it cannot: the run is deterministic.
        assert!(outcome.memo_hits > 0, "memo must absorb repeat proposals");
        assert_eq!(outcome.evals, 40);
    }

    #[test]
    fn telemetry_counters_land_in_the_tune_namespace() {
        let workload = workload();
        let telemetry = Telemetry::new();
        let space = SearchSpace::compiler_only();
        tune(&workload, &space, &SimCostModel, Budget::Evals(20), 1, Some(&telemetry)).unwrap();
        let summary = telemetry.render_summary();
        assert!(summary.contains("tune.evals"), "{summary}");
        assert!(summary.contains("tune.best_cost"), "{summary}");
    }

    #[test]
    fn zero_budget_and_empty_workloads_are_rejected() {
        let space = SearchSpace::compiler_only();
        assert!(matches!(
            tune(&workload(), &space, &SimCostModel, Budget::Evals(0), 1, None),
            Err(TuneError::Invalid(_))
        ));
        let empty = Workload { name: "empty".to_owned(), patterns: vec![], chunks: vec![] };
        assert!(matches!(
            tune(&empty, &space, &SimCostModel, Budget::Evals(5), 1, None),
            Err(TuneError::Invalid(_))
        ));
    }

    #[test]
    fn time_budget_terminates() {
        let workload = workload();
        let space = SearchSpace::full();
        let outcome = tune(&workload, &space, &SimCostModel, Budget::TimeMs(50), 5, None).unwrap();
        assert!(outcome.evals >= 1, "at least the default is evaluated");
    }
}
