//! Per-tenant admission control: in-flight quotas and token-bucket rate
//! limits keyed on the `X-Cicero-Tenant` header.
//!
//! This layers *fairness* on top of the existing capacity admission
//! (bounded dispatch queue + connection cap): the global limits protect
//! the server, these protect tenants from each other. A denied request
//! is a `429` whose `Retry-After` comes from the same p50-scaled clamp
//! helper as every other backpressure answer
//! ([`crate::retry_after_secs`]) — one function, every path.
//!
//! The token bucket is the classic shape: each tenant accrues
//! `rate_per_sec` tokens up to `burst`; a request spends one token or is
//! rate-limited. Refill is computed lazily from elapsed time at each
//! admission, so there is no background thread. The quota is a plain
//! in-flight counter released by the RAII [`TenantPermit`].
//!
//! Requests with no tenant header share the `"default"` tenant, so
//! enabling the governor covers anonymous traffic too. Tracked tenants
//! are bounded ([`MAX_TRACKED_TENANTS`]); past the cap, new tenant names
//! share one overflow bucket rather than growing the map unboundedly.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cicero_telemetry::Telemetry;

/// The tenant label applied when the request carries no
/// `X-Cicero-Tenant` header.
pub const DEFAULT_TENANT: &str = "default";

/// Bound on distinct tenant buckets; later tenants share `"overflow"`.
pub const MAX_TRACKED_TENANTS: usize = 1024;

/// Per-tenant limits. A field at `0` disables that check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Maximum concurrently admitted requests per tenant (`0` = no
    /// quota).
    pub max_in_flight: usize,
    /// Steady-state admissions per second per tenant (`0.0` = no rate
    /// limit).
    pub rate_per_sec: f64,
    /// Token-bucket capacity: how large a burst a freshly idle tenant
    /// may send. Clamped to at least 1 when rate limiting is on.
    pub burst: f64,
}

impl TenantPolicy {
    /// A policy with both checks disabled (every request admitted).
    pub fn unlimited() -> TenantPolicy {
        TenantPolicy { max_in_flight: 0, rate_per_sec: 0.0, burst: 0.0 }
    }

    /// Whether any check is active.
    pub fn is_active(&self) -> bool {
        self.max_in_flight > 0 || self.rate_per_sec > 0.0
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantDenial {
    /// The token bucket is empty: the tenant exceeded its sustained
    /// rate.
    RateLimited,
    /// The tenant is at its in-flight quota.
    QuotaExceeded,
}

impl TenantDenial {
    /// The stable wire label used in error bodies and metrics.
    pub fn label(self) -> &'static str {
        match self {
            TenantDenial::RateLimited => "rate_limited",
            TenantDenial::QuotaExceeded => "quota_exceeded",
        }
    }
}

struct Bucket {
    tokens: f64,
    refilled_at: Instant,
    in_flight: usize,
}

struct Inner {
    policy: TenantPolicy,
    buckets: Mutex<HashMap<String, Bucket>>,
    telemetry: Telemetry,
}

/// The per-tenant admission governor. Clone-cheap (`Arc` inside).
#[derive(Clone)]
pub struct TenantGovernor {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for TenantGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantGovernor").field("policy", &self.inner.policy).finish()
    }
}

/// An admitted request's hold on its tenant's quota slot; released on
/// drop.
pub struct TenantPermit {
    inner: Arc<Inner>,
    tenant: String,
}

impl std::fmt::Debug for TenantPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantPermit").field("tenant", &self.tenant).finish()
    }
}

impl Drop for TenantPermit {
    fn drop(&mut self) {
        let mut buckets = self.inner.buckets.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(bucket) = buckets.get_mut(&self.tenant) {
            bucket.in_flight = bucket.in_flight.saturating_sub(1);
        }
    }
}

impl TenantGovernor {
    /// Build a governor; an inactive policy admits everything without
    /// touching the map.
    pub fn new(policy: TenantPolicy, telemetry: Telemetry) -> TenantGovernor {
        TenantGovernor {
            inner: Arc::new(Inner { policy, buckets: Mutex::new(HashMap::new()), telemetry }),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> TenantPolicy {
        self.inner.policy
    }

    /// Admit one request for `tenant` now.
    ///
    /// # Errors
    ///
    /// The denial reason; the caller turns it into a `429`.
    pub fn admit(&self, tenant: &str) -> Result<TenantPermit, TenantDenial> {
        self.admit_at(tenant, Instant::now())
    }

    /// [`TenantGovernor::admit`] with an explicit clock, so tests can
    /// drive refill deterministically.
    ///
    /// # Errors
    ///
    /// The denial reason; the caller turns it into a `429`.
    pub fn admit_at(&self, tenant: &str, now: Instant) -> Result<TenantPermit, TenantDenial> {
        let policy = self.inner.policy;
        let tenant = normalize_tenant(tenant);
        if !policy.is_active() {
            // No accounting at all: the permit's drop is a no-op lookup.
            return Ok(TenantPermit { inner: Arc::clone(&self.inner), tenant });
        }
        let mut buckets = self.inner.buckets.lock().unwrap_or_else(|p| p.into_inner());
        let key = if buckets.len() >= MAX_TRACKED_TENANTS && !buckets.contains_key(&tenant) {
            "overflow".to_owned()
        } else {
            tenant
        };
        let burst = if policy.rate_per_sec > 0.0 { policy.burst.max(1.0) } else { 0.0 };
        let bucket = buckets.entry(key.clone()).or_insert(Bucket {
            tokens: burst,
            refilled_at: now,
            in_flight: 0,
        });
        if policy.rate_per_sec > 0.0 {
            let elapsed = now.saturating_duration_since(bucket.refilled_at).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * policy.rate_per_sec).min(burst);
            bucket.refilled_at = now;
            if bucket.tokens < 1.0 {
                self.note_denial(&key, TenantDenial::RateLimited);
                return Err(TenantDenial::RateLimited);
            }
        }
        if policy.max_in_flight > 0 && bucket.in_flight >= policy.max_in_flight {
            self.note_denial(&key, TenantDenial::QuotaExceeded);
            return Err(TenantDenial::QuotaExceeded);
        }
        if policy.rate_per_sec > 0.0 {
            bucket.tokens -= 1.0;
        }
        bucket.in_flight += 1;
        drop(buckets);
        self.inner.telemetry.counter_add(&format!("server.tenant.{key}.requests"), 1);
        Ok(TenantPermit { inner: Arc::clone(&self.inner), tenant: key })
    }

    fn note_denial(&self, tenant: &str, denial: TenantDenial) {
        self.inner.telemetry.counter_add("server.tenant_rejections", 1);
        self.inner.telemetry.counter_add(&format!("server.tenant.{tenant}.{}", denial.label()), 1);
    }
}

/// Tenant names feed metric names, so the alphabet is conservative:
/// anything else (or an over-long name) folds to `"other"`.
fn normalize_tenant(tenant: &str) -> String {
    let ok = !tenant.is_empty()
        && tenant.len() <= 64
        && tenant.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_'));
    if ok {
        tenant.to_owned()
    } else if tenant.is_empty() {
        DEFAULT_TENANT.to_owned()
    } else {
        "other".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inactive_policy_admits_everything() {
        let governor = TenantGovernor::new(TenantPolicy::unlimited(), Telemetry::new());
        for _ in 0..100 {
            let permit = governor.admit("t").unwrap();
            drop(permit);
        }
    }

    #[test]
    fn quota_caps_in_flight_and_releases_on_drop() {
        let policy = TenantPolicy { max_in_flight: 2, rate_per_sec: 0.0, burst: 0.0 };
        let telemetry = Telemetry::new();
        let governor = TenantGovernor::new(policy, telemetry.clone());
        let a = governor.admit("acme").unwrap();
        let _b = governor.admit("acme").unwrap();
        assert_eq!(governor.admit("acme").unwrap_err(), TenantDenial::QuotaExceeded);
        // Another tenant is unaffected.
        let _c = governor.admit("globex").unwrap();
        // Releasing one slot re-admits.
        drop(a);
        let _d = governor.admit("acme").unwrap();
        assert_eq!(telemetry.counter("server.tenant.acme.quota_exceeded"), 1);
        assert_eq!(telemetry.counter("server.tenant_rejections"), 1);
        assert_eq!(telemetry.counter("server.tenant.acme.requests"), 3);
        assert_eq!(telemetry.counter("server.tenant.globex.requests"), 1);
    }

    #[test]
    fn token_bucket_spends_burst_then_refills_at_rate() {
        let policy = TenantPolicy { max_in_flight: 0, rate_per_sec: 10.0, burst: 3.0 };
        let telemetry = Telemetry::new();
        let governor = TenantGovernor::new(policy, telemetry.clone());
        let t0 = Instant::now();
        // The burst admits 3 back-to-back, then the bucket is dry.
        for _ in 0..3 {
            drop(governor.admit_at("t", t0).unwrap());
        }
        assert_eq!(governor.admit_at("t", t0).unwrap_err(), TenantDenial::RateLimited);
        // 100ms at 10/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        drop(governor.admit_at("t", t1).unwrap());
        assert_eq!(governor.admit_at("t", t1).unwrap_err(), TenantDenial::RateLimited);
        // A long idle period caps at the burst, not unbounded credit.
        let t2 = t1 + Duration::from_secs(3600);
        for _ in 0..3 {
            drop(governor.admit_at("t", t2).unwrap());
        }
        assert_eq!(governor.admit_at("t", t2).unwrap_err(), TenantDenial::RateLimited);
        assert_eq!(telemetry.counter("server.tenant.t.rate_limited"), 3);
    }

    #[test]
    fn rate_and_quota_compose() {
        let policy = TenantPolicy { max_in_flight: 1, rate_per_sec: 100.0, burst: 100.0 };
        let governor = TenantGovernor::new(policy, Telemetry::new());
        let t0 = Instant::now();
        let held = governor.admit_at("t", t0).unwrap();
        // Tokens remain, but the quota is the binding constraint.
        assert_eq!(governor.admit_at("t", t0).unwrap_err(), TenantDenial::QuotaExceeded);
        drop(held);
        governor.admit_at("t", t0).unwrap();
    }

    #[test]
    fn tenant_names_are_normalized_for_metric_safety() {
        assert_eq!(normalize_tenant("acme-prod_1"), "acme-prod_1");
        assert_eq!(normalize_tenant(""), DEFAULT_TENANT);
        assert_eq!(normalize_tenant("weird name!"), "other");
        assert_eq!(normalize_tenant(&"x".repeat(65)), "other");
    }
}
