//! Passes and the pass manager.

use std::fmt;
use std::time::{Duration, Instant};

use crate::dialect::Context;
use crate::op::Operation;

/// A compiler pass transforming an operation tree in place.
pub trait Pass {
    /// Stable diagnostic name, e.g. `regex-factorize-alternations`.
    fn name(&self) -> &'static str;

    /// Run the pass on `root`.
    ///
    /// # Errors
    ///
    /// Returns a [`PassError`] if the pass cannot complete (malformed
    /// input IR, resource limits, internal invariant violations).
    fn run(&self, root: &mut Operation, ctx: &Context) -> Result<(), PassError>;
}

/// A pass failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Name of the failing pass (filled in by the pass manager if empty).
    pub pass: String,
    /// Human-readable description.
    pub message: String,
}

impl PassError {
    /// Construct an error with the pass name left for the manager to fill.
    pub fn new(message: impl Into<String>) -> PassError {
        PassError { pass: String::new(), message: message.into() }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pass.is_empty() {
            write!(f, "pass failed: {}", self.message)
        } else {
            write!(f, "pass `{}` failed: {}", self.pass, self.message)
        }
    }
}

impl std::error::Error for PassError {}

/// Observation hooks around each pass execution.
///
/// Mirrors `mlir::PassInstrumentation`: the pass manager calls
/// [`PassInstrumentation::run_before_pass`] with the IR as it enters the
/// pass and [`PassInstrumentation::run_after_pass`] with the finished
/// [`PassReport`] (duration plus op-count delta). Instrumentations observe
/// the IR but never mutate it, so they can be layered freely — timing,
/// statistics, IR dumping — without affecting pipeline semantics.
pub trait PassInstrumentation {
    /// Called immediately before a pass runs.
    fn run_before_pass(&self, _pass_name: &'static str, _root: &Operation) {}

    /// Called after a pass (and any inter-pass verification) succeeds.
    fn run_after_pass(&self, _pass_name: &'static str, _root: &Operation, _report: &PassReport) {}

    /// Called when a pass or its post-verification fails.
    fn run_after_pass_failed(&self, _pass_name: &'static str, _error: &PassError) {}
}

/// Timing and structural data for one executed pass.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Pass name.
    pub name: &'static str,
    /// Wall-clock duration of the pass.
    pub duration: Duration,
    /// Op count before the pass ran.
    pub ops_before: usize,
    /// Op count after the pass ran.
    pub ops_after: usize,
}

impl PassReport {
    /// Signed op-count delta (`ops_after - ops_before`).
    pub fn ops_delta(&self) -> i64 {
        self.ops_after as i64 - self.ops_before as i64
    }
}

/// Report for a whole pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// One entry per executed pass, in order.
    pub passes: Vec<PassReport>,
}

impl PipelineReport {
    /// Total wall-clock time across all passes.
    pub fn total_duration(&self) -> Duration {
        self.passes.iter().map(|p| p.duration).sum()
    }

    /// Append another pipeline's passes (e.g. high-level then low-level).
    pub fn extend(&mut self, other: &PipelineReport) {
        self.passes.extend(other.passes.iter().cloned());
    }
}

impl fmt::Display for PipelineReport {
    /// An aligned per-pass timing table, modeled on MLIR's
    /// `-mlir-timing` report: duration, share of total, and op-count
    /// delta per pass, followed by a total row.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name_width = self
            .passes
            .iter()
            .map(|p| p.name.len())
            .chain(["pass".len(), "total".len()])
            .max()
            .unwrap_or(4);
        let total_us = self.total_duration().as_secs_f64() * 1e6;
        writeln!(
            f,
            "{:<name_width$}  {:>12}  {:>6}  {:>7}  {:>7}  {:>6}",
            "pass", "time (us)", "%", "ops in", "ops out", "delta"
        )?;
        for p in &self.passes {
            let us = p.duration.as_secs_f64() * 1e6;
            let share = if total_us > 0.0 { 100.0 * us / total_us } else { 0.0 };
            writeln!(
                f,
                "{:<name_width$}  {:>12.1}  {:>6.1}  {:>7}  {:>7}  {:>+6}",
                p.name,
                us,
                share,
                p.ops_before,
                p.ops_after,
                p.ops_delta()
            )?;
        }
        write!(f, "{:<name_width$}  {:>12.1}  {:>6.1}", "total", total_us, 100.0)
    }
}

/// A name-keyed catalogue of pass factories, for building pipelines from
/// configuration rather than code.
///
/// Mirrors MLIR's pass registration: dialects register each pass under
/// its stable diagnostic name once, and drivers (or an autotuner
/// exploring pass orderings) assemble a [`PassManager`] from a list of
/// names. Unknown names fail loudly instead of silently shortening the
/// pipeline, so a stale `tune.toml` cannot masquerade as a valid
/// configuration.
#[derive(Default)]
pub struct PassRegistry {
    factories: Vec<(&'static str, PassFactory)>,
}

/// A factory producing a fresh instance of one registered pass.
type PassFactory = Box<dyn Fn() -> Box<dyn Pass>>;

impl fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassRegistry").field("passes", &self.names()).finish()
    }
}

impl PassRegistry {
    /// An empty registry.
    pub fn new() -> PassRegistry {
        PassRegistry { factories: Vec::new() }
    }

    /// Register `factory` under `name`. Re-registering a name replaces
    /// the earlier factory (latest wins), matching how drivers layer
    /// overrides.
    pub fn register(
        &mut self,
        name: &'static str,
        factory: impl Fn() -> Box<dyn Pass> + 'static,
    ) -> &mut Self {
        self.factories.retain(|(n, _)| *n != name);
        self.factories.push((name, Box::new(factory)));
        self
    }

    /// Registered pass names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.factories.iter().map(|(n, _)| *n).collect()
    }

    /// Instantiate one registered pass by name.
    pub fn create(&self, name: &str) -> Option<Box<dyn Pass>> {
        self.factories.iter().find(|(n, _)| *n == name).map(|(_, f)| f())
    }

    /// Append the named passes to `pm`, in the given order.
    ///
    /// # Errors
    ///
    /// Returns a [`PassError`] naming the first unknown pass; nothing is
    /// added to `pm` in that case (the pipeline is validated before
    /// construction, so a half-built manager can never run).
    pub fn build(&self, pm: &mut PassManager, pipeline: &[&str]) -> Result<(), PassError> {
        if let Some(unknown) = pipeline.iter().find(|name| self.create(name).is_none()) {
            return Err(PassError {
                pass: (*unknown).to_owned(),
                message: format!(
                    "unknown pass `{unknown}` (registered: {})",
                    self.names().join(", ")
                ),
            });
        }
        for name in pipeline {
            pm.add_pass(self.create(name).expect("validated above"));
        }
        Ok(())
    }
}

/// An ordered pipeline of passes with optional inter-pass verification.
///
/// Mirrors `mlir::PassManager`: passes run in order, and when
/// [`PassManager::verify_each`] is enabled the IR is verified against the
/// context's registered dialects after every pass, turning pass bugs into
/// immediate, attributed failures.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    instrumentations: Vec<Box<dyn PassInstrumentation>>,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("verify_each", &self.verify_each)
            .field("instrumentations", &self.instrumentations.len())
            .finish()
    }
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::new()
    }
}

impl PassManager {
    /// An empty pipeline with inter-pass verification enabled.
    pub fn new() -> PassManager {
        PassManager { passes: Vec::new(), verify_each: true, instrumentations: Vec::new() }
    }

    /// Append a pass.
    pub fn add_pass(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Attach an observation hook fired around every pass. Multiple
    /// instrumentations run in registration order.
    pub fn add_instrumentation(&mut self, instr: Box<dyn PassInstrumentation>) -> &mut Self {
        self.instrumentations.push(instr);
        self
    }

    /// Enable or disable verification after each pass.
    pub fn verify_each(&mut self, enabled: bool) -> &mut Self {
        self.verify_each = enabled;
        self
    }

    /// Number of passes in the pipeline.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Run the pipeline on `root`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PassError`] (with the pass name attached) or
    /// converts the first post-pass verification failure into one.
    pub fn run(&self, root: &mut Operation, ctx: &Context) -> Result<PipelineReport, PassError> {
        let mut report = PipelineReport::default();
        for pass in &self.passes {
            for instr in &self.instrumentations {
                instr.run_before_pass(pass.name(), root);
            }
            let ops_before = root.subtree_size();
            let start = Instant::now();
            let run_result = pass.run(root, ctx).map_err(|mut e| {
                if e.pass.is_empty() {
                    e.pass = pass.name().to_owned();
                }
                e
            });
            let duration = start.elapsed();
            let verified = run_result.and_then(|()| {
                if self.verify_each {
                    ctx.verify(root).map_err(|e| PassError {
                        pass: pass.name().to_owned(),
                        message: format!("IR invalid after pass: {e}"),
                    })
                } else {
                    Ok(())
                }
            });
            if let Err(error) = verified {
                for instr in &self.instrumentations {
                    instr.run_after_pass_failed(pass.name(), &error);
                }
                return Err(error);
            }
            let pass_report = PassReport {
                name: pass.name(),
                duration,
                ops_before,
                ops_after: root.subtree_size(),
            };
            for instr in &self.instrumentations {
                instr.run_after_pass(pass.name(), root, &pass_report);
            }
            report.passes.push(pass_report);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{Dialect, OpDefinition};
    use crate::op::Region;

    struct AppendLeaf;
    impl Pass for AppendLeaf {
        fn name(&self) -> &'static str {
            "append-leaf"
        }
        fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
            root.only_region_mut().ops.push(Operation::new("t.leaf"));
            Ok(())
        }
    }

    struct Corrupt;
    impl Pass for Corrupt {
        fn name(&self) -> &'static str {
            "corrupt"
        }
        fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
            root.only_region_mut().ops.push(Operation::new("t.undefined"));
            Ok(())
        }
    }

    struct Fail;
    impl Pass for Fail {
        fn name(&self) -> &'static str {
            "fail"
        }
        fn run(&self, _root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
            Err(PassError::new("deliberate"))
        }
    }

    fn ctx() -> Context {
        let mut d = Dialect::new("t");
        d.register_op(OpDefinition::simple("module", 1));
        d.register_op(OpDefinition::simple("leaf", 0));
        let mut c = Context::new();
        c.register_dialect(d);
        c
    }

    fn module() -> Operation {
        Operation::new("t.module").with_region(Region::new())
    }

    #[test]
    fn pipeline_runs_in_order_and_reports() {
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(AppendLeaf)).add_pass(Box::new(AppendLeaf));
        let mut m = module();
        let report = pm.run(&mut m, &ctx()).unwrap();
        assert_eq!(m.only_region().len(), 2);
        assert_eq!(report.passes.len(), 2);
        assert_eq!(report.passes[0].ops_before, 1);
        assert_eq!(report.passes[0].ops_after, 2);
        assert_eq!(report.passes[1].ops_after, 3);
    }

    #[test]
    fn failure_is_attributed_to_pass() {
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(Fail));
        let err = pm.run(&mut module(), &ctx()).unwrap_err();
        assert_eq!(err.pass, "fail");
    }

    #[test]
    fn verify_each_catches_corruption() {
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(Corrupt));
        let err = pm.run(&mut module(), &ctx()).unwrap_err();
        assert_eq!(err.pass, "corrupt");
        assert!(err.message.contains("IR invalid after pass"), "{err}");
    }

    #[test]
    fn verification_can_be_disabled() {
        let mut pm = PassManager::new();
        pm.verify_each(false);
        pm.add_pass(Box::new(Corrupt));
        pm.run(&mut module(), &ctx()).unwrap();
    }

    #[test]
    fn report_displays() {
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(AppendLeaf));
        let report = pm.run(&mut module(), &ctx()).unwrap();
        let text = report.to_string();
        assert!(text.contains("append-leaf"), "{text}");
        assert!(text.contains("total"), "{text}");
    }

    #[test]
    fn report_display_is_aligned() {
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(AppendLeaf)).add_pass(Box::new(AppendLeaf));
        let report = pm.run(&mut module(), &ctx()).unwrap();
        let text = report.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 passes + total
                                    // Every pass row starts its numeric columns at the same offset as
                                    // the header columns.
        let header_time = lines[0].find("time (us)").unwrap();
        for row in &lines[1..3] {
            assert!(row.len() > header_time, "{text}");
            assert!(row.contains("append-leaf"), "{text}");
        }
        assert!(lines[1].contains("+1"), "delta column missing: {text}");
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[derive(Default)]
    struct CountingInstr {
        before: AtomicUsize,
        after: AtomicUsize,
        failed: AtomicUsize,
        delta_sum: AtomicUsize,
    }

    impl PassInstrumentation for Arc<CountingInstr> {
        fn run_before_pass(&self, _pass: &'static str, _root: &Operation) {
            self.before.fetch_add(1, Ordering::SeqCst);
        }
        fn run_after_pass(&self, _pass: &'static str, _root: &Operation, report: &PassReport) {
            self.after.fetch_add(1, Ordering::SeqCst);
            self.delta_sum.fetch_add(report.ops_delta().unsigned_abs() as usize, Ordering::SeqCst);
        }
        fn run_after_pass_failed(&self, _pass: &'static str, _error: &PassError) {
            self.failed.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn instrumentation_sees_every_pass() {
        let instr = Arc::new(CountingInstr::default());
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(AppendLeaf)).add_pass(Box::new(AppendLeaf));
        pm.add_instrumentation(Box::new(Arc::clone(&instr)));
        pm.run(&mut module(), &ctx()).unwrap();
        assert_eq!(instr.before.load(Ordering::SeqCst), 2);
        assert_eq!(instr.after.load(Ordering::SeqCst), 2);
        assert_eq!(instr.failed.load(Ordering::SeqCst), 0);
        assert_eq!(instr.delta_sum.load(Ordering::SeqCst), 2); // +1 op per pass
    }

    #[test]
    fn instrumentation_observes_failures() {
        let instr = Arc::new(CountingInstr::default());
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(AppendLeaf)).add_pass(Box::new(Fail));
        pm.add_instrumentation(Box::new(Arc::clone(&instr)));
        pm.run(&mut module(), &ctx()).unwrap_err();
        assert_eq!(instr.before.load(Ordering::SeqCst), 2);
        assert_eq!(instr.after.load(Ordering::SeqCst), 1);
        assert_eq!(instr.failed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn registry_builds_pipelines_in_the_requested_order() {
        let mut registry = PassRegistry::new();
        registry.register("append-leaf", || Box::new(AppendLeaf));
        registry.register("fail", || Box::new(Fail));
        let mut pm = PassManager::new();
        registry.build(&mut pm, &["append-leaf", "append-leaf"]).unwrap();
        assert_eq!(pm.len(), 2);
        let mut m = module();
        pm.run(&mut m, &ctx()).unwrap();
        assert_eq!(m.only_region().len(), 2);
    }

    #[test]
    fn registry_rejects_unknown_passes_without_building_anything() {
        let mut registry = PassRegistry::new();
        registry.register("append-leaf", || Box::new(AppendLeaf));
        let mut pm = PassManager::new();
        let err = registry.build(&mut pm, &["append-leaf", "no-such-pass"]).unwrap_err();
        assert_eq!(err.pass, "no-such-pass");
        assert!(err.message.contains("registered: append-leaf"), "{err}");
        assert!(pm.is_empty(), "a failed build must not half-populate the manager");
    }

    #[test]
    fn registry_reregistration_replaces_the_factory() {
        let mut registry = PassRegistry::new();
        registry.register("p", || Box::new(Fail));
        registry.register("p", || Box::new(AppendLeaf));
        assert_eq!(registry.names(), vec!["p"]);
        assert_eq!(registry.create("p").unwrap().name(), "append-leaf");
    }

    #[test]
    fn verification_failure_reaches_instrumentation() {
        let instr = Arc::new(CountingInstr::default());
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(Corrupt));
        pm.add_instrumentation(Box::new(Arc::clone(&instr)));
        pm.run(&mut module(), &ctx()).unwrap_err();
        assert_eq!(instr.failed.load(Ordering::SeqCst), 1);
    }
}
