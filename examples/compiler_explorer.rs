//! Compiler explorer: dump every intermediate representation of the
//! multi-dialect pipeline for a pattern, and contrast the three
//! optimization outcomes of the paper's Listing 2.
//!
//! ```sh
//! cargo run --example compiler_explorer -- 'th(is|at|ose)'
//! ```

use cicero::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pattern = std::env::args().nth(1).unwrap_or_else(|| "ab|cd".to_owned());

    let compiler = Compiler::new();
    let artifacts = compiler.compile_with_artifacts(&pattern)?;

    println!("== pattern =========================================================");
    println!("{pattern}\n");

    println!("== regex dialect (after AST conversion) ============================");
    print!("{}", artifacts.regex_ir_initial.to_text());

    println!("\n== regex dialect (after canonicalize/factorize/shortest-match) ====");
    print!("{}", artifacts.regex_ir_optimized.to_text());
    println!(
        "\n   as a pattern: {}",
        cicero::regex_dialect::ir_to_pattern(&artifacts.regex_ir_optimized)
    );

    println!("\n== cicero dialect (after lowering) =================================");
    print!("{}", artifacts.cicero_ir_initial.to_text());

    println!("\n== cicero dialect (after Jump Simplification) ======================");
    print!("{}", artifacts.cicero_ir_optimized.to_text());

    println!("\n== final assembly ==================================================");
    print!("{}", artifacts.compiled.program().to_asm());
    println!(
        "\ncode size {} instructions, D_offset {}",
        artifacts.compiled.code_size(),
        artifacts.compiled.d_offset()
    );

    println!("\n== Listing-2-style comparison ======================================");
    let unopt = Compiler::with_options(CompilerOptions::unoptimized()).compile(&pattern)?;
    let old = LegacyCompiler::new(true).compile(&pattern)?;
    println!("{:<28} {:>10} {:>10}", "", "code size", "D_offset");
    println!("{:<28} {:>10} {:>10}", "no optimization", unopt.code_size(), unopt.d_offset());
    println!("{:<28} {:>10} {:>10}", "old: Code Restructuring", old.len(), old.total_jump_offset());
    println!(
        "{:<28} {:>10} {:>10}",
        "new: Jump Simplification",
        artifacts.compiled.code_size(),
        artifacts.compiled.d_offset()
    );

    println!("\n== per-pass timing =================================================");
    print!("{}", artifacts.compiled.pass_report());

    println!("\nper-stage compile time: {:?}", artifacts.compiled.stats());
    Ok(())
}
