//! Request-scoped tracing: span trees that cross threads.
//!
//! The global [`Telemetry::span`](crate::Telemetry::span) stack models
//! nesting by depth on one logical timeline, which breaks down the
//! moment a request fans out across pooled workers. A [`TraceContext`]
//! instead carries an explicit parent/child graph keyed by span ids, so
//! a `/scan` request reconstructs as one connected tree: admission wait
//! → compile (per-pass children) → per-worker sim execution → merge →
//! response write.
//!
//! * [`TraceContext`] — cheap clonable handle, one per request, minted
//!   with the request id (client-supplied `X-Cicero-Request-Id` or
//!   server-generated). The epoch can be pinned to the accept instant so
//!   queue wait is visible at offset zero.
//! * [`TraceSpan`] — an open span; `child()` nests, `annotate()`
//!   attaches key/values, drop closes. Sendable across scoped threads.
//! * [`RequestTrace`] — the finished, immutable tree with JSON / text
//!   tree / Chrome `trace_event` renderers (the latter loads directly in
//!   Perfetto or `chrome://tracing`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::json::JsonObject;
use crate::Value;

fn micros(d: Duration) -> f64 {
    // Round to nanosecond granularity so exported floats stay compact.
    (d.as_secs_f64() * 1e9).round() / 1e3
}

/// Stable per-thread ordinal: Chrome trace viewers lay spans out on one
/// row per (pid, tid), which keeps parallel workers visually separate.
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|ordinal| *ordinal)
}

/// One span in a request trace.
#[derive(Debug, Clone)]
pub struct TraceSpanRecord {
    /// Span id, unique within the trace (index order = open order).
    pub id: u32,
    /// Parent span id; `None` for the root.
    pub parent: Option<u32>,
    /// Span name, e.g. `sim.worker-1`.
    pub name: String,
    /// Start offset relative to the trace epoch.
    pub start: Duration,
    /// Wall-clock duration (zero until the span closes).
    pub duration: Duration,
    /// Ordinal of the thread that opened the span.
    pub tid: u64,
    /// Whether the span closed before the trace finished.
    pub closed: bool,
    /// Key/value annotations, in insertion order.
    pub attrs: Vec<(String, Value)>,
}

struct TraceInner {
    request_id: String,
    epoch: Instant,
    spans: Mutex<Vec<TraceSpanRecord>>,
}

/// A clonable handle to one request's trace. Clones share state, so the
/// context can fan out across worker threads.
#[derive(Clone)]
pub struct TraceContext {
    inner: Arc<TraceInner>,
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceContext")
            .field("request_id", &self.inner.request_id)
            .field("spans", &self.lock_spans().len())
            .finish()
    }
}

impl TraceContext {
    /// A fresh trace whose epoch is now.
    pub fn new(request_id: impl Into<String>) -> TraceContext {
        TraceContext::with_epoch(request_id, Instant::now())
    }

    /// A fresh trace with an explicit epoch (e.g. the connection accept
    /// instant, so admission-queue wait shows up from offset zero).
    pub fn with_epoch(request_id: impl Into<String>, epoch: Instant) -> TraceContext {
        TraceContext {
            inner: Arc::new(TraceInner {
                request_id: request_id.into(),
                epoch,
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The request id this trace belongs to.
    pub fn request_id(&self) -> &str {
        &self.inner.request_id
    }

    fn lock_spans(&self) -> MutexGuard<'_, Vec<TraceSpanRecord>> {
        self.inner.spans.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn open(&self, parent: Option<u32>, name: String, start_at: Instant) -> TraceSpan {
        let start = start_at.saturating_duration_since(self.inner.epoch);
        let id = {
            let mut spans = self.lock_spans();
            let id = u32::try_from(spans.len()).expect("span count fits u32");
            spans.push(TraceSpanRecord {
                id,
                parent,
                name,
                start,
                duration: Duration::ZERO,
                tid: thread_ordinal(),
                closed: false,
                attrs: Vec::new(),
            });
            id
        };
        TraceSpan { ctx: self.clone(), id, start: start_at }
    }

    /// Open the root span at the trace epoch (offset zero), covering
    /// everything including time spent queued before the handler ran.
    pub fn root_span(&self, name: impl Into<String>) -> TraceSpan {
        self.open(None, name.into(), self.inner.epoch)
    }

    /// Open a span starting now under an explicit parent (or as another
    /// root when `parent` is `None`). This is how worker threads attach
    /// their spans to a parent living on the request thread.
    pub fn child_of(&self, parent: Option<u32>, name: impl Into<String>) -> TraceSpan {
        self.open(parent, name.into(), Instant::now())
    }

    /// Record an already-finished span, e.g. per-pass compile timings
    /// reconstructed from a [`PipelineReport`]-shaped report, or the
    /// admission wait measured before the trace existed. Returns the new
    /// span's id.
    pub fn record_complete(
        &self,
        parent: Option<u32>,
        name: impl Into<String>,
        start: Duration,
        duration: Duration,
        attrs: Vec<(String, Value)>,
    ) -> u32 {
        let mut spans = self.lock_spans();
        let id = u32::try_from(spans.len()).expect("span count fits u32");
        spans.push(TraceSpanRecord {
            id,
            parent,
            name: name.into(),
            start,
            duration,
            tid: thread_ordinal(),
            closed: true,
            attrs,
        });
        id
    }

    /// Snapshot the trace into an immutable [`RequestTrace`]. Open spans
    /// are retained with `closed: false` and zero duration.
    pub fn finish(&self) -> RequestTrace {
        let spans = self.lock_spans().clone();
        let total =
            spans.iter().map(|span| span.start + span.duration).max().unwrap_or(Duration::ZERO);
        RequestTrace { request_id: self.inner.request_id.clone(), spans, total }
    }
}

/// An open span in a request trace; records its duration when dropped.
#[derive(Debug)]
pub struct TraceSpan {
    ctx: TraceContext,
    id: u32,
    start: Instant,
}

impl TraceSpan {
    /// This span's id (for parenting spans opened on other threads).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The trace this span belongs to.
    pub fn context(&self) -> &TraceContext {
        &self.ctx
    }

    /// This span's start offset relative to the trace epoch.
    pub fn start_offset(&self) -> Duration {
        self.start.saturating_duration_since(self.ctx.inner.epoch)
    }

    /// Open a child span starting now.
    pub fn child(&self, name: impl Into<String>) -> TraceSpan {
        self.ctx.child_of(Some(self.id), name)
    }

    /// Attach a key/value annotation.
    pub fn annotate(&self, key: impl Into<String>, value: impl Into<Value>) {
        let mut spans = self.ctx.lock_spans();
        spans[self.id as usize].attrs.push((key.into(), value.into()));
    }

    /// Close the span now (equivalent to dropping it).
    pub fn close(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let mut spans = self.ctx.lock_spans();
        let record = &mut spans[self.id as usize];
        record.duration = elapsed;
        record.closed = true;
    }
}

/// A finished request trace: one connected span tree.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The request id the trace was minted with.
    pub request_id: String,
    /// All spans, in open order (ids are indices).
    pub spans: Vec<TraceSpanRecord>,
    /// End offset of the latest-ending span.
    pub total: Duration,
}

impl RequestTrace {
    /// Total trace duration (epoch to latest span end).
    pub fn total(&self) -> Duration {
        self.total
    }

    /// First span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&TraceSpanRecord> {
        self.spans.iter().find(|span| span.name == name)
    }

    /// All spans whose name starts with `prefix`.
    pub fn spans_with_prefix(&self, prefix: &str) -> Vec<&TraceSpanRecord> {
        self.spans.iter().filter(|span| span.name.starts_with(prefix)).collect()
    }

    fn span_json(span: &TraceSpanRecord) -> String {
        let mut obj = JsonObject::new()
            .field("id", span.id)
            .field("name", span.name.as_str())
            .field("start_us", micros(span.start))
            .field("duration_us", micros(span.duration))
            .field("tid", span.tid);
        if let Some(parent) = span.parent {
            obj = obj.field("parent", parent);
        }
        if !span.closed {
            obj = obj.field("open", true);
        }
        if !span.attrs.is_empty() {
            obj = obj.field_object("attrs", &span.attrs);
        }
        obj.finish()
    }

    /// One JSON object for the whole trace (see `docs/OBSERVABILITY.md`
    /// for the schema).
    pub fn render_json(&self, slow: bool) -> String {
        let mut spans = String::from("[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                spans.push(',');
            }
            spans.push_str(&RequestTrace::span_json(span));
        }
        spans.push(']');
        JsonObject::new()
            .field("request_id", self.request_id.as_str())
            .field("total_us", micros(self.total))
            .field("span_count", self.spans.len())
            .field("slow", slow)
            .field_raw("spans", &spans)
            .finish()
    }

    /// Indented text rendering of the span tree (children ordered by
    /// start offset, then id).
    pub fn render_tree(&self) -> String {
        use std::fmt::Write as _;
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (index, span) in self.spans.iter().enumerate() {
            match span.parent {
                Some(parent) if (parent as usize) < self.spans.len() => {
                    children[parent as usize].push(index);
                }
                _ => roots.push(index),
            }
        }
        let order = |list: &mut Vec<usize>| {
            list.sort_by_key(|&i| (self.spans[i].start, self.spans[i].id));
        };
        order(&mut roots);
        for list in &mut children {
            order(list);
        }

        let mut out = String::new();
        let _ = writeln!(out, "trace {} ({:.1} us)", self.request_id, micros(self.total));
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((index, depth)) = stack.pop() {
            let span = &self.spans[index];
            let indent = "  ".repeat(depth + 1);
            let _ = write!(
                out,
                "{indent}{}  {:>10.1} us  [tid {}]",
                span.name,
                micros(span.duration),
                span.tid
            );
            if !span.closed {
                out.push_str("  (open)");
            }
            for (key, value) in &span.attrs {
                let _ = write!(out, "  {key}={value}");
            }
            out.push('\n');
            for &child in children[index].iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        out
    }

    /// Append this trace's Chrome `trace_event` objects (one complete
    /// `"ph":"X"` event per span) to `events`, under process id `pid`.
    pub fn chrome_events_into(&self, pid: u64, events: &mut Vec<String>) {
        for span in &self.spans {
            let mut args = vec![
                ("request_id".to_owned(), Value::from(self.request_id.as_str())),
                ("span_id".to_owned(), Value::from(span.id)),
            ];
            if let Some(parent) = span.parent {
                args.push(("parent".to_owned(), Value::from(parent)));
            }
            args.extend(span.attrs.iter().cloned());
            let event = JsonObject::new()
                .field("name", span.name.as_str())
                .field("cat", "cicero")
                .field("ph", "X")
                .field("ts", micros(span.start))
                .field("dur", micros(span.duration))
                .field("pid", pid)
                .field("tid", span.tid)
                .field_object("args", &args)
                .finish();
            events.push(event);
        }
    }
}

/// Render a set of traces as one Chrome `trace_event` JSON document
/// (loadable in Perfetto or `chrome://tracing`); each trace becomes its
/// own process row.
pub fn render_chrome_trace<T: AsRef<RequestTrace>>(traces: &[T]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (index, trace) in traces.iter().enumerate() {
        let trace = trace.as_ref();
        let pid = index as u64 + 1;
        events.push(
            JsonObject::new()
                .field("name", "process_name")
                .field("ph", "M")
                .field("pid", pid)
                .field("tid", 0u64)
                .field_raw(
                    "args",
                    &JsonObject::new().field("name", trace.request_id.as_str()).finish(),
                )
                .finish(),
        );
        trace.chrome_events_into(pid, &mut events);
    }
    let mut out = String::from("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(event);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

impl AsRef<RequestTrace> for RequestTrace {
    fn as_ref(&self) -> &RequestTrace {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_form_a_connected_tree_across_threads() {
        let ctx = TraceContext::new("req-1");
        let root = ctx.root_span("request");
        let root_id = root.id();
        std::thread::scope(|scope| {
            for worker in 0u64..2 {
                let ctx = ctx.clone();
                scope.spawn(move || {
                    let span = ctx.child_of(Some(root_id), format!("sim.worker-{worker}"));
                    span.annotate("cycles", 10u64 * (worker + 1));
                });
            }
        });
        drop(root);
        let trace = ctx.finish();
        assert_eq!(trace.spans.len(), 3);
        let roots = trace.spans.iter().filter(|s| s.parent.is_none()).count();
        assert_eq!(roots, 1);
        for span in &trace.spans {
            assert!(span.closed, "{} should be closed", span.name);
            if let Some(parent) = span.parent {
                assert!((parent as usize) < trace.spans.len());
            }
        }
        let workers = trace.spans_with_prefix("sim.worker-");
        assert_eq!(workers.len(), 2);
        assert!(workers.iter().all(|w| w.parent == Some(root_id)));
    }

    #[test]
    fn record_complete_backfills_synthetic_spans() {
        let ctx = TraceContext::new("req-2");
        let root = ctx.root_span("request");
        let id = ctx.record_complete(
            Some(root.id()),
            "pass:canonicalize",
            Duration::from_micros(5),
            Duration::from_micros(7),
            vec![("ops_before".to_owned(), Value::from(4u64))],
        );
        drop(root);
        let trace = ctx.finish();
        let pass = trace.span("pass:canonicalize").unwrap();
        assert_eq!(pass.id, id);
        assert!(pass.closed);
        assert_eq!(pass.start, Duration::from_micros(5));
        assert_eq!(pass.duration, Duration::from_micros(7));
    }

    #[test]
    fn json_and_tree_and_chrome_renderings_cover_all_spans() {
        let ctx = TraceContext::new("req-3");
        {
            let root = ctx.root_span("request");
            let child = root.child("compile");
            child.annotate("cache_hit", false);
        }
        let trace = ctx.finish();
        let json = trace.render_json(false);
        assert!(json.contains("\"request_id\":\"req-3\""), "{json}");
        assert!(json.contains("\"name\":\"compile\""), "{json}");
        assert!(json.contains("\"parent\":0"), "{json}");
        let tree = trace.render_tree();
        assert!(tree.contains("compile"), "{tree}");
        assert!(tree.contains("cache_hit=false"), "{tree}");
        let chrome = render_chrome_trace(&[&trace]);
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("\"process_name\""), "{chrome}");
    }
}
