//! The flight recorder: a fixed-size ring buffer of finished request
//! traces.
//!
//! Two rings: `recent` keeps the last N complete traces regardless of
//! latency; `slow` separately retains any trace whose total duration
//! crossed the slow-request threshold, so a burst of fast requests can't
//! evict the one slow outlier you need for a post-mortem. The recorder
//! is dumped on graceful drain and served live at `GET /debug/traces`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crate::json::JsonObject;
use crate::trace::{render_chrome_trace, RequestTrace};

/// Flight-recorder sizing and slow-trace policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecorderOptions {
    /// How many most-recent traces to retain.
    pub capacity: usize,
    /// How many slow traces to retain (in addition to `capacity`).
    pub slow_capacity: usize,
    /// Traces at or above this total duration are retained as slow.
    pub slow_threshold: Duration,
}

impl Default for FlightRecorderOptions {
    fn default() -> FlightRecorderOptions {
        FlightRecorderOptions {
            capacity: 64,
            slow_capacity: 32,
            slow_threshold: Duration::from_millis(250),
        }
    }
}

struct RecorderInner {
    options: FlightRecorderOptions,
    recent: VecDeque<Arc<RequestTrace>>,
    slow: VecDeque<Arc<RequestTrace>>,
    recorded: u64,
    slow_recorded: u64,
}

/// A clonable handle to one flight recorder.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("FlightRecorder")
            .field("recent", &inner.recent.len())
            .field("slow", &inner.slow.len())
            .field("recorded", &inner.recorded)
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(FlightRecorderOptions::default())
    }
}

impl FlightRecorder {
    /// A fresh, empty recorder.
    pub fn new(options: FlightRecorderOptions) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                options,
                recent: VecDeque::with_capacity(options.capacity.min(1024)),
                slow: VecDeque::with_capacity(options.slow_capacity.min(1024)),
                recorded: 0,
                slow_recorded: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The recorder's configuration.
    pub fn options(&self) -> FlightRecorderOptions {
        self.lock().options
    }

    /// Whether `trace` qualifies as slow under the recorder's threshold.
    pub fn is_slow(&self, trace: &RequestTrace) -> bool {
        trace.total() >= self.lock().options.slow_threshold
    }

    /// Retain a finished trace; returns whether it was classified slow.
    pub fn record(&self, trace: RequestTrace) -> bool {
        let trace = Arc::new(trace);
        let mut inner = self.lock();
        let slow = trace.total() >= inner.options.slow_threshold;
        inner.recorded += 1;
        if inner.options.capacity > 0 {
            if inner.recent.len() == inner.options.capacity {
                inner.recent.pop_front();
            }
            inner.recent.push_back(Arc::clone(&trace));
        }
        if slow {
            inner.slow_recorded += 1;
            if inner.options.slow_capacity > 0 {
                if inner.slow.len() == inner.options.slow_capacity {
                    inner.slow.pop_front();
                }
                inner.slow.push_back(trace);
            }
        }
        slow
    }

    /// Look up a retained trace by request id (newest wins when a client
    /// reused an id).
    pub fn get(&self, request_id: &str) -> Option<Arc<RequestTrace>> {
        let inner = self.lock();
        inner
            .recent
            .iter()
            .rev()
            .chain(inner.slow.iter().rev())
            .find(|trace| trace.request_id == request_id)
            .map(Arc::clone)
    }

    /// All retained traces, oldest first; slow-only traces (already
    /// evicted from the recent ring) come before the recent ring.
    pub fn traces(&self) -> Vec<Arc<RequestTrace>> {
        let inner = self.lock();
        let mut out: Vec<Arc<RequestTrace>> = Vec::new();
        for trace in inner.slow.iter() {
            if !inner.recent.iter().any(|recent| Arc::ptr_eq(recent, trace)) {
                out.push(Arc::clone(trace));
            }
        }
        out.extend(inner.recent.iter().map(Arc::clone));
        out
    }

    /// Total traces ever recorded (not just retained).
    pub fn recorded(&self) -> u64 {
        self.lock().recorded
    }

    /// Total traces ever classified slow.
    pub fn slow_recorded(&self) -> u64 {
        self.lock().slow_recorded
    }

    /// Number of currently retained traces.
    pub fn len(&self) -> usize {
        self.traces().len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        let inner = self.lock();
        inner.recent.is_empty() && inner.slow.is_empty()
    }

    /// JSON index of retained traces (newest last).
    pub fn render_index_json(&self) -> String {
        let traces = self.traces();
        let (recorded, slow_recorded, threshold) = {
            let inner = self.lock();
            (inner.recorded, inner.slow_recorded, inner.options.slow_threshold)
        };
        let mut rows = String::from("[");
        for (i, trace) in traces.iter().enumerate() {
            if i > 0 {
                rows.push(',');
            }
            rows.push_str(
                &JsonObject::new()
                    .field("request_id", trace.request_id.as_str())
                    .field("total_us", (trace.total().as_secs_f64() * 1e9).round() / 1e3)
                    .field("span_count", trace.spans.len())
                    .field("slow", trace.total() >= threshold)
                    .finish(),
            );
        }
        rows.push(']');
        JsonObject::new()
            .field("recorded", recorded)
            .field("slow_recorded", slow_recorded)
            .field("retained", traces.len())
            .field("slow_threshold_ms", threshold.as_secs_f64() * 1e3)
            .field_raw("traces", &rows)
            .finish()
    }

    /// All retained traces as one Chrome `trace_event` document.
    pub fn render_chrome_json(&self) -> String {
        render_chrome_trace(&self.traces())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;

    fn trace_with_total(id: &str, micros_total: u64) -> RequestTrace {
        let ctx = TraceContext::new(id);
        ctx.record_complete(
            None,
            "request",
            Duration::ZERO,
            Duration::from_micros(micros_total),
            Vec::new(),
        );
        ctx.finish()
    }

    #[test]
    fn recent_ring_evicts_oldest() {
        let recorder = FlightRecorder::new(FlightRecorderOptions {
            capacity: 2,
            slow_capacity: 2,
            slow_threshold: Duration::from_secs(1),
        });
        for i in 0..3 {
            recorder.record(trace_with_total(&format!("req-{i}"), 10));
        }
        assert!(recorder.get("req-0").is_none());
        assert!(recorder.get("req-1").is_some());
        assert!(recorder.get("req-2").is_some());
        assert_eq!(recorder.recorded(), 3);
        assert_eq!(recorder.len(), 2);
    }

    #[test]
    fn slow_traces_survive_recent_eviction() {
        let recorder = FlightRecorder::new(FlightRecorderOptions {
            capacity: 1,
            slow_capacity: 4,
            slow_threshold: Duration::from_micros(100),
        });
        assert!(recorder.record(trace_with_total("slow-1", 500)));
        assert!(!recorder.record(trace_with_total("fast-1", 10)));
        assert!(!recorder.record(trace_with_total("fast-2", 10)));
        // Evicted from recent, retained as slow.
        assert!(recorder.get("slow-1").is_some());
        assert_eq!(recorder.slow_recorded(), 1);
        let index = recorder.render_index_json();
        assert!(index.contains("\"slow\":true"), "{index}");
    }

    #[test]
    fn index_and_chrome_renderings_are_json() {
        let recorder = FlightRecorder::default();
        recorder.record(trace_with_total("req-a", 42));
        let index = recorder.render_index_json();
        assert!(index.starts_with('{') && index.ends_with('}'), "{index}");
        assert!(index.contains("req-a"), "{index}");
        let chrome = recorder.render_chrome_json();
        assert!(chrome.contains("\"traceEvents\""), "{chrome}");
    }
}
