//! Contention-free sharded metrics: the hot path behind
//! [`Telemetry::counter_add`](crate::Telemetry::counter_add) and
//! [`Telemetry::observe`](crate::Telemetry::observe).
//!
//! Every thread that touches a collector gets its own **shard** — a
//! private map of metric cells. After the first touch of a given metric
//! name the hot path is a thread-local `HashMap` lookup plus one or two
//! relaxed atomic operations: no global mutex, no cross-core cache-line
//! ping-pong between writer threads. Readers *merge on read*: a snapshot
//! walks every shard and folds cells into a plain
//! [`MetricsRegistry`](crate::MetricsRegistry), so the summary / JSONL /
//! Prometheus sinks render byte-identically to the old single-registry
//! implementation.
//!
//! Determinism of the merged view:
//!
//! * **Counters** are sums of `u64` partials — order-independent.
//! * **Histogram buckets / counts** are `u64` sums; `min`/`max` are
//!   order-independent folds. The f64 `sum` is added in shard
//!   registration order; for integral observations (how every caller in
//!   this workspace reports) addition is exact and therefore
//!   order-independent too.
//! * **Gauges and exemplars** are last-write-wins, resolved by a global
//!   monotonically-increasing stamp so the merge picks the same winner
//!   regardless of shard order.
//!
//! Every internal mutex is acquired with poison recovery
//! (`unwrap_or_else(|p| p.into_inner())`): a panicking worker thread can
//! never make the collector unreadable, and its shard's already-recorded
//! values still merge.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};

use crate::metrics::{Exemplar, Histogram, MetricsRegistry};

fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Unique id per collector, so thread-locals can cache shards for many
/// live collectors at once.
static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

// -- cells -------------------------------------------------------------

pub(crate) struct CounterCell {
    total: AtomicU64,
}

pub(crate) struct GaugeCell {
    /// `(stamp, value)`; stamp 0 means "never set".
    state: Mutex<(u64, f64)>,
}

struct ExemplarSlot {
    stamp: u64,
    value: f64,
    label: String,
}

pub(crate) struct HistCell {
    bounds: Arc<[f64]>,
    /// One count per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bit patterns updated via CAS loops.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    /// Latest exemplar per bucket; only touched by the exemplar API.
    exemplars: Mutex<Vec<Option<ExemplarSlot>>>,
}

fn atomic_f64_update(bits: &AtomicU64, fold: impl Fn(f64) -> f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = fold(f64::from_bits(current)).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

impl HistCell {
    fn new(bounds: Arc<[f64]>) -> HistCell {
        let slots = bounds.len() + 1;
        HistCell {
            bounds,
            buckets: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            exemplars: Mutex::new((0..slots).map(|_| None).collect()),
        }
    }

    fn bucket_index(&self, value: f64) -> usize {
        self.bounds.iter().position(|b| value <= *b).unwrap_or(self.bounds.len())
    }

    fn record(&self, value: f64) -> Option<usize> {
        if !value.is_finite() {
            return None; // never let NaN/inf poison exported metrics
        }
        let index = self.bucket_index(value);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |sum| sum + value);
        atomic_f64_update(&self.min_bits, |min| min.min(value));
        atomic_f64_update(&self.max_bits, |max| max.max(value));
        Some(index)
    }

    fn record_exemplar(&self, index: usize, stamp: u64, value: f64, label: &str) {
        let mut slots = lock_recover(&self.exemplars);
        slots[index] = Some(ExemplarSlot { stamp, value, label: label.to_owned() });
    }
}

pub(crate) enum ShardMetric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistCell>),
}

impl ShardMetric {
    fn kind(&self) -> &'static str {
        match self {
            ShardMetric::Counter(_) => "counter",
            ShardMetric::Gauge(_) => "gauge",
            ShardMetric::Histogram(_) => "histogram",
        }
    }
}

// -- shards ------------------------------------------------------------

/// One thread's private slice of a collector's metrics.
#[derive(Default)]
pub(crate) struct Shard {
    metrics: Mutex<BTreeMap<String, ShardMetric>>,
}

impl Shard {
    fn counter_cell(&self, name: &str) -> Arc<CounterCell> {
        let mut metrics = lock_recover(&self.metrics);
        match metrics.entry(name.to_owned()).or_insert_with(|| {
            ShardMetric::Counter(Arc::new(CounterCell { total: AtomicU64::new(0) }))
        }) {
            ShardMetric::Counter(cell) => Arc::clone(cell),
            other => panic!("metric `{name}` is not a counter: {}", other.kind()),
        }
    }

    fn gauge_cell(&self, name: &str) -> Arc<GaugeCell> {
        let mut metrics = lock_recover(&self.metrics);
        match metrics.entry(name.to_owned()).or_insert_with(|| {
            ShardMetric::Gauge(Arc::new(GaugeCell { state: Mutex::new((0, 0.0)) }))
        }) {
            ShardMetric::Gauge(cell) => Arc::clone(cell),
            other => panic!("metric `{name}` is not a gauge: {}", other.kind()),
        }
    }

    fn hist_cell(&self, name: &str, bounds: Arc<[f64]>) -> Arc<HistCell> {
        let mut metrics = lock_recover(&self.metrics);
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| ShardMetric::Histogram(Arc::new(HistCell::new(bounds))))
        {
            ShardMetric::Histogram(cell) => Arc::clone(cell),
            other => panic!("metric `{name}` is not a histogram: {}", other.kind()),
        }
    }
}

/// Per-thread cache: collector id → (shard + name→cell fast paths).
struct LocalShard {
    /// Dead-collector detection for the occasional sweep.
    registry: Weak<ShardedMetrics>,
    shard: Arc<Shard>,
    counters: HashMap<String, Arc<CounterCell>>,
    gauges: HashMap<String, Arc<GaugeCell>>,
    histograms: HashMap<String, Arc<HistCell>>,
}

thread_local! {
    static LOCAL_SHARDS: RefCell<HashMap<u64, LocalShard>> = RefCell::new(HashMap::new());
}

// -- the sharded store -------------------------------------------------

/// All shards of one collector, plus the shared state the merge needs.
pub(crate) struct ShardedMetrics {
    id: u64,
    /// Every shard ever registered, in first-touch order.
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Histogram bounds registry: first registration wins, later
    /// observes on any thread reuse the registered bounds (mirrors the
    /// old single-registry semantics).
    bounds: Mutex<HashMap<String, Arc<[f64]>>>,
    /// Global last-write-wins stamp for gauges and exemplars.
    stamp: AtomicU64,
}

impl ShardedMetrics {
    pub(crate) fn new() -> Arc<ShardedMetrics> {
        Arc::new(ShardedMetrics {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            shards: Mutex::new(Vec::new()),
            bounds: Mutex::new(HashMap::new()),
            stamp: AtomicU64::new(0),
        })
    }

    fn next_stamp(&self) -> u64 {
        self.stamp.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn bounds_for(&self, name: &str, bounds: &[f64]) -> Arc<[f64]> {
        let mut registered = lock_recover(&self.bounds);
        Arc::clone(registered.entry(name.to_owned()).or_insert_with(|| Arc::from(bounds.to_vec())))
    }

    /// Run `f` against this thread's shard, creating and registering it
    /// on first touch.
    fn with_local<R>(self: &Arc<Self>, f: impl FnOnce(&ShardedMetrics, &mut LocalShard) -> R) -> R {
        LOCAL_SHARDS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if !cache.contains_key(&self.id) {
                // Sweep entries whose collector has been dropped so
                // long-lived threads don't accumulate dead shards.
                cache.retain(|_, local| local.registry.strong_count() > 0);
                let shard = Arc::new(Shard::default());
                lock_recover(&self.shards).push(Arc::clone(&shard));
                cache.insert(
                    self.id,
                    LocalShard {
                        registry: Arc::downgrade(self),
                        shard,
                        counters: HashMap::new(),
                        gauges: HashMap::new(),
                        histograms: HashMap::new(),
                    },
                );
            }
            let local = cache.get_mut(&self.id).expect("local shard just ensured");
            f(self, local)
        })
    }

    pub(crate) fn counter_add(self: &Arc<Self>, name: &str, delta: u64) {
        self.with_local(|_, local| {
            if let Some(cell) = local.counters.get(name) {
                cell.total.fetch_add(delta, Ordering::Relaxed);
                return;
            }
            let cell = local.shard.counter_cell(name);
            cell.total.fetch_add(delta, Ordering::Relaxed);
            local.counters.insert(name.to_owned(), cell);
        });
    }

    pub(crate) fn gauge_set(self: &Arc<Self>, name: &str, value: f64) {
        self.with_local(|registry, local| {
            let stamp = registry.next_stamp();
            if let Some(cell) = local.gauges.get(name) {
                *lock_recover(&cell.state) = (stamp, value);
                return;
            }
            let cell = local.shard.gauge_cell(name);
            *lock_recover(&cell.state) = (stamp, value);
            local.gauges.insert(name.to_owned(), cell);
        });
    }

    pub(crate) fn observe(self: &Arc<Self>, name: &str, value: f64, bounds: &[f64]) {
        self.with_local(|registry, local| {
            if let Some(cell) = local.histograms.get(name) {
                cell.record(value);
                return;
            }
            let shared_bounds = registry.bounds_for(name, bounds);
            let cell = local.shard.hist_cell(name, shared_bounds);
            cell.record(value);
            local.histograms.insert(name.to_owned(), cell);
        });
    }

    pub(crate) fn observe_with_exemplar(
        self: &Arc<Self>,
        name: &str,
        value: f64,
        bounds: &[f64],
        label: &str,
    ) {
        self.with_local(|registry, local| {
            let cell = if let Some(cell) = local.histograms.get(name) {
                Arc::clone(cell)
            } else {
                let shared_bounds = registry.bounds_for(name, bounds);
                let cell = local.shard.hist_cell(name, shared_bounds);
                local.histograms.insert(name.to_owned(), Arc::clone(&cell));
                cell
            };
            if let Some(index) = cell.record(value) {
                cell.record_exemplar(index, registry.next_stamp(), value, label);
            }
        });
    }

    /// Fold every shard into one deterministic registry.
    pub(crate) fn merged(&self) -> MetricsRegistry {
        enum Acc {
            Counter(u64),
            Gauge {
                stamp: u64,
                value: f64,
            },
            Histogram {
                bounds: Arc<[f64]>,
                buckets: Vec<u64>,
                count: u64,
                sum: f64,
                min: f64,
                max: f64,
                exemplars: Vec<Option<(u64, f64, String)>>,
            },
        }

        let shards: Vec<Arc<Shard>> = lock_recover(&self.shards).clone();
        let mut merged: BTreeMap<String, Acc> = BTreeMap::new();

        for shard in &shards {
            let metrics = lock_recover(&shard.metrics);
            for (name, metric) in metrics.iter() {
                match metric {
                    ShardMetric::Counter(cell) => {
                        let partial = cell.total.load(Ordering::Relaxed);
                        match merged.entry(name.clone()).or_insert(Acc::Counter(0)) {
                            Acc::Counter(total) => *total += partial,
                            _ => panic!("metric `{name}` merged as mixed kinds"),
                        }
                    }
                    ShardMetric::Gauge(cell) => {
                        let (stamp, value) = *lock_recover(&cell.state);
                        match merged
                            .entry(name.clone())
                            .or_insert(Acc::Gauge { stamp: 0, value: 0.0 })
                        {
                            Acc::Gauge { stamp: best, value: current } => {
                                if stamp > *best {
                                    *best = stamp;
                                    *current = value;
                                }
                            }
                            _ => panic!("metric `{name}` merged as mixed kinds"),
                        }
                    }
                    ShardMetric::Histogram(cell) => {
                        let slot_count = cell.buckets.len();
                        let entry = merged.entry(name.clone()).or_insert_with(|| Acc::Histogram {
                            bounds: Arc::clone(&cell.bounds),
                            buckets: vec![0; slot_count],
                            count: 0,
                            sum: 0.0,
                            min: f64::INFINITY,
                            max: f64::NEG_INFINITY,
                            exemplars: vec![None; slot_count],
                        });
                        match entry {
                            Acc::Histogram { buckets, count, sum, min, max, exemplars, .. } => {
                                for (total, bucket) in buckets.iter_mut().zip(&cell.buckets) {
                                    *total += bucket.load(Ordering::Relaxed);
                                }
                                *count += cell.count.load(Ordering::Relaxed);
                                *sum += f64::from_bits(cell.sum_bits.load(Ordering::Relaxed));
                                *min =
                                    min.min(f64::from_bits(cell.min_bits.load(Ordering::Relaxed)));
                                *max =
                                    max.max(f64::from_bits(cell.max_bits.load(Ordering::Relaxed)));
                                let slots = lock_recover(&cell.exemplars);
                                for (best, slot) in exemplars.iter_mut().zip(slots.iter()) {
                                    if let Some(slot) = slot {
                                        let newer = match best {
                                            None => true,
                                            Some((stamp, _, _)) => slot.stamp > *stamp,
                                        };
                                        if newer {
                                            *best =
                                                Some((slot.stamp, slot.value, slot.label.clone()));
                                        }
                                    }
                                }
                            }
                            _ => panic!("metric `{name}` merged as mixed kinds"),
                        }
                    }
                }
            }
        }

        let mut registry = MetricsRegistry::new();
        for (name, acc) in merged {
            match acc {
                Acc::Counter(total) => registry.insert_counter(name, total),
                Acc::Gauge { value, .. } => registry.insert_gauge(name, value),
                Acc::Histogram { bounds, buckets, count, sum, min, max, exemplars } => {
                    let exemplars = exemplars
                        .into_iter()
                        .map(|slot| slot.map(|(_, value, label)| Exemplar { value, label }))
                        .collect();
                    registry.insert_histogram(
                        name,
                        Histogram::from_parts(
                            bounds.to_vec(),
                            buckets,
                            count,
                            sum,
                            min,
                            max,
                            exemplars,
                        ),
                    );
                }
            }
        }
        registry
    }
}
