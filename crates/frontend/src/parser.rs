//! Recursive-descent parser for the supported regex grammar.

use std::fmt;

use crate::ast::{Alternation, Atom, ClassSet, Concatenation, Piece, Quantifier, RegexAst, Span};

/// Upper bound on counted-repetition bounds, guarding against quantifier
/// explosion in instruction memory (programs are capped at 8192 entries).
pub const MAX_REPEAT: u32 = 1024;

/// A parse failure with the offending source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Offending span in the pattern text.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}..{}: {}", self.span.start, self.span.end, self.message)
    }
}

impl std::error::Error for ParseRegexError {}

/// Parse a pattern into a [`RegexAst`].
///
/// # Errors
///
/// Returns [`ParseRegexError`] for empty patterns, malformed constructs,
/// unsupported operators (`^`/`$` anywhere but the pattern boundaries,
/// back-references, lazy quantifiers…) and quantifier bounds above
/// [`MAX_REPEAT`].
pub fn parse(pattern: &str) -> Result<RegexAst, ParseRegexError> {
    let mut p = Parser { src: pattern.as_bytes(), pos: 0 };
    if p.src.is_empty() {
        return Err(p.err_here("empty pattern"));
    }
    let has_prefix = if p.peek() == Some(b'^') {
        p.pos += 1;
        false
    } else {
        true
    };
    let alternation = p.parse_alternation(0)?;
    let has_suffix = if p.peek() == Some(b'$') {
        p.pos += 1;
        false
    } else {
        true
    };
    if p.pos < p.src.len() {
        return Err(p.err_here(match p.peek() {
            Some(b')') => "unmatched `)`".to_owned(),
            Some(b'$') => "`$` is only supported at the end of the pattern".to_owned(),
            Some(c) => format!("unexpected `{}`", c as char),
            None => unreachable!(),
        }));
    }
    if alternation.alternatives.iter().all(|c| c.pieces.is_empty()) {
        return Err(ParseRegexError {
            span: Span::new(0, p.src.len()),
            message: "pattern matches only the empty string".to_owned(),
        });
    }
    Ok(RegexAst { has_prefix, has_suffix, alternation })
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn err_here(&self, message: impl Into<String>) -> ParseRegexError {
        ParseRegexError {
            span: Span::new(self.pos, (self.pos + 1).min(self.src.len().max(self.pos + 1))),
            message: message.into(),
        }
    }

    fn err_span(&self, start: usize, message: impl Into<String>) -> ParseRegexError {
        ParseRegexError { span: Span::new(start, self.pos), message: message.into() }
    }

    /// `depth` tracks group nesting: `|` and `)` terminate differently at
    /// the top level versus inside a group.
    fn parse_alternation(&mut self, depth: usize) -> Result<Alternation, ParseRegexError> {
        let start = self.pos;
        let mut alternatives = vec![self.parse_concatenation(depth)?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            alternatives.push(self.parse_concatenation(depth)?);
        }
        Ok(Alternation { alternatives, span: Span::new(start, self.pos) })
    }

    fn parse_concatenation(&mut self, depth: usize) -> Result<Concatenation, ParseRegexError> {
        let start = self.pos;
        let mut pieces = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') => break,
                Some(b')') if depth > 0 => break,
                Some(b')') => return Err(self.err_here("unmatched `)`")),
                // `$` terminates the pattern; only valid at the very end,
                // which `parse` checks after the top-level alternation.
                Some(b'$') if depth == 0 => break,
                Some(b'$') => return Err(self.err_here("`$` inside a group is not supported")),
                Some(b'^') => {
                    return Err(self.err_here("`^` is only supported at the start of the pattern"))
                }
                _ => pieces.push(self.parse_piece(depth)?),
            }
        }
        Ok(Concatenation { pieces, span: Span::new(start, self.pos) })
    }

    fn parse_piece(&mut self, depth: usize) -> Result<Piece, ParseRegexError> {
        let start = self.pos;
        let atom = self.parse_atom(depth)?;
        let quantifier = self.parse_quantifier()?;
        Ok(Piece { atom, quantifier, span: Span::new(start, self.pos) })
    }

    fn parse_atom(&mut self, depth: usize) -> Result<Atom, ParseRegexError> {
        let start = self.pos;
        match self.peek() {
            Some(b'.') => {
                self.pos += 1;
                Ok(Atom::Any)
            }
            Some(b'(') => {
                self.pos += 1;
                let inner = self.parse_alternation(depth + 1)?;
                if self.peek() != Some(b')') {
                    return Err(self.err_span(start, "unclosed `(`"));
                }
                self.pos += 1;
                if inner.alternatives.iter().all(|c| c.pieces.is_empty()) {
                    return Err(self.err_span(start, "group matches only the empty string"));
                }
                Ok(Atom::Group(Box::new(inner)))
            }
            Some(b'[') => self.parse_class(),
            Some(b'\\') => {
                let (set, single) = self.parse_escape(false)?;
                match single {
                    Some(c) => Ok(Atom::Char(c)),
                    None => Ok(Atom::Class { negated: false, set }),
                }
            }
            Some(c) if b"*+?{".contains(&c) => {
                Err(self.err_here(format!("quantifier `{}` has nothing to repeat", c as char)))
            }
            Some(c) => {
                self.pos += 1;
                Ok(Atom::Char(c))
            }
            None => Err(self.err_here("expected an atom")),
        }
    }

    /// Parse an escape sequence starting at `\`. Returns either a single
    /// byte or a character-class set (for `\d`-style sugar). `in_class`
    /// rejects the class sugar inside `[...]` nests where the original
    /// grammar does not allow it.
    fn parse_escape(&mut self, in_class: bool) -> Result<(ClassSet, Option<u8>), ParseRegexError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some(b'\\'));
        self.pos += 1;
        let c = self.peek().ok_or_else(|| self.err_span(start, "dangling `\\`"))?;
        self.pos += 1;
        let single = |c: u8| Ok((ClassSet::empty(), Some(c)));
        match c {
            b'n' => single(b'\n'),
            b't' => single(b'\t'),
            b'r' => single(b'\r'),
            b'0' => single(0),
            b'x' => {
                let hi = self.peek().ok_or_else(|| self.err_span(start, "truncated \\x"))?;
                self.pos += 1;
                let lo = self.peek().ok_or_else(|| self.err_span(start, "truncated \\x"))?;
                self.pos += 1;
                let hex = [hi, lo];
                let value = std::str::from_utf8(&hex)
                    .ok()
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| self.err_span(start, "invalid \\x escape"))?;
                single(value)
            }
            b'd' | b'D' | b'w' | b'W' | b's' | b'S' => {
                if in_class {
                    return Err(
                        self.err_span(start, "perl classes are not supported inside `[...]`")
                    );
                }
                let mut set = ClassSet::empty();
                match c.to_ascii_lowercase() {
                    b'd' => set.insert_range(b'0', b'9'),
                    b'w' => {
                        set.insert_range(b'0', b'9');
                        set.insert_range(b'a', b'z');
                        set.insert_range(b'A', b'Z');
                        set.insert(b'_');
                    }
                    _ => {
                        for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                            set.insert(b);
                        }
                    }
                }
                if c.is_ascii_uppercase() {
                    set = set.complement();
                }
                Ok((set, None))
            }
            c if c.is_ascii_alphanumeric() => {
                Err(self.err_span(start, format!("unsupported escape `\\{}`", c as char)))
            }
            c => single(c),
        }
    }

    fn parse_class(&mut self) -> Result<Atom, ParseRegexError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some(b'['));
        self.pos += 1;
        let negated = if self.peek() == Some(b'^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut set = ClassSet::empty();
        loop {
            let item_start = self.pos;
            let lo = match self.peek() {
                None => return Err(self.err_span(start, "unclosed `[`")),
                Some(b']') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    let (_, single) = self.parse_escape(true)?;
                    single.ok_or_else(|| self.err_span(item_start, "expected a character"))?
                }
                Some(c) => {
                    self.pos += 1;
                    c
                }
            };
            // Range `lo-hi` (a trailing `-` right before `]` is literal).
            if self.peek() == Some(b'-') && self.src.get(self.pos + 1) != Some(&b']') {
                self.pos += 1;
                let hi = match self.peek() {
                    None => return Err(self.err_span(start, "unclosed `[`")),
                    Some(b'\\') => {
                        let (_, single) = self.parse_escape(true)?;
                        single.ok_or_else(|| self.err_span(item_start, "expected a character"))?
                    }
                    Some(c) => {
                        self.pos += 1;
                        c
                    }
                };
                if lo > hi {
                    return Err(self.err_span(
                        item_start,
                        format!("reversed range `{}-{}`", lo as char, hi as char),
                    ));
                }
                set.insert_range(lo, hi);
            } else {
                set.insert(lo);
            }
        }
        if set.is_empty() {
            return Err(self.err_span(start, "empty character class"));
        }
        Ok(Atom::Class { negated, set })
    }

    fn parse_quantifier(&mut self) -> Result<Option<Quantifier>, ParseRegexError> {
        let q = match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                Quantifier::STAR
            }
            Some(b'+') => {
                self.pos += 1;
                Quantifier::PLUS
            }
            Some(b'?') => {
                self.pos += 1;
                Quantifier::OPT
            }
            Some(b'{') => {
                let start = self.pos;
                self.pos += 1;
                let min = self.parse_int(start)?;
                let max = if self.peek() == Some(b',') {
                    self.pos += 1;
                    if self.peek() == Some(b'}') {
                        None
                    } else {
                        Some(self.parse_int(start)?)
                    }
                } else {
                    Some(min)
                };
                if self.peek() != Some(b'}') {
                    return Err(self.err_span(start, "unclosed `{`"));
                }
                self.pos += 1;
                if let Some(max) = max {
                    if min > max {
                        return Err(
                            self.err_span(start, format!("reversed bounds {{{min},{max}}}"))
                        );
                    }
                    if max == 0 {
                        return Err(self.err_span(start, "quantifier {0} matches nothing"));
                    }
                }
                if min > MAX_REPEAT || max.is_some_and(|m| m > MAX_REPEAT) {
                    return Err(
                        self.err_span(start, format!("repetition bound exceeds {MAX_REPEAT}"))
                    );
                }
                Quantifier::range(min, max)
            }
            _ => return Ok(None),
        };
        // Reject lazy/possessive modifiers and double quantifiers.
        if let Some(c) = self.peek() {
            if b"*+?".contains(&c) {
                return Err(self.err_here(format!(
                    "`{}` after a quantifier is not supported (lazy/possessive matching has no \
                     meaning for NFA enumeration)",
                    c as char
                )));
            }
        }
        Ok(Some(q))
    }

    fn parse_int(&mut self, start: usize) -> Result<u32, ParseRegexError> {
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err_span(start, "expected a number in `{}`"));
        }
        std::str::from_utf8(&self.src[digits_start..self.pos])
            .expect("ascii digits")
            .parse()
            .map_err(|_| self.err_span(start, "repetition bound too large"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alt_count(p: &str) -> usize {
        parse(p).unwrap().alternation.alternatives.len()
    }

    #[test]
    fn paper_running_example() {
        // `(ab)|c{3,6}d+` — Listing 1 of the paper.
        let ast = parse("(ab)|c{3,6}d+").unwrap();
        assert!(ast.has_prefix && ast.has_suffix);
        assert_eq!(ast.alternation.alternatives.len(), 2);
        let second = &ast.alternation.alternatives[1];
        assert_eq!(second.pieces.len(), 2);
        assert_eq!(second.pieces[0].quantifier, Some(Quantifier::range(3, Some(6))));
        assert_eq!(second.pieces[1].quantifier, Some(Quantifier::PLUS));
    }

    #[test]
    fn anchors_toggle_prefix_suffix() {
        let ast = parse("^abc$").unwrap();
        assert!(!ast.has_prefix && !ast.has_suffix);
        let ast = parse("abc$").unwrap();
        assert!(ast.has_prefix && !ast.has_suffix);
        let ast = parse("^abc").unwrap();
        assert!(!ast.has_prefix && ast.has_suffix);
    }

    #[test]
    fn misplaced_anchors_rejected() {
        assert!(parse("a^b").is_err());
        assert!(parse("a$b").is_err());
        assert!(parse("(a$)").is_err());
    }

    #[test]
    fn class_parsing() {
        let ast = parse("[a-cx]").unwrap();
        let piece = &ast.alternation.alternatives[0].pieces[0];
        match &piece.atom {
            Atom::Class { negated, set } => {
                assert!(!negated);
                assert_eq!(set.iter().collect::<Vec<_>>(), vec![b'a', b'b', b'c', b'x']);
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn negated_class_keeps_written_set() {
        let ast = parse("[^ab]").unwrap();
        match &ast.alternation.alternatives[0].pieces[0].atom {
            Atom::Class { negated: true, set } => {
                assert_eq!(set.len(), 2);
                assert!(set.contains(b'a'));
            }
            other => panic!("expected negated class, got {other:?}"),
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let ast = parse("[a-]").unwrap();
        match &ast.alternation.alternatives[0].pieces[0].atom {
            Atom::Class { set, .. } => {
                assert!(set.contains(b'a') && set.contains(b'-'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn perl_class_sugar() {
        let ast = parse(r"\d+").unwrap();
        match &ast.alternation.alternatives[0].pieces[0].atom {
            Atom::Class { negated: false, set } => {
                assert_eq!(set.len(), 10);
                assert!(set.contains(b'7'));
            }
            other => panic!("{other:?}"),
        }
        let ast = parse(r"\W").unwrap();
        match &ast.alternation.alternatives[0].pieces[0].atom {
            Atom::Class { negated: false, set } => {
                assert!(!set.contains(b'a'));
                assert!(set.contains(b'!'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn escapes() {
        let ast = parse(r"\.\*\\\x41\n").unwrap();
        let bytes: Vec<u8> = ast.alternation.alternatives[0]
            .pieces
            .iter()
            .map(|p| match p.atom {
                Atom::Char(c) => c,
                ref other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(bytes, vec![b'.', b'*', b'\\', b'A', b'\n']);
    }

    #[test]
    fn nested_groups() {
        let ast = parse("a(b(c|d))e").unwrap();
        assert_eq!(ast.alternation.alternatives[0].pieces.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        for (pattern, needle) in [
            ("", "empty pattern"),
            ("(", "unclosed `(`"),
            ("a)", "unmatched `)`"),
            ("[", "unclosed `["),
            ("[]", "empty character class"),
            ("[z-a]", "reversed range"),
            ("a{3,1}", "reversed bounds"),
            ("a{0}", "matches nothing"),
            ("a{2000}", "exceeds"),
            ("*a", "nothing to repeat"),
            ("a**", "after a quantifier"),
            ("a+?", "after a quantifier"),
            (r"\q", "unsupported escape"),
            (r"a\", "dangling"),
            ("|", "empty string"),
            ("()", "empty string"),
        ] {
            let err = parse(pattern).unwrap_err();
            assert!(
                err.message.contains(needle),
                "pattern {pattern:?}: expected {needle:?} in {:?}",
                err.message
            );
        }
    }

    #[test]
    fn empty_alternative_is_allowed_when_another_matches() {
        // `a|` has an empty second branch; with a non-empty first branch
        // the pattern is accepted (the empty branch makes it always-match,
        // which the dialect verifier flags separately if undesirable).
        assert_eq!(alt_count("ab|"), 2);
    }

    #[test]
    fn pattern_roundtrip() {
        for p in
            ["(ab)|c{3,6}d+", "th(is|at|ose)", "^abc$", "[^ab]x*", r"\d{2,}[a-f-]", "a(b(c|d))e?"]
        {
            // Spans shift when re-printing, so compare by canonical form:
            // printing must be a fixed point of parse∘print.
            let printed = parse(p).unwrap().to_pattern();
            let reprinted = parse(&printed).unwrap().to_pattern();
            assert_eq!(reprinted, printed, "roundtrip failed: {p} -> {printed}");
        }
    }

    #[test]
    fn brace_without_digits_is_error() {
        assert!(parse("a{").is_err());
        assert!(parse("a{}").is_err());
        assert!(parse("a{,3}").is_err());
    }
}
