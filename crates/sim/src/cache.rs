//! Per-core direct-mapped instruction cache.

use crate::config::CacheConfig;

/// A direct-mapped instruction cache indexed by line.
///
/// Tags are instruction-memory line numbers; a lookup either hits or
/// installs the line (the fill cost is modelled by the machine through the
/// engine's memory port, not here).
///
/// The `hits`/`misses` counters are **lifetime-cumulative**: they are the
/// single source of truth for cache statistics and are never reset while
/// the tags stay warm (streaming new input data does not flush the cache;
/// only reprogramming does). Per-run figures are derived by the machine as
/// a snapshot/delta around each run — see
/// [`Machine::run`](crate::Machine::run).
#[derive(Debug, Clone)]
pub struct ICache {
    line_size: usize,
    tags: Vec<Option<usize>>,
    hits: u64,
    misses: u64,
}

/// A point-in-time snapshot of one cache's cumulative counters, used to
/// compute per-run deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Cumulative hits at snapshot time.
    pub hits: u64,
    /// Cumulative misses at snapshot time.
    pub misses: u64,
}

impl ICache {
    /// An empty (all-invalid) cache.
    pub fn new(config: &CacheConfig) -> ICache {
        assert!(config.lines >= 1 && config.line_size.is_power_of_two());
        ICache { line_size: config.line_size, tags: vec![None; config.lines], hits: 0, misses: 0 }
    }

    /// Look up the line holding `pc`; on a miss the line is installed and
    /// `false` is returned (the caller charges the fill latency).
    pub fn access(&mut self, pc: u16) -> bool {
        let line_number = usize::from(pc) / self.line_size;
        let index = line_number % self.tags.len();
        if self.tags[index] == Some(line_number) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.tags[index] = Some(line_number);
            false
        }
    }

    /// Install the program image's lines without touching the counters,
    /// modelling the engine's prefetcher refreshing the cache from the
    /// (already resident) central instruction memory between input chunks.
    ///
    /// Lines are installed in ascending order, so each cache index ends up
    /// holding the *last* program line that maps to it — a canonical,
    /// history-independent warm state. This is what makes batch execution
    /// deterministic under any work partitioning: every run starts from
    /// the same warm tags regardless of which inputs a core saw before.
    pub fn prefetch(&mut self, program_len: usize) {
        if program_len == 0 {
            return;
        }
        let last_line = (program_len - 1) / self.line_size;
        let lines = self.tags.len();
        for line_number in 0..=last_line {
            self.tags[line_number % lines] = Some(line_number);
        }
    }

    /// Cumulative hit count (never reset while the cache stays warm).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative miss count (never reset while the cache stays warm).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Snapshot the cumulative counters (for per-run deltas).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters { hits: self.hits, misses: self.misses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(lines: usize, line_size: usize) -> ICache {
        ICache::new(&CacheConfig { lines, line_size, miss_penalty: 4 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(4, 4);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(3), "same line");
        assert!(!c.access(4), "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn conflict_misses_on_aliasing_lines() {
        let mut c = cache(2, 4);
        // Lines 0 and 2 alias (index 0); ping-pong misses.
        assert!(!c.access(0));
        assert!(!c.access(8));
        assert!(!c.access(0));
        assert!(!c.access(8));
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn far_jumps_miss_where_near_code_hits() {
        // The D_offset intuition: straight-line code touches few lines.
        let mut near = cache(8, 4);
        for pc in 0..32u16 {
            near.access(pc);
        }
        assert_eq!(near.misses(), 8, "one per line");
        let mut far = cache(8, 4);
        for i in 0..16u16 {
            far.access(i * 37 % 512);
        }
        assert!(far.misses() > 8);
    }

    #[test]
    fn prefetch_installs_lines_without_counting() {
        let mut c = cache(8, 4);
        c.prefetch(12); // lines 0..=2
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(0));
        assert!(c.access(5));
        assert!(c.access(11));
        assert!(!c.access(12), "line 3 was not part of the 12-instruction image");
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn prefetch_is_canonical_regardless_of_history() {
        // Two caches with different access histories converge to the same
        // tags after a prefetch of the same program image.
        let mut a = cache(2, 4);
        let mut b = cache(2, 4);
        a.access(0);
        b.access(8);
        b.access(4);
        a.prefetch(16);
        b.prefetch(16);
        // Aliasing image (4 lines over 2 entries): the last line wins per
        // index, identically for both, so every later lookup agrees.
        let probe = [0u16, 4, 8, 12, 0, 12];
        let outcomes_a: Vec<bool> = probe.iter().map(|pc| a.access(*pc)).collect();
        let outcomes_b: Vec<bool> = probe.iter().map(|pc| b.access(*pc)).collect();
        assert_eq!(outcomes_a, outcomes_b);
    }

    #[test]
    fn counters_snapshot_supports_deltas() {
        let mut c = cache(4, 4);
        c.access(0);
        c.access(0);
        let before = c.counters();
        c.access(0);
        c.access(4);
        let after = c.counters();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
    }
}
