//! Architecture configurations (the paper's `NxM CORES` naming).

use std::fmt;

/// Architectural organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Organization {
    /// Original Cicero (§2.2): one time-multiplexed core per engine,
    /// cross-engine load balancing over a ring.
    Old,
    /// Proposed organization (§4): `2^CC_ID` cores per engine, one per
    /// FIFO; in-engine balancing, only the last core feeds the ring.
    New,
}

/// Instruction-cache geometry (per core, direct-mapped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of cache lines.
    pub lines: usize,
    /// Instructions per line (must be a power of two).
    pub line_size: usize,
    /// Central-memory service time for one line fill, in cycles.
    pub miss_penalty: u64,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig { lines: 8, line_size: 4, miss_penalty: 4 }
    }
}

/// A full architecture configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Organization (old vs new).
    pub organization: Organization,
    /// Cores per engine: 1 for [`Organization::Old`], `2^CC_ID` for
    /// [`Organization::New`].
    pub cores_per_engine: usize,
    /// Number of engines (ring topology when > 1).
    pub engines: usize,
    /// `CC_ID`: the window holds `2^CC_ID` characters.
    pub cc_id_bits: u32,
    /// Per-core instruction cache.
    pub cache: CacheConfig,
    /// Cross-engine transfer latency in cycles (the paper's "minimum 2").
    pub lb_latency: u64,
    /// Load difference (local − neighbor) above which a new thread is
    /// offloaded to the ring successor.
    pub lb_threshold: usize,
    /// Thompson-set deduplication in the FIFOs (the hardware's duplicate
    /// filter). Disable only for the ablation study; without it the
    /// simulator guards against ε-cycles with a per-position work cap.
    pub dedup: bool,
    /// Safety valve: abort after this many cycles.
    pub max_cycles: u64,
}

impl ArchConfig {
    /// The original Cicero: `1xM` — one core per engine, `M` engines in a
    /// ring, `CC_ID = 3` (the original paper's best configuration).
    pub fn old_organization(engines: usize) -> ArchConfig {
        assert!(engines >= 1, "at least one engine");
        ArchConfig {
            organization: Organization::Old,
            cores_per_engine: 1,
            engines,
            cc_id_bits: 3,
            cache: CacheConfig::default(),
            lb_latency: 2,
            lb_threshold: 0,
            dedup: true,
            max_cycles: 200_000_000,
        }
    }

    /// The proposed organization: `NxM` — `N = 2^CC_ID` cores packed per
    /// engine, `M` engines.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not a power of two ≥ 2 (the design pairs one
    /// core per FIFO and the FIFO count is `2^CC_ID`).
    pub fn new_organization(cores: usize, engines: usize) -> ArchConfig {
        assert!(cores.is_power_of_two() && cores >= 2, "cores must be a power of two >= 2");
        assert!(engines >= 1, "at least one engine");
        ArchConfig {
            organization: Organization::New,
            cores_per_engine: cores,
            engines,
            cc_id_bits: cores.trailing_zeros(),
            cache: CacheConfig::default(),
            lb_latency: 2,
            lb_threshold: 0,
            dedup: true,
            max_cycles: 200_000_000,
        }
    }

    /// Window size in characters (`2^CC_ID`).
    pub fn window(&self) -> usize {
        1usize << self.cc_id_bits
    }

    /// Total cores across all engines.
    pub fn total_cores(&self) -> usize {
        self.cores_per_engine * self.engines
    }

    /// Total FIFOs across all engines (each engine has `2^CC_ID`).
    pub fn total_fifos(&self) -> usize {
        self.window() * self.engines
    }

    /// The paper's display name, e.g. `OLD 1x9 CORES` / `NEW 16x1 CORES`.
    pub fn name(&self) -> String {
        let tag = match self.organization {
            Organization::Old => "OLD",
            Organization::New => "NEW",
        };
        format!("{tag} {}x{} CORES", self.cores_per_engine, self.engines)
    }

    /// Clock in MHz: 150 unless the resource model derates to 100
    /// (Table 5 footnote: configurations using > 70% LUTs or > 90% BRAMs).
    pub fn clock_mhz(&self) -> f64 {
        crate::resources::clock_mhz(self)
    }
}

impl fmt::Display for ArchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let old = ArchConfig::old_organization(9);
        assert_eq!(old.name(), "OLD 1x9 CORES");
        assert_eq!(old.window(), 8);
        assert_eq!(old.total_cores(), 9);
        assert_eq!(old.total_fifos(), 72);

        let new = ArchConfig::new_organization(16, 1);
        assert_eq!(new.name(), "NEW 16x1 CORES");
        assert_eq!(new.cc_id_bits, 4);
        assert_eq!(new.window(), 16);
        assert_eq!(new.total_fifos(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn new_org_requires_power_of_two_cores() {
        let _ = ArchConfig::new_organization(9, 1);
    }
}
