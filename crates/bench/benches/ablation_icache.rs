//! **Ablation** — instruction-cache geometry sweep (§5's quantitative
//! claim: the architecture "is very susceptible to instruction cache
//! misses, demonstrating better performance when the code it executes
//! exhibits a better locality").
//!
//! Sweeps the per-core cache size on PROTOMATA4 (the biggest programs)
//! and reports cycles and hit rate, contrasting old-compiled vs
//! new-compiled code at each size. Two separable costs appear: the
//! locality penalty (dominant at small caches) and the restructured
//! layout's extra executed instructions (the residual at large caches).

use cicero_bench::{banner, f2, measure, suites, CompiledSuite, Scale, Table};
use cicero_sim::ArchConfig;

fn main() {
    let scale = Scale::from_env();
    banner("Ablation", "icache sensitivity (PROTOMATA4, OLD 1x9)", scale);
    let bench = &suites(scale)[2];
    let s = CompiledSuite::build(bench);
    let mut table = Table::new(vec![
        "cache (instr)",
        "newC cycles",
        "newC hit%",
        "oldC cycles",
        "oldC hit%",
        "oldC/newC",
    ]);
    for lines in [2usize, 4, 8, 16, 32, 64] {
        let mut config = ArchConfig::old_organization(9);
        config.cache.lines = lines;
        let new = measure(&s.new_opt, &s.chunks, &config);
        let old = measure(&s.old_opt, &s.chunks, &config);
        table.row(vec![
            format!("{}", lines * config.cache.line_size),
            format!("{:.0}", new.avg_cycles),
            f2(new.icache_hit_rate * 100.0),
            format!("{:.0}", old.avg_cycles),
            f2(old.icache_hit_rate * 100.0),
            f2(old.avg_cycles / new.avg_cycles),
        ]);
    }
    table.print();
    println!("\n  reading the gap: at small caches it is locality (Figure 10); at large");
    println!("  caches the residual ~2.5x is the extra instructions the restructured");
    println!("  layout executes (Figure 6's double-split implicit term)");
}
