//! The equivalence matrix: one (pattern, input) case fanned out over
//! every execution cell, with a precise description of the first
//! disagreement.
//!
//! Cells per case:
//!
//! * the reference Pike VM ([`regex_oracle::Oracle`]) — ground truth for
//!   `is_match` and the earliest match end;
//! * the functional ISA interpreter over the compiled program at `O0`
//!   (all optimizations off) and `O2` (all on) — must reproduce both the
//!   verdict and the earliest end exactly;
//! * the host-native engine ([`cicero_hostexec::HostProgram`]) lowered
//!   from each program — must reproduce the verdict and the earliest end
//!   exactly (it implements the same earliest-match-end rule as the
//!   interpreter), and its all-matches `run_all` must report the same id
//!   set as [`cicero_isa::run_all`];
//! * the cycle-level simulator over both programs on every configuration
//!   in [`sim_matrix`] (the single-core reference at `CC_ID` 3, the
//!   two-engine ring, plus multi-core organizations at `CC_ID` 1 and 2) —
//!   must reproduce the verdict and report a member of
//!   [`Oracle::match_ends`]. Even the single-core configuration races in
//!   hardware time (S2→S2 forwarding lets one NFA path run ahead of
//!   queued threads at earlier positions), so *every* simulator cell has
//!   any-match semantics — the ruling pinned in
//!   `tests/match_end_semantics.rs`;
//! * batch level: [`simulate_batch_parallel`] at 1/2/4 workers must be
//!   byte-identical to the sequential [`simulate_batch`], and the
//!   [`Runtime`]'s cached path must reproduce the same reports;
//! * stream level (chunk-split invariance): the input re-run through the
//!   resumable matchers — [`cicero_isa::run_chunked`], the host engine's
//!   [`cicero_hostexec::HostProgram::run_chunked`], and
//!   [`cicero_sim::simulate_streaming`] over every simulator
//!   configuration — split at chunk boundaries, must be *byte-identical*
//!   to the whole-input cells. Every case gets the two deterministic
//!   worst-case splits (all 1-byte chunks, and a middle split) plus any
//!   caller-provided split vectors (randomized ones from the fuzzer,
//!   committed ones from the corpus).

use cicero_core::{CompileError, Compiler, CompilerOptions};
use cicero_hostexec::HostProgram;
use cicero_isa::Program;
use cicero_sim::{simulate, simulate_batch, simulate_batch_parallel, ArchConfig};
use regex_oracle::Oracle;

/// Worker counts exercised at batch level.
pub const PARALLEL_JOBS: [usize; 3] = [1, 2, 4];

/// One concrete disagreement between two cells of the matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The cell that disagreed (e.g. `interp/O2`, `sim/O0/NEW 4x1 CORES`).
    pub cell: String,
    /// Human-readable got-vs-want description.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.cell, self.detail)
    }
}

/// The outcome of checking one case (or one whole input set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every cell agreed.
    Pass,
    /// The case could not be run (capacity limits, unparseable pattern);
    /// not a divergence.
    Skip(String),
    /// Two cells disagreed.
    Diverged(Divergence),
}

impl Outcome {
    /// Whether this outcome is a divergence.
    pub fn diverged(&self) -> bool {
        matches!(self, Outcome::Diverged(_))
    }
}

/// The simulator configurations every case runs on.
///
/// Spans every *viable* `CC_ID` from 1 to 3: the single-core reference,
/// the two-engine ring of the old organization, and the
/// in-engine-parallel new organizations at `CC_ID` 1/2.
///
/// `CC_ID = 0` is deliberately absent: a one-character window can never
/// accept a consuming match's successor, so the FIFO window deadlocks by
/// construction — the simulator rejects such configs (see
/// `cicero_sim::Machine::new`).
pub fn sim_matrix() -> Vec<ArchConfig> {
    vec![
        ArchConfig::old_organization(1),
        ArchConfig::old_organization(2),
        ArchConfig::new_organization(2, 1),
        ArchConfig::new_organization(4, 1),
        ArchConfig::new_organization(4, 2),
    ]
}

/// A pattern compiled for every cell: the oracle plus both optimization
/// levels of the multi-dialect compiler.
pub struct PatternUnderTest {
    /// The pattern text.
    pub pattern: String,
    /// The reference matcher.
    pub oracle: Oracle,
    /// `("O0"|"O2", program)` pairs.
    pub programs: Vec<(&'static str, Program)>,
    /// The host-native lowering of each program, in the same order
    /// (compiled once per pattern, reused across every input and split).
    pub hosts: Vec<HostProgram>,
}

impl PatternUnderTest {
    /// Parse and compile `pattern` at both levels.
    ///
    /// # Errors
    ///
    /// Returns [`Outcome::Skip`] for patterns the front-end rejects or
    /// that exceed capacity limits (instruction memory), and
    /// [`Outcome::Diverged`] when compilation fails for any *other*
    /// reason — a pass error on a parseable pattern is a compiler bug.
    pub fn build(pattern: &str) -> Result<PatternUnderTest, Outcome> {
        let ast = regex_frontend::parse(pattern)
            .map_err(|e| Outcome::Skip(format!("unparseable pattern: {e}")))?;
        let oracle = Oracle::from_ast(&ast);
        let mut programs = Vec::with_capacity(2);
        for (level, options) in
            [("O0", CompilerOptions::unoptimized()), ("O2", CompilerOptions::optimized())]
        {
            match Compiler::with_options(options).compile(pattern) {
                Ok(compiled) => programs.push((level, compiled.into_program())),
                Err(CompileError::Codegen(e)) => {
                    return Err(Outcome::Skip(format!("{level} exceeds capacity: {e}")))
                }
                Err(e) => {
                    return Err(Outcome::Diverged(Divergence {
                        cell: format!("compile/{level}"),
                        detail: format!("compilation failed on a parseable pattern: {e}"),
                    }))
                }
            }
        }
        let hosts = programs.iter().map(|(_, program)| HostProgram::compile(program)).collect();
        Ok(PatternUnderTest { pattern: pattern.to_owned(), oracle, programs, hosts })
    }
}

/// Run one input through every per-input cell of the matrix.
pub fn check_case(put: &PatternUnderTest, input: &[u8]) -> Outcome {
    let want = put.oracle.is_match(input);
    let want_end = put.oracle.match_end(input);
    let valid_ends = put.oracle.match_ends(input);

    for ((level, program), host) in put.programs.iter().zip(&put.hosts) {
        let out = cicero_isa::run(program, input);
        if out.accepted != want {
            return diverged(
                format!("interp/{level}"),
                format!("is_match = {}, oracle says {want}", out.accepted),
                put,
                input,
            );
        }
        if out.match_position != want_end {
            return diverged(
                format!("interp/{level}"),
                format!("match_end = {:?}, oracle says {want_end:?}", out.match_position),
                put,
                input,
            );
        }
        // The host-native engine implements the interpreter's exact
        // earliest-match-end semantics, so it is held to the oracle's
        // single answer, not the any-match set the simulators get.
        let host_out = host.run(input);
        if host_out.accepted != want {
            return diverged(
                format!("host/{level}/{}", host.engine_kind()),
                format!("is_match = {}, oracle says {want}", host_out.accepted),
                put,
                input,
            );
        }
        if host_out.match_position != want_end {
            return diverged(
                format!("host/{level}/{}", host.engine_kind()),
                format!("match_end = {:?}, oracle says {want_end:?}", host_out.match_position),
                put,
                input,
            );
        }
        let host_all = host.run_all(input);
        let interp_all = cicero_isa::run_all(program, input);
        if host_all.matched_ids != interp_all.matched_ids
            || host_all.accepted != interp_all.accepted
        {
            return diverged(
                format!("host-all/{level}/{}", host.engine_kind()),
                format!(
                    "run_all ids = {:?}, interpreter says {:?}",
                    host_all.matched_ids, interp_all.matched_ids
                ),
                put,
                input,
            );
        }
        for config in sim_matrix() {
            let report = simulate(program, input, &config);
            let cell = format!("sim/{level}/{}/cc{}", config.name(), config.cc_id_bits);
            if report.hit_cycle_limit {
                return diverged(cell, "hit the cycle limit".to_owned(), put, input);
            }
            if report.accepted != want {
                return diverged(
                    cell,
                    format!("is_match = {}, oracle says {want}", report.accepted),
                    put,
                    input,
                );
            }
            match report.match_position {
                Some(end) if !valid_ends.contains(&end) => {
                    return diverged(
                        cell,
                        format!("match_end = {end} is not a valid end ({valid_ends:?})"),
                        put,
                        input,
                    );
                }
                None if want => {
                    return diverged(
                        cell,
                        "accepted without a match position".to_owned(),
                        put,
                        input,
                    );
                }
                _ => {}
            }
        }
    }
    Outcome::Pass
}

/// Split `input` at the given split points (positions in `0..len`,
/// in any order, duplicates and out-of-range points ignored), producing
/// the chunk sequence a streaming matcher would be fed.
///
/// `&[]` yields the whole input as one chunk; an empty input yields no
/// chunks at all (a stream with zero reads).
pub fn apply_splits(input: &[u8], splits: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> =
        splits.iter().copied().filter(|&p| p > 0 && p < input.len()).collect();
    points.sort_unstable();
    points.dedup();
    let mut chunks = Vec::with_capacity(points.len() + 1);
    let mut start = 0;
    for point in points {
        chunks.push(input[start..point].to_vec());
        start = point;
    }
    if start < input.len() {
        chunks.push(input[start..].to_vec());
    }
    chunks
}

/// Chunk-split invariance for one `(input, splits)` pair: the resumable
/// interpreter and the resumable simulator over every configuration must
/// reproduce the whole-input results *byte-identically* when the input
/// arrives split at the given points.
pub fn check_stream_case(put: &PatternUnderTest, input: &[u8], splits: &[usize]) -> Outcome {
    let chunks = apply_splits(input, splits);
    let borrowed = || chunks.iter().map(Vec::as_slice);
    for ((level, program), host) in put.programs.iter().zip(&put.hosts) {
        let whole = cicero_isa::run(program, input);
        let streamed = cicero_isa::run_chunked(program, borrowed());
        if streamed != whole {
            return diverged(
                format!("stream/interp/{level}"),
                format!("streamed at {splits:?} gives {streamed:?}, whole input gives {whole:?}"),
                put,
                input,
            );
        }
        let host_whole = host.run(input);
        let host_streamed = cicero_hostexec::run_chunked(host, borrowed());
        if host_streamed != host_whole {
            return diverged(
                format!("stream/host/{level}/{}", host.engine_kind()),
                format!(
                    "streamed at {splits:?} gives {host_streamed:?}, whole input gives {host_whole:?}"
                ),
                put,
                input,
            );
        }
        for config in sim_matrix() {
            let whole = simulate(program, input, &config);
            let streamed = cicero_sim::simulate_streaming(program, borrowed(), &config);
            if streamed != whole {
                return diverged(
                    format!("stream/sim/{level}/{}/cc{}", config.name(), config.cc_id_bits),
                    format!(
                        "streamed at {splits:?} gives {streamed:?}, whole input gives {whole:?}"
                    ),
                    put,
                    input,
                );
            }
        }
    }
    Outcome::Pass
}

/// The deterministic split vectors every input is checked with: all
/// 1-byte chunks (every boundary, including ones inside a match) and a
/// single middle split.
fn deterministic_splits(input: &[u8]) -> Vec<Vec<usize>> {
    let mut splits = vec![(1..input.len()).collect::<Vec<usize>>()];
    if input.len() >= 2 {
        splits.push(vec![input.len() / 2]);
    }
    splits
}

/// Batch-level determinism: parallel enumeration over the worker pool must
/// be observationally identical to sequential execution, and the runtime's
/// cached path must serve byte-identical reports.
pub fn check_batch(put: &PatternUnderTest, inputs: &[Vec<u8>]) -> Outcome {
    if inputs.is_empty() {
        return Outcome::Pass;
    }
    let config = ArchConfig::new_organization(4, 1);
    for (level, program) in &put.programs {
        let sequential = simulate_batch(program, inputs, &config);
        for jobs in PARALLEL_JOBS {
            let parallel = simulate_batch_parallel(program, inputs, &config, jobs);
            if parallel != sequential {
                let detail = first_report_difference(&sequential, &parallel, jobs);
                return diverged(format!("parallel/{level}/jobs{jobs}"), detail, put, &[]);
            }
        }
    }
    Outcome::Pass
}

fn first_report_difference(
    sequential: &[cicero_sim::ExecReport],
    parallel: &[cicero_sim::ExecReport],
    jobs: usize,
) -> String {
    for (i, (s, p)) in sequential.iter().zip(parallel).enumerate() {
        if s != p {
            return format!(
                "input {i} differs at {jobs} workers: sequential {s:?}, parallel {p:?}"
            );
        }
    }
    format!("report count differs: {} sequential vs {} parallel", sequential.len(), parallel.len())
}

/// The full check for one pattern and its input set: every per-input cell,
/// the chunk-split-invariance cells at the deterministic splits, plus the
/// batch-level determinism cells. First divergence wins.
pub fn check_all(pattern: &str, inputs: &[Vec<u8>]) -> Outcome {
    check_with_splits(pattern, inputs, &[])
}

/// [`check_all`] plus extra chunk-split vectors: each input is re-checked
/// streamed at every vector in `extra_splits` on top of the deterministic
/// splits (randomized vectors from the fuzzer, committed ones from the
/// corpus).
pub fn check_with_splits(
    pattern: &str,
    inputs: &[Vec<u8>],
    extra_splits: &[Vec<usize>],
) -> Outcome {
    let put = match PatternUnderTest::build(pattern) {
        Ok(put) => put,
        Err(outcome) => return outcome,
    };
    for input in inputs {
        if let Outcome::Diverged(d) = check_case(&put, input) {
            return Outcome::Diverged(d);
        }
        for splits in deterministic_splits(input).iter().chain(extra_splits) {
            if let Outcome::Diverged(d) = check_stream_case(&put, input, splits) {
                return Outcome::Diverged(d);
            }
        }
    }
    check_batch(&put, inputs)
}

fn diverged(cell: String, detail: String, put: &PatternUnderTest, input: &[u8]) -> Outcome {
    let _ = (put, input); // context lives in the reproducer, not the cell
    Outcome::Diverged(Divergence { cell, detail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_patterns_pass_the_whole_matrix() {
        for pattern in [
            "ab|cd",
            "^(a*)*b$",
            "x(a?|a*)y",
            "[^ab]c",
            "th(is|at|ose)",
            "a{2,4}b?$",
            "ab|",
            "\\xff\\x80*",
        ] {
            let inputs: Vec<Vec<u8>> = vec![
                b"".to_vec(),
                b"ab".to_vec(),
                b"xxaayy".to_vec(),
                b"zcz".to_vec(),
                vec![0xff, 0x80, 0x80],
                vec![b'a'; 40],
            ];
            let outcome = check_all(pattern, &inputs);
            assert_eq!(outcome, Outcome::Pass, "{pattern:?}: {outcome:?}");
        }
    }

    #[test]
    fn apply_splits_partitions_losslessly() {
        let input = b"abcdefgh";
        for splits in [vec![], vec![4], vec![1, 2, 3, 4, 5, 6, 7], vec![7, 3, 3, 99, 0]] {
            let chunks = apply_splits(input, &splits);
            let rejoined: Vec<u8> = chunks.concat();
            assert_eq!(rejoined, input, "splits {splits:?}");
            assert!(chunks.iter().all(|c| !c.is_empty()), "splits {splits:?} made empty chunks");
        }
        assert_eq!(apply_splits(b"", &[1, 2]), Vec::<Vec<u8>>::new());
        assert_eq!(apply_splits(b"ab", &[1]), vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn stream_cells_pass_for_known_patterns_at_adversarial_splits() {
        let put = PatternUnderTest::build("x(a?|a*)y|th(is|at)").unwrap();
        for input in [b"zzthiszz".as_slice(), b"xay", b"", b"thatthis"] {
            for splits in
                [vec![], vec![1], (1..input.len()).collect::<Vec<usize>>(), vec![input.len() / 2]]
            {
                let outcome = check_stream_case(&put, input, &splits);
                assert_eq!(outcome, Outcome::Pass, "{input:?} at {splits:?}: {outcome:?}");
            }
        }
    }

    #[test]
    fn unparseable_patterns_skip() {
        assert!(matches!(check_all("(", &[]), Outcome::Skip(_)));
        assert!(matches!(check_all("a{9999}{9999}", &[]), Outcome::Skip(_)));
    }

    #[test]
    fn matrix_spans_every_viable_cc_id() {
        let ccs: Vec<u32> = sim_matrix().iter().map(|c| c.cc_id_bits).collect();
        for cc in 1..=3 {
            assert!(ccs.contains(&cc), "matrix misses CC_ID {cc}: {ccs:?}");
        }
        // Exactly one single-core reference cell.
        assert_eq!(sim_matrix().iter().filter(|c| c.total_cores() == 1).count(), 1);
    }

    #[test]
    fn a_wrong_verdict_is_reported_as_a_divergence() {
        // Hand-build a PatternUnderTest whose program is miscompiled: the
        // pattern `ab` paired with a program for `ac`.
        let program = cicero_core::compile("ac").unwrap().into_program();
        let put = PatternUnderTest {
            pattern: "ab".to_owned(),
            oracle: Oracle::new("ab").unwrap(),
            hosts: vec![HostProgram::compile(&program)],
            programs: vec![("O2", program)],
        };
        let outcome = check_case(&put, b"zzabzz");
        match outcome {
            Outcome::Diverged(d) => assert!(d.cell.starts_with("interp/"), "{d}"),
            other => panic!("miscompile not caught: {other:?}"),
        }
    }

    #[test]
    fn a_host_engine_disagreement_is_reported_as_a_host_cell() {
        // A correct program paired with a host lowering of a *different*
        // program: the interpreter cells pass, so the first divergence
        // must be attributed to the host column.
        let good = cicero_core::compile("ab").unwrap().into_program();
        let bad = cicero_core::compile("ac").unwrap().into_program();
        let put = PatternUnderTest {
            pattern: "ab".to_owned(),
            oracle: Oracle::new("ab").unwrap(),
            programs: vec![("O2", good)],
            hosts: vec![HostProgram::compile(&bad)],
        };
        let outcome = check_case(&put, b"zzabzz");
        match outcome {
            Outcome::Diverged(d) => assert!(d.cell.starts_with("host/"), "{d}"),
            other => panic!("host miscompile not caught: {other:?}"),
        }
    }
}
