//! `cicero` — command-line front door to the workspace.
//!
//! ```text
//! cicero compile <pattern> [--old] [-O0] [--emit asm|bin|regex-ir|cicero-ir] [-o FILE]
//! cicero run     <pattern> [--text STR | --input FILE] [--config NxM] [--old] [-O0]
//! cicero scan    <pattern>... (--text STR | --input FILE) [--config NxM]
//! cicero explain <pattern>
//! cicero configs
//! ```
//!
//! `--config NxM` uses the paper's naming: `1x9` is the old organization
//! with nine engines, `16x1` the proposed one with sixteen cores.
//!
//! `cicero <pattern> ...` (no subcommand) is shorthand for `cicero run`.
//!
//! Observability: `--pass-timing` prints the per-pass timing table, and
//! `--metrics PATH` (with `--metrics-format summary|jsonl`) exports the
//! unified telemetry — compiler pass spans plus simulator histograms — to
//! a file, or to stdout when PATH is `-`.

use std::io::Write as _;
use std::process::ExitCode;

use cicero::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("configs") => cmd_configs(),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        // `cicero <pattern> [flags]` is shorthand for `cicero run`.
        Some(other) if !other.starts_with('-') => cmd_run(&args),
        Some(other) => Err(format!("unknown flag `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cicero - regex-to-DSA compiler and cycle-level simulator

USAGE:
    cicero compile <pattern> [--old] [-O0] [--emit KIND] [-o FILE] [--pass-timing]
    cicero run     <pattern> [--text STR | --input FILE] [--config NxM] [--old] [-O0]
                   [--pass-timing] [--metrics PATH] [--metrics-format FORMAT]
    cicero scan    <p1> <p2> ... (--text STR | --input FILE) [--config NxM]
    cicero explain <pattern>
    cicero configs
    cicero <pattern> [run flags]      shorthand for `cicero run` (empty input
                                      unless --text/--input is given)

EMIT KINDS:
    asm        address-annotated assembly (default)
    bin        16-bit little-endian binary words
    regex-ir   high-level regex dialect after optimizations
    cicero-ir  low-level cicero dialect after Jump Simplification

OPTIONS:
    --old             use the legacy single-IR compiler (Code Restructuring)
    -O0               disable optimizations
    --config          architecture: 1xM = old organization, Nx1/NxM = new (default 16x1)
    --pass-timing     print the per-pass timing table (time, %, op-count delta)
    --metrics PATH    export telemetry (pass spans + simulator histograms) to PATH,
                      or to stdout when PATH is `-`
    --metrics-format  `summary` (human-readable, default) or `jsonl` (one JSON
                      object per line)
";

/// Minimal flag scanner: returns (positional args, flag lookup).
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, Option<String>)>,
}

fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<Flags, String> {
    let mut positional = Vec::new();
    let mut pairs = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value =
                    iter.next().ok_or_else(|| format!("--{name} requires a value"))?.clone();
                pairs.push((name.to_owned(), Some(value)));
            } else if bool_flags.contains(&name) {
                pairs.push((name.to_owned(), None));
            } else {
                return Err(format!("unknown flag `--{name}`\n\n{USAGE}"));
            }
        } else if arg == "-O0" {
            pairs.push(("O0".to_owned(), None));
        } else if arg == "-o" {
            let value = iter.next().ok_or("-o requires a file name")?.clone();
            pairs.push(("output".to_owned(), Some(value)));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Flags { positional, pairs })
}

impl Flags {
    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }
}

fn parse_config(spec: Option<&str>) -> Result<ArchConfig, String> {
    let spec = spec.unwrap_or("16x1");
    let (n, m) =
        spec.split_once('x').ok_or_else(|| format!("config `{spec}` is not of the form NxM"))?;
    let n: usize = n.parse().map_err(|_| format!("bad core count in `{spec}`"))?;
    let m: usize = m.parse().map_err(|_| format!("bad engine count in `{spec}`"))?;
    if n == 1 {
        Ok(ArchConfig::old_organization(m))
    } else if n.is_power_of_two() {
        Ok(ArchConfig::new_organization(n, m))
    } else {
        Err(format!("core count {n} must be 1 (old organization) or a power of two"))
    }
}

fn read_input(flags: &Flags) -> Result<Vec<u8>, String> {
    match (flags.value("text"), flags.value("input")) {
        (Some(text), None) => Ok(text.as_bytes().to_vec()),
        (None, Some(path)) => std::fs::read(path).map_err(|e| format!("reading {path}: {e}")),
        _ => Err("provide exactly one of --text STR or --input FILE".to_owned()),
    }
}

/// Compile with either compiler. The multi-dialect compiler also returns
/// its per-pass report (and streams spans into `telemetry` when given);
/// the legacy single-IR compiler has no pass pipeline, so it returns
/// `None`.
fn compile_one(
    pattern: &str,
    old: bool,
    o0: bool,
    telemetry: Option<&Telemetry>,
) -> Result<(Program, Option<cicero::mlir::PipelineReport>), String> {
    if old {
        let program = LegacyCompiler::new(!o0).compile(pattern).map_err(|e| e.to_string())?;
        Ok((program, None))
    } else {
        let options =
            if o0 { CompilerOptions::unoptimized() } else { CompilerOptions::optimized() };
        let mut compiler = Compiler::with_options(options);
        if let Some(telemetry) = telemetry {
            compiler = compiler.with_telemetry(telemetry.clone());
        }
        let compiled = compiler.compile(pattern).map_err(|e| e.to_string())?;
        let report = compiled.pass_report().clone();
        Ok((compiled.into_program(), Some(report)))
    }
}

fn pass_timing_text(report: Option<&cicero::mlir::PipelineReport>) -> String {
    match report {
        Some(report) => format!("per-pass timing:\n{report}"),
        None => "per-pass timing: n/a (the legacy compiler has no pass pipeline)".to_owned(),
    }
}

/// Export the collected telemetry per `--metrics` / `--metrics-format`.
fn write_metrics(flags: &Flags, telemetry: &Telemetry) -> Result<(), String> {
    let Some(path) = flags.value("metrics") else {
        if flags.value("metrics-format").is_some() {
            return Err("--metrics-format requires --metrics PATH".to_owned());
        }
        return Ok(());
    };
    match flags.value("metrics-format").unwrap_or("summary") {
        "jsonl" => telemetry.write_jsonl_path(path).map_err(|e| format!("writing {path}: {e}")),
        "summary" => {
            let text = telemetry.render_summary();
            if path == "-" {
                print!("{text}");
                Ok(())
            } else {
                std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
            }
        }
        other => Err(format!("unknown metrics format `{other}` (use summary or jsonl)")),
    }
}

/// Sink for `--emit` output: stdout or `-o FILE`.
type OutputSink = Box<dyn FnOnce(&[u8]) -> Result<(), String>>;

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["emit"], &["old", "pass-timing"])?;
    let [pattern] = flags.positional.as_slice() else {
        return Err("compile takes exactly one pattern".to_owned());
    };
    let emit = flags.value("emit").unwrap_or("asm");
    let old = flags.has("old");
    let o0 = flags.has("O0");
    let output: OutputSink = match flags.value("output") {
        Some(path) => {
            let path = path.to_owned();
            Box::new(move |bytes: &[u8]| {
                std::fs::write(&path, bytes).map_err(|e| format!("writing {path}: {e}"))
            })
        }
        None => {
            Box::new(|bytes: &[u8]| std::io::stdout().write_all(bytes).map_err(|e| e.to_string()))
        }
    };
    match emit {
        "asm" | "bin" => {
            let (program, pass_report) = compile_one(pattern, old, o0, None)?;
            if emit == "asm" {
                output(program.to_asm().as_bytes())?;
            } else {
                output(&cicero::isa::EncodedProgram::from_program(&program).to_bytes())?;
            }
            if flags.has("pass-timing") {
                // To stderr: stdout may be carrying the emitted program.
                eprintln!("{}", pass_timing_text(pass_report.as_ref()));
            }
            Ok(())
        }
        "regex-ir" | "cicero-ir" => {
            if old {
                return Err("the legacy compiler has a single IR; use --emit asm".to_owned());
            }
            let options =
                if o0 { CompilerOptions::unoptimized() } else { CompilerOptions::optimized() };
            let artifacts = Compiler::with_options(options)
                .compile_with_artifacts(pattern)
                .map_err(|e| e.to_string())?;
            let text = if emit == "regex-ir" {
                artifacts.regex_ir_optimized.to_text()
            } else {
                artifacts.cicero_ir_optimized.to_text()
            };
            output(text.as_bytes())?;
            if flags.has("pass-timing") {
                eprintln!("{}", pass_timing_text(Some(artifacts.compiled.pass_report())));
            }
            Ok(())
        }
        other => Err(format!("unknown emit kind `{other}`")),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &["text", "input", "config", "metrics", "metrics-format"],
        &["old", "pass-timing"],
    )?;
    let [pattern] = flags.positional.as_slice() else {
        return Err("run takes exactly one pattern".to_owned());
    };
    // The implicit-run shorthand allows omitting the input entirely.
    let input = match (flags.value("text"), flags.value("input")) {
        (None, None) => Vec::new(),
        _ => read_input(&flags)?,
    };
    let config = parse_config(flags.value("config"))?;
    let telemetry = Telemetry::new();
    let (program, pass_report) =
        compile_one(pattern, flags.has("old"), flags.has("O0"), Some(&telemetry))?;
    let report = simulate_with_telemetry(&program, &input, &config, &telemetry);
    println!("pattern    : {pattern}");
    println!("config     : {} @ {} MHz", config.name(), config.clock_mhz());
    println!("verdict    : {}", if report.accepted { "MATCH" } else { "no match" });
    if let Some(position) = report.match_position {
        println!("match ends : {position}");
    }
    println!("cycles     : {}", report.cycles);
    println!("time       : {:.3} us", report.time_us(config.clock_mhz()));
    println!(
        "energy     : {:.3} W·µs",
        report.energy_wus(config.clock_mhz(), cicero::sim::power_watts(&config))
    );
    println!("instructions: {}", report.instructions);
    println!("icache      : {:.1}% hits", report.icache_hit_rate() * 100.0);
    if flags.has("pass-timing") {
        println!();
        println!("{}", pass_timing_text(pass_report.as_ref()));
    }
    write_metrics(&flags, &telemetry)
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["text", "input", "config"], &[])?;
    if flags.positional.is_empty() {
        return Err("scan takes one or more patterns".to_owned());
    }
    let input = read_input(&flags)?;
    let config = parse_config(flags.value("config"))?;
    let set = Compiler::new().compile_set(&flags.positional).map_err(|e| e.to_string())?;
    let report = simulate(set.program(), &input, &config);
    match report.matched_id {
        Some(id) => println!(
            "MATCH: pattern {} ({:?}) in {} cycles",
            id,
            set.pattern(id).unwrap_or("?"),
            report.cycles
        ),
        None => println!("no match in {} cycles", report.cycles),
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[], &[])?;
    let [pattern] = flags.positional.as_slice() else {
        return Err("explain takes exactly one pattern".to_owned());
    };
    let artifacts = Compiler::new().compile_with_artifacts(pattern).map_err(|e| e.to_string())?;
    println!("== regex dialect (initial) ==\n{}", artifacts.regex_ir_initial.to_text());
    println!("== regex dialect (optimized) ==\n{}", artifacts.regex_ir_optimized.to_text());
    println!("== cicero dialect (lowered) ==\n{}", artifacts.cicero_ir_initial.to_text());
    println!("== cicero dialect (simplified) ==\n{}", artifacts.cicero_ir_optimized.to_text());
    println!("== assembly ==\n{}", artifacts.compiled.program().to_asm());
    println!(
        "code size {} instructions, D_offset {}",
        artifacts.compiled.code_size(),
        artifacts.compiled.d_offset()
    );
    Ok(())
}

fn cmd_configs() -> Result<(), String> {
    println!(
        "{:<16} {:>7} {:>7} {:>7} {:>8} {:>7} {:>6}",
        "config", "LUT%", "REG%", "BRAM%", "power W", "clock", "fits"
    );
    let mut configs: Vec<ArchConfig> =
        [1usize, 4, 9, 16, 32].iter().map(|m| ArchConfig::old_organization(*m)).collect();
    for (n, ms) in [(8usize, [1usize, 4, 9, 16].as_slice()), (16, &[1, 4, 9]), (32, &[1, 4, 9])] {
        for m in ms {
            configs.push(ArchConfig::new_organization(n, *m));
        }
    }
    for config in configs {
        let usage = cicero::sim::resource_usage(&config);
        println!(
            "{:<16} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.2} {:>4.0}MHz {:>6}",
            config.name(),
            usage.lut_fraction * 100.0,
            usage.reg_fraction * 100.0,
            usage.bram_fraction * 100.0,
            cicero::sim::power_watts(&config),
            config.clock_mhz(),
            if usage.fits() { "yes" } else { "NO" },
        );
    }
    Ok(())
}
