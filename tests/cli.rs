//! Regression tests for the `cicero` binary's flag handling.
//!
//! These drive the compiled binary itself (via `CARGO_BIN_EXE_cicero`),
//! because the bugs they pin down lived in `parse_flags` registration —
//! exactly the layer unit tests of the library can't see.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cicero(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cicero"))
        .args(args)
        .output()
        .expect("running the cicero binary")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn temp_file(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("cicero-cli-test-{}-{name}", std::process::id()));
    path
}

/// The long spellings `--O0` and `--output FILE` were documented but never
/// registered with the flag parser, so `compile` rejected them as unknown
/// flags. This is the issue's acceptance-criterion invocation.
#[test]
fn compile_accepts_long_o0_and_output_flags() {
    let out_path = temp_file("long-flags.bin");
    let output = cicero(&[
        "compile",
        "ab|cd",
        "--O0",
        "--emit",
        "bin",
        "--output",
        out_path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let bytes = std::fs::read(&out_path).expect("compile wrote the output file");
    assert!(!bytes.is_empty());
    std::fs::remove_file(&out_path).ok();
}

/// The short spellings must keep working, and produce the same artifact.
#[test]
fn compile_short_and_long_flags_are_equivalent() {
    let short_path = temp_file("short.bin");
    let long_path = temp_file("long.bin");
    let short =
        cicero(&["compile", "a+b", "-O0", "--emit", "bin", "-o", short_path.to_str().unwrap()]);
    let long = cicero(&[
        "compile",
        "a+b",
        "--O0",
        "--emit",
        "bin",
        "--output",
        long_path.to_str().unwrap(),
    ]);
    assert!(short.status.success(), "stderr: {}", stderr(&short));
    assert!(long.status.success(), "stderr: {}", stderr(&long));
    assert_eq!(
        std::fs::read(&short_path).unwrap(),
        std::fs::read(&long_path).unwrap(),
        "-O0/-o and --O0/--output must emit identical binaries"
    );
    std::fs::remove_file(&short_path).ok();
    std::fs::remove_file(&long_path).ok();
}

/// Genuinely unknown flags must still be rejected.
#[test]
fn unknown_flags_are_still_rejected() {
    let output = cicero(&["compile", "ab", "--no-such-flag"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("unknown flag"));
}

/// `--` ends flag parsing: patterns that start with a dash become
/// expressible instead of being rejected as unknown flags.
#[test]
fn double_dash_separator_passes_dash_patterns_through() {
    let rejected = cicero(&["run", "--text", "a--b", "--b"]);
    assert!(!rejected.status.success(), "`--`-pattern without the separator is a flag error");

    let output = cicero(&["run", "--text", "a--b", "--", "--b"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("MATCH"), "stdout: {}", stdout(&output));

    // Single-dash patterns work too, and flags after `--` are positional.
    let output = cicero(&["run", "--text", "a-b", "--", "-b"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("MATCH"), "stdout: {}", stdout(&output));
    let extra = cicero(&["run", "--", "-b", "--text", "a-b"]);
    assert!(!extra.status.success(), "everything after `--` is positional");
}

/// `run --jobs N` must print the same verdict/cycle totals for every
/// worker count — the runtime's determinism guarantee, observed end to
/// end through the CLI.
#[test]
fn run_jobs_output_is_identical_for_every_worker_count() {
    let text = format!("{}ab{}cd", "x".repeat(700), "y".repeat(600));
    let outputs: Vec<String> = [1, 2, 4]
        .iter()
        .map(|jobs| {
            let output = cicero(&["run", "ab|cd", "--text", &text, "--jobs", &jobs.to_string()]);
            assert!(output.status.success(), "stderr: {}", stderr(&output));
            // Strip host-dependent lines (wall clock, worker count).
            stdout(&output)
                .lines()
                .filter(|l| !l.starts_with("host wall") && !l.starts_with("batch"))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    assert!(outputs[0].contains("MATCH"), "output: {}", outputs[0]);
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

/// `scan --jobs N` reports which pattern of the set matched.
#[test]
fn scan_jobs_reports_per_pattern_matches() {
    let text = format!("{}cd", "x".repeat(600));
    let output = cicero(&["scan", "ab", "cd", "--text", &text, "--jobs", "2"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let stdout = stdout(&output);
    assert!(stdout.contains("MATCH: pattern 1"), "stdout: {stdout}");
    assert!(stdout.contains("\"cd\""), "stdout: {stdout}");
}

/// `--jobs` values must be numeric.
#[test]
fn run_jobs_rejects_non_numeric_values() {
    let output = cicero(&["run", "ab", "--text", "ab", "--jobs", "lots"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("is not a number"));
}
