//! **Ablation** — the FIFO duplicate filter (Thompson set semantics).
//!
//! With deduplication disabled, alternation-heavy patterns re-execute the
//! same (PC, position) pairs; this quantifies how much work the filter
//! saves and why the hardware includes it.

use cicero_bench::{banner, f2, suites, CompiledSuite, Scale, Table};
use cicero_sim::{simulate_batch, ArchConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Ablation", "FIFO duplicate filter on vs off (OLD 1x1)", scale);
    let mut table = Table::new(vec!["suite", "instr (dedup)", "instr (no dedup)", "work ratio"]);
    for bench in suites(scale) {
        let s = CompiledSuite::build(&bench);
        let mut with = 0u64;
        let mut without = 0u64;
        let on = ArchConfig::old_organization(1);
        let mut off = ArchConfig::old_organization(1);
        off.dedup = false;
        off.max_cycles = 3_000_000;
        for program in &s.new_opt {
            for r in simulate_batch(program, &s.chunks, &on) {
                with += r.instructions;
            }
            for r in simulate_batch(program, &s.chunks, &off) {
                without += r.instructions;
            }
        }
        table.row(vec![
            s.name.to_owned(),
            with.to_string(),
            without.to_string(),
            f2(without as f64 / with as f64),
        ]);
    }
    table.print();
    println!("\n  expectation: ratio > 1, largest on the alternate suites");
}
