//! Versioned handles for compiled pattern sets, with pin/drain
//! accounting for zero-downtime hot reload.
//!
//! A [`SetHandle`] couples one compiled [`Program`] with the pattern
//! list it came from and a content-hash version string. The serving
//! layer keeps the *current* handle behind a swap point; every request
//! [`pin`](SetHandle::pin)s the handle it was admitted against and holds
//! the [`PinGuard`] for the duration of the scan, so a swap installs a
//! new current version without disturbing in-flight work: old versions
//! are [`retire`](SetHandle::retire)d at swap time and counted as
//! drained only once their last pin drops.
//!
//! The accounting is deliberately explicit (rather than leaning on
//! `Arc`'s refcount) so the swap/drain protocol can be model-checked in
//! `cicero-permute` and observed in telemetry: `pins()` is the in-flight
//! count, `is_retired()` marks a superseded version, and `is_drained()`
//! is the release condition the registry sweeps on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cicero_isa::Program;

/// One immutable compiled version of a ruleset.
///
/// Cheap to share behind an [`Arc`]; all mutability is the pin/retire
/// accounting, which is atomic.
#[derive(Debug)]
pub struct SetHandle {
    version: String,
    patterns: Vec<String>,
    program: Arc<Program>,
    /// In-flight scans pinned to this version.
    pins: AtomicU64,
    /// Set once, at swap/delete time, when a newer version (or nothing)
    /// replaces this one. Bit 0 of the packed state word.
    state: AtomicU64,
}

const RETIRED_BIT: u64 = 1;
const PIN_ONE: u64 = 2;

impl SetHandle {
    /// Wrap a compiled program with its source patterns and version tag.
    pub fn new(version: String, patterns: Vec<String>, program: Arc<Program>) -> SetHandle {
        SetHandle { version, patterns, program, pins: AtomicU64::new(0), state: AtomicU64::new(0) }
    }

    /// The content-hash version tag.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The pattern list this version was compiled from; match
    /// identifiers index this slice in order.
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// The compiled program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Pin this version for one in-flight scan; the returned guard
    /// releases the pin on drop.
    pub fn pin(self: &Arc<SetHandle>) -> PinGuard {
        self.state.fetch_add(PIN_ONE, Ordering::AcqRel);
        self.pins.fetch_add(1, Ordering::Relaxed);
        PinGuard { handle: Arc::clone(self) }
    }

    /// In-flight scans currently pinned to this version.
    pub fn pins(&self) -> u64 {
        self.state.load(Ordering::Acquire) / PIN_ONE
    }

    /// Mark this version as superseded. Idempotent. New requests must
    /// no longer pin it (the swap point has already moved); existing
    /// pins drain naturally.
    pub fn retire(&self) {
        self.state.fetch_or(RETIRED_BIT, Ordering::AcqRel);
    }

    /// Whether this version has been superseded by a swap or delete.
    pub fn is_retired(&self) -> bool {
        self.state.load(Ordering::Acquire) & RETIRED_BIT != 0
    }

    /// The release condition: retired with no remaining pins. The
    /// registry sweeps retired versions on this predicate and drops its
    /// last reference, releasing the compiled artifact.
    pub fn is_drained(&self) -> bool {
        self.state.load(Ordering::Acquire) == RETIRED_BIT
    }

    /// Total pins ever taken (monotonic; for telemetry and tests).
    pub fn total_pins(&self) -> u64 {
        self.pins.load(Ordering::Relaxed)
    }
}

/// An RAII pin on a [`SetHandle`]: holds the version alive (in the
/// accounting sense) for the duration of one scan.
#[derive(Debug)]
pub struct PinGuard {
    handle: Arc<SetHandle>,
}

impl PinGuard {
    /// The pinned handle.
    pub fn handle(&self) -> &Arc<SetHandle> {
        &self.handle
    }

    /// The pinned version tag.
    pub fn version(&self) -> &str {
        self.handle.version()
    }

    /// The pinned compiled program.
    pub fn program(&self) -> &Arc<Program> {
        self.handle.program()
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.handle.state.fetch_sub(PIN_ONE, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle() -> Arc<SetHandle> {
        let program = Arc::new(cicero_core::compile("ab|cd").unwrap().into_program());
        Arc::new(SetHandle::new("v1".to_owned(), vec!["ab|cd".to_owned()], program))
    }

    #[test]
    fn pins_track_guard_lifetimes() {
        let handle = handle();
        assert_eq!(handle.pins(), 0);
        let a = handle.pin();
        let b = handle.pin();
        assert_eq!(handle.pins(), 2);
        assert_eq!(a.version(), "v1");
        drop(a);
        assert_eq!(handle.pins(), 1);
        drop(b);
        assert_eq!(handle.pins(), 0);
        assert_eq!(handle.total_pins(), 2);
    }

    #[test]
    fn retired_versions_drain_only_after_the_last_pin_drops() {
        let handle = handle();
        let guard = handle.pin();
        handle.retire();
        assert!(handle.is_retired());
        assert!(!handle.is_drained(), "still pinned");
        drop(guard);
        assert!(handle.is_drained());
        // Retire is idempotent and an unretired handle never drains.
        handle.retire();
        assert!(handle.is_drained());
        let fresh = self::handle();
        assert!(!fresh.is_drained());
    }

    #[test]
    fn concurrent_pins_balance_out() {
        let handle = handle();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let handle = Arc::clone(&handle);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let guard = handle.pin();
                        std::hint::black_box(guard.program());
                    }
                })
            })
            .collect();
        handle.retire();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(handle.pins(), 0);
        assert!(handle.is_drained());
        assert_eq!(handle.total_pins(), 2000);
    }
}
