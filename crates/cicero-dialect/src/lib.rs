//! The low-level `cicero` MLIR dialect (§3.3 of the paper): an IR in
//! one-to-one correspondence with the Cicero ISA, plus the lowering from
//! the high-level `regex` dialect, the back-end *Jump Simplification*
//! optimization (§5), and final code generation.
//!
//! Operations mirror Table 4:
//!
//! | Cicero ISA     | Operation                | Arguments          |
//! |----------------|--------------------------|--------------------|
//! | Accept         | `cicero.accept`          | —                  |
//! | Accept Partial | `cicero.accept_partial`  | —                  |
//! | Split          | `cicero.split`           | `target` symbol    |
//! | Jump           | `cicero.jump`            | `target` symbol    |
//! | MatchAny       | `cicero.match_any`       | —                  |
//! | Match          | `cicero.match_char`      | `target_char`      |
//! | NotMatch       | `cicero.not_match_char`  | `target_char`      |
//!
//! A containing `cicero.program` op holds the flat instruction list in a
//! single region — this is where "the process maps basic blocks to
//! instruction memory" (§3): emission order *is* the memory layout. Control
//! flow references use symbols (an optional `sym_name` string attribute on
//! any op), resolved to absolute addresses only at code generation, so the
//! Jump Simplification rewrites never re-patch addresses — the premature-
//! lowering pain of the old compiler that §2.1 describes.
//!
//! # Lowering
//!
//! [`lower_to_cicero`] performs the Thompson-
//! style construction, reproducing the exact layout of the paper's
//! Listing 2 (continuations placed after the first alternative, a shared
//! acceptance op, `.*` prefix loop of `SPLIT / MATCH_ANY / JMP`). Negated
//! character classes lower to `NotMatchCharOp` chains ending in
//! `MatchAnyOp`, and wide positive classes automatically use the same
//! encoding on their complement when it is smaller (§3.3).
//!
//! # Example
//!
//! ```
//! let ast = regex_frontend::parse("ab|cd")?;
//! let regex_ir = regex_dialect::ast_to_ir(&ast);
//! let mut cicero_ir = cicero_dialect::lower_to_cicero(&regex_ir);
//! cicero_dialect::jump_simplify(&mut cicero_ir);
//! let program = cicero_dialect::codegen(&cicero_ir)?;
//! assert_eq!(program.total_jump_offset(), 9); // Listing 2, right column
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codegen;
pub mod jump_simplify;
pub mod lowering;
pub mod ops;

pub use codegen::{codegen, CodegenError};
pub use jump_simplify::{jump_simplify, JumpSimplificationPass};
pub use lowering::{lower_multi, lower_to_cicero, LowerToCiceroPass};
pub use ops::{dialect, names};

/// Options for the low-level (`cicero`-dialect) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowLevelOptions {
    /// Back-end Jump Simplification (§5), on by default.
    pub jump_simplification: bool,
}

impl Default for LowLevelOptions {
    fn default() -> LowLevelOptions {
        LowLevelOptions { jump_simplification: true }
    }
}

/// Register the enabled `cicero`-dialect transforms on a pass manager.
///
/// The dialect's single registration point, mirroring
/// `regex_dialect::transforms::build_pipeline`: drivers build the
/// low-level pipeline here so instrumentation attached to the pass
/// manager observes every back-end transform.
pub fn build_pipeline(pm: &mut mlir_lite::PassManager, options: &LowLevelOptions) {
    if options.jump_simplification {
        pm.add_pass(Box::new(JumpSimplificationPass));
    }
}
