//! FPGA resource model for the Zynq UltraScale+ XCZU3EG (Figure 13).
//!
//! Vivado synthesis is not available in this environment, so resource
//! usage is an analytic per-component model whose constants were fitted to
//! reproduce the relationships the paper reports (see DESIGN.md):
//!
//! * NEW 8x1 is the most resource-efficient configuration;
//! * NEW 16x1 uses considerably fewer resources than OLD 1x16 at the same
//!   core count (the old organization replicates 8 FIFOs, a load-balance
//!   station and an instruction memory per engine);
//! * NEW 16x9 and NEW 32x4 exceed 70% LUTs / 90% BRAMs and must derate
//!   the clock from 150 MHz to 100 MHz (Table 5 footnote);
//! * NEW 32x9 does not fit the device at all (excluded in §6.2).

use crate::config::ArchConfig;

/// Device capacity of the XCZU3EG (A484).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops (the paper's REGs).
    pub regs: u64,
    /// BRAM36 blocks.
    pub brams: f64,
}

/// The evaluation board's device: Ultra96-V2 / XCZU3EG.
pub const XCZU3EG: Device = Device { luts: 70_560, regs: 141_120, brams: 216.0 };

// Fitted per-component costs (see module docs).
const CORE_LUTS: u64 = 245;
const CORE_REGS: u64 = 250;
const CORE_BRAMS: f64 = 0.5;
const FIFO_LUTS: u64 = 80;
const FIFO_REGS: u64 = 100;
/// FIFO BRAM cost per window slot: FIFO depth tracks the `CC_ID` pointer
/// width, so a 32-slot window needs 4x the storage of an 8-slot one.
const FIFO_BRAMS_PER_WINDOW_SLOT: f64 = 0.03125;
const ENGINE_LUTS: u64 = 400;
const ENGINE_REGS: u64 = 300;
const ENGINE_BRAMS: f64 = 2.0; // per-engine central instruction memory
const TOP_LUTS: u64 = 800; // controller + AXI plumbing
const TOP_REGS: u64 = 500;

/// Absolute and relative resource usage of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUsage {
    /// LUTs used.
    pub luts: u64,
    /// Flip-flops used.
    pub regs: u64,
    /// BRAM36 blocks used.
    pub brams: f64,
    /// LUT utilization fraction on [`XCZU3EG`].
    pub lut_fraction: f64,
    /// FF utilization fraction.
    pub reg_fraction: f64,
    /// BRAM utilization fraction.
    pub bram_fraction: f64,
}

impl ResourceUsage {
    /// Whether the configuration fits the device.
    pub fn fits(&self) -> bool {
        self.lut_fraction <= 1.0 && self.reg_fraction <= 1.0 && self.bram_fraction <= 1.0
    }

    /// Whether the configuration must run at the derated 100 MHz clock
    /// (> 70% LUTs or > 90% BRAMs, Table 5 footnote).
    pub fn derated(&self) -> bool {
        self.lut_fraction > 0.70 || self.bram_fraction > 0.90
    }
}

/// Compute the resource usage of a configuration.
pub fn resource_usage(config: &ArchConfig) -> ResourceUsage {
    let cores = config.total_cores() as u64;
    let fifos = config.total_fifos() as u64;
    let engines = config.engines as u64;
    let luts = TOP_LUTS + engines * ENGINE_LUTS + cores * CORE_LUTS + fifos * FIFO_LUTS;
    let regs = TOP_REGS + engines * ENGINE_REGS + cores * CORE_REGS + fifos * FIFO_REGS;
    let fifo_brams = FIFO_BRAMS_PER_WINDOW_SLOT * config.window() as f64;
    let brams =
        engines as f64 * ENGINE_BRAMS + cores as f64 * CORE_BRAMS + fifos as f64 * fifo_brams;
    ResourceUsage {
        luts,
        regs,
        brams,
        lut_fraction: luts as f64 / XCZU3EG.luts as f64,
        reg_fraction: regs as f64 / XCZU3EG.regs as f64,
        bram_fraction: brams / XCZU3EG.brams,
    }
}

/// The operating clock for a configuration (150 MHz, or 100 MHz when
/// derated).
pub fn clock_mhz(config: &ArchConfig) -> f64 {
    if resource_usage(config).derated() {
        100.0
    } else {
        150.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_8x1_is_most_efficient_of_the_figure13_set() {
        let set = [
            ArchConfig::old_organization(9),
            ArchConfig::old_organization(16),
            ArchConfig::new_organization(8, 1),
            ArchConfig::new_organization(16, 1),
            ArchConfig::new_organization(32, 1),
        ];
        let smallest = resource_usage(&ArchConfig::new_organization(8, 1));
        for config in &set {
            let usage = resource_usage(config);
            assert!(usage.fits(), "{} must fit", config.name());
            assert!(
                smallest.luts <= usage.luts
                    && smallest.regs <= usage.regs
                    && smallest.brams <= usage.brams,
                "NEW 8x1 must be minimal, but {} uses less",
                config.name()
            );
        }
    }

    #[test]
    fn new_16x1_cheaper_than_old_1x16_at_equal_cores() {
        let new = resource_usage(&ArchConfig::new_organization(16, 1));
        let old = resource_usage(&ArchConfig::old_organization(16));
        assert!(new.luts < old.luts);
        assert!(new.regs < old.regs);
        assert!(new.brams < old.brams);
    }

    #[test]
    fn table5_footnote_configurations_derate() {
        assert!(resource_usage(&ArchConfig::new_organization(16, 9)).derated());
        assert!(resource_usage(&ArchConfig::new_organization(32, 4)).derated());
        assert_eq!(clock_mhz(&ArchConfig::new_organization(16, 9)), 100.0);
        assert_eq!(clock_mhz(&ArchConfig::new_organization(32, 4)), 100.0);
    }

    #[test]
    fn evaluated_configurations_run_at_150mhz() {
        for config in [
            ArchConfig::old_organization(1),
            ArchConfig::old_organization(32),
            ArchConfig::new_organization(8, 1),
            ArchConfig::new_organization(32, 1),
            ArchConfig::new_organization(8, 16),
        ] {
            assert_eq!(clock_mhz(&config), 150.0, "{}", config.name());
        }
    }

    #[test]
    fn new_32x9_does_not_fit() {
        assert!(!resource_usage(&ArchConfig::new_organization(32, 9)).fits());
    }

    #[test]
    fn derated_configs_still_fit() {
        assert!(resource_usage(&ArchConfig::new_organization(16, 9)).fits());
        assert!(resource_usage(&ArchConfig::new_organization(32, 4)).fits());
    }
}
