//! Operation definitions and verifiers for the `cicero` dialect.

use std::collections::BTreeMap;

use mlir_lite::{AttrKind, AttrSpec, Attribute, Dialect, OpDefinition, Operation, RegionCount};

/// Fully-qualified operation names.
pub mod names {
    /// The container: a flat instruction list in one region.
    pub const PROGRAM: &str = "cicero.program";
    /// Accept iff at end of input.
    pub const ACCEPT: &str = "cicero.accept";
    /// Accept at any point of the input.
    pub const ACCEPT_PARTIAL: &str = "cicero.accept_partial";
    /// Accept anywhere and report the matched RE's identifier (the
    /// Future-Work multi-matching extension).
    pub const ACCEPT_PARTIAL_ID: &str = "cicero.accept_partial_id";
    /// Fork: fall through and jump to `target`.
    pub const SPLIT: &str = "cicero.split";
    /// Unconditional jump to `target`.
    pub const JUMP: &str = "cicero.jump";
    /// Consume any character.
    pub const MATCH_ANY: &str = "cicero.match_any";
    /// Consume a specific character.
    pub const MATCH_CHAR: &str = "cicero.match_char";
    /// Assert (without consuming) the character differs.
    pub const NOT_MATCH_CHAR: &str = "cicero.not_match_char";
}

/// Attribute keys.
pub mod attrs {
    /// Optional label defining a symbol at this op.
    pub const SYM_NAME: &str = "sym_name";
    /// `cicero.split`/`cicero.jump`: the referenced symbol.
    pub const TARGET: &str = "target";
    /// `cicero.match_char`/`cicero.not_match_char`: the character.
    pub const TARGET_CHAR: &str = "target_char";
    /// `cicero.accept_partial_id`: the reported RE identifier.
    pub const ID: &str = "id";
}

/// Build the `cicero` dialect with all op definitions and verifiers.
pub fn dialect() -> Dialect {
    let sym = || AttrSpec::optional(attrs::SYM_NAME, AttrKind::Str);
    let mut d = Dialect::new("cicero");
    d.register_op(OpDefinition {
        name: "program",
        attrs: vec![],
        regions: RegionCount::Exact(1),
        verifier: Some(verify_program),
    });
    for simple in ["accept", "accept_partial", "match_any"] {
        d.register_op(OpDefinition {
            name: simple,
            attrs: vec![sym()],
            regions: RegionCount::Exact(0),
            verifier: None,
        });
    }
    for branch in ["split", "jump"] {
        d.register_op(OpDefinition {
            name: branch,
            attrs: vec![sym(), AttrSpec::required(attrs::TARGET, AttrKind::Symbol)],
            regions: RegionCount::Exact(0),
            verifier: None,
        });
    }
    d.register_op(OpDefinition {
        name: "accept_partial_id",
        attrs: vec![sym(), AttrSpec::required(attrs::ID, AttrKind::Int)],
        regions: RegionCount::Exact(0),
        verifier: Some(|op| {
            let id = op.attr(attrs::ID).and_then(Attribute::as_int).expect("declared");
            if (0..=i64::from(cicero_isa::MAX_OPERAND)).contains(&id) {
                Ok(())
            } else {
                Err(format!("id {id} does not fit the 13-bit operand"))
            }
        }),
    });
    for matcher in ["match_char", "not_match_char"] {
        d.register_op(OpDefinition {
            name: matcher,
            attrs: vec![sym(), AttrSpec::required(attrs::TARGET_CHAR, AttrKind::Char)],
            regions: RegionCount::Exact(0),
            verifier: None,
        });
    }
    d
}

/// `cicero.program` verifier: children are instruction ops, symbols are
/// unique, and every `target` reference resolves.
fn verify_program(op: &Operation) -> Result<(), String> {
    let body = &op.only_region().ops;
    let mut defined: BTreeMap<&str, usize> = BTreeMap::new();
    for (index, child) in body.iter().enumerate() {
        if child.name().dialect() != "cicero" || child.is(names::PROGRAM) {
            return Err(format!("op {index} ({}) is not a cicero instruction", child.name()));
        }
        if !child.regions().is_empty() {
            return Err(format!("instruction op {index} must not have regions"));
        }
        if let Some(sym) = sym_name(child) {
            if defined.insert(sym, index).is_some() {
                return Err(format!("symbol `{sym}` defined more than once"));
            }
        }
    }
    for (index, child) in body.iter().enumerate() {
        if let Some(target) = branch_target(child) {
            if !defined.contains_key(target) {
                return Err(format!("op {index} references undefined symbol `{target}`"));
            }
        }
    }
    Ok(())
}

/// The `sym_name` of an op, if labeled.
pub fn sym_name(op: &Operation) -> Option<&str> {
    op.attr(attrs::SYM_NAME).and_then(Attribute::as_str)
}

/// The `target` symbol of a `split`/`jump`, if applicable.
pub fn branch_target(op: &Operation) -> Option<&str> {
    op.attr(attrs::TARGET).and_then(Attribute::as_symbol)
}

/// Whether the op is an acceptance (`accept`, `accept_partial`, or the
/// multi-matching `accept_partial_id`).
pub fn is_acceptance(op: &Operation) -> bool {
    op.is(names::ACCEPT) || op.is(names::ACCEPT_PARTIAL) || op.is(names::ACCEPT_PARTIAL_ID)
}

/// Whether execution can fall through from this op to the next one.
/// Acceptance ops and unconditional jumps never fall through; everything
/// else does (a failed match kills the thread, which is not a transfer).
pub fn falls_through(op: &Operation) -> bool {
    !(is_acceptance(op) || op.is(names::JUMP))
}

// ---- construction helpers -------------------------------------------------

use mlir_lite::Region;

/// Build `cicero.program` from a flat instruction list.
pub fn program(body: Vec<Operation>) -> Operation {
    Operation::new(names::PROGRAM).with_region(Region::with_ops(body))
}

/// Build `cicero.accept`.
pub fn accept() -> Operation {
    Operation::new(names::ACCEPT)
}

/// Build `cicero.accept_partial`.
pub fn accept_partial() -> Operation {
    Operation::new(names::ACCEPT_PARTIAL)
}

/// Build `cicero.accept_partial_id` reporting `id` on match.
pub fn accept_partial_id(id: u16) -> Operation {
    Operation::new(names::ACCEPT_PARTIAL_ID).with_attr(attrs::ID, i64::from(id))
}

/// Build `cicero.split` targeting `symbol`.
pub fn split(symbol: impl Into<String>) -> Operation {
    Operation::new(names::SPLIT).with_attr(attrs::TARGET, Attribute::Symbol(symbol.into()))
}

/// Build `cicero.jump` targeting `symbol`.
pub fn jump(symbol: impl Into<String>) -> Operation {
    Operation::new(names::JUMP).with_attr(attrs::TARGET, Attribute::Symbol(symbol.into()))
}

/// Build `cicero.match_any`.
pub fn match_any() -> Operation {
    Operation::new(names::MATCH_ANY)
}

/// Build `cicero.match_char`.
pub fn match_char(c: u8) -> Operation {
    Operation::new(names::MATCH_CHAR).with_attr(attrs::TARGET_CHAR, Attribute::Char(c))
}

/// Build `cicero.not_match_char`.
pub fn not_match_char(c: u8) -> Operation {
    Operation::new(names::NOT_MATCH_CHAR).with_attr(attrs::TARGET_CHAR, Attribute::Char(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_lite::Context;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register_dialect(dialect());
        c
    }

    fn labeled(mut op: Operation, sym: &str) -> Operation {
        op.set_attr(attrs::SYM_NAME, sym);
        op
    }

    #[test]
    fn valid_program_verifies() {
        let p = program(vec![
            labeled(split("body"), "loop"),
            match_any(),
            jump("loop"),
            labeled(match_char(b'a'), "body"),
            accept_partial(),
        ]);
        ctx().verify(&p).unwrap();
    }

    #[test]
    fn undefined_symbol_rejected() {
        let p = program(vec![jump("nowhere"), accept()]);
        let err = ctx().verify(&p).unwrap_err();
        assert!(err.message.contains("undefined symbol `nowhere`"), "{err}");
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let p = program(vec![labeled(match_any(), "x"), labeled(accept(), "x")]);
        let err = ctx().verify(&p).unwrap_err();
        assert!(err.message.contains("defined more than once"), "{err}");
    }

    #[test]
    fn foreign_ops_rejected() {
        let p = program(vec![Operation::new("regex.match_any_char")]);
        let err = ctx().verify(&p).unwrap_err();
        assert!(err.message.contains("not a cicero instruction"), "{err}");
    }

    #[test]
    fn fall_through_classification() {
        assert!(falls_through(&match_any()));
        assert!(falls_through(&match_char(b'a')));
        assert!(falls_through(&not_match_char(b'a')));
        assert!(falls_through(&split("x")));
        assert!(!falls_through(&jump("x")));
        assert!(!falls_through(&accept()));
        assert!(!falls_through(&accept_partial()));
    }

    #[test]
    fn accessors() {
        assert_eq!(branch_target(&jump("next")), Some("next"));
        assert_eq!(branch_target(&match_any()), None);
        assert_eq!(sym_name(&labeled(accept(), "end")), Some("end"));
        assert!(is_acceptance(&accept_partial()));
        assert!(!is_acceptance(&jump("x")));
    }
}
