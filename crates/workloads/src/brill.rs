//! Brill-tagger-style contextual rule generator (the Brill stand-in).
//!
//! Brill's transformation-based tagger fires rules on word/context
//! patterns; as regexes they look like literal words with small
//! alternations and optional inflection suffixes, matched against running
//! text. The generator emits rules such as
//! `the [a-z]+ (is|was|has)` or `(walk|talk)(ed|ing|s)? quickly`.

use rand::rngs::StdRng;
use rand::RngExt;

/// A small vocabulary of word stems.
const STEMS: &[&str] = &[
    "the", "cat", "dog", "walk", "talk", "run", "jump", "house", "tree", "river", "quick", "lazy",
    "tag", "word", "rule", "move", "light", "dark", "blue", "green", "stone", "cloud", "paper",
    "glass", "wind", "fire", "water", "earth",
];

/// Verb-ish suffixes used in optional alternations.
const SUFFIXES: &[&str] = &["ed", "ing", "s", "er", "est"];

/// Generate one contextual rule pattern.
pub fn rule(rng: &mut StdRng) -> String {
    let mut out = String::new();
    let words = rng.random_range(2..=4);
    for w in 0..words {
        if w > 0 {
            out.push(' ');
        }
        match rng.random_range(0..10) {
            // A wildcard word.
            0 | 1 => out.push_str("[a-z]+"),
            // A small alternation of stems.
            2 | 3 => {
                let n = rng.random_range(2..=3);
                let mut alts: Vec<&str> = Vec::with_capacity(n);
                while alts.len() < n {
                    let s = STEMS[rng.random_range(0..STEMS.len())];
                    if !alts.contains(&s) {
                        alts.push(s);
                    }
                }
                out.push('(');
                out.push_str(&alts.join("|"));
                out.push(')');
            }
            // A stem with an optional suffix alternation.
            4 | 5 => {
                out.push_str(STEMS[rng.random_range(0..STEMS.len())]);
                let n = rng.random_range(2..=3);
                let mut alts: Vec<&str> = Vec::with_capacity(n);
                while alts.len() < n {
                    let s = SUFFIXES[rng.random_range(0..SUFFIXES.len())];
                    if !alts.contains(&s) {
                        alts.push(s);
                    }
                }
                out.push('(');
                out.push_str(&alts.join("|"));
                out.push(')');
            }
            // A plain literal stem.
            _ => out.push_str(STEMS[rng.random_range(0..STEMS.len())]),
        }
    }
    out
}

/// Generate a text chunk: space-separated stems with random suffixes, so
/// rule prefixes frequently partially match.
pub fn text_chunk(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        let stem = STEMS[rng.random_range(0..STEMS.len())];
        out.extend_from_slice(stem.as_bytes());
        if rng.random_bool(0.3) {
            out.extend_from_slice(SUFFIXES[rng.random_range(0..SUFFIXES.len())].as_bytes());
        }
        out.push(b' ');
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rules_are_wordy() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let r = rule(&mut rng);
            assert!(r.contains(' '), "{r:?} should span words");
            assert!(r.is_ascii());
        }
    }

    #[test]
    fn text_is_lowercase_words() {
        let mut rng = StdRng::seed_from_u64(4);
        let chunk = text_chunk(&mut rng, 500);
        assert_eq!(chunk.len(), 500);
        assert!(chunk.iter().all(|b| b.is_ascii_lowercase() || *b == b' '));
    }
}
