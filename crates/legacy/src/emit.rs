//! Premature lowering: dynamic AST → instructions mapped to memory.
//!
//! This is the old compiler's single IR (§2.1): "the mapping of basic
//! blocks to instruction memory and generation of control instructions"
//! happens here, immediately after parsing. Control-flow operands are
//! **absolute addresses** from the start, so any later transformation must
//! re-patch them — the premature-lowering cost the paper contrasts with
//! the new compiler's symbolic `cicero` dialect.
//!
//! The emitted layout matches the new compiler's unoptimized output
//! instruction-for-instruction (Listing 2, left column), so compiler
//! comparisons isolate the *optimizations*, not the baseline emission.
//!
//! Alongside the code, emission records the alternation metadata
//! ([`AltMeta`]) that [`crate::restructure`] needs to rebuild split chains
//! into balanced trees.

use crate::value::Value;
use crate::LegacyError;

/// A mapped program: dict-instructions plus restructuring metadata.
#[derive(Debug, Clone)]
pub struct MappedProgram {
    /// The instruction list; each entry is `{"op": Str, "arg": Int}`.
    pub code: Vec<Value>,
    /// Restructuring metadata.
    pub meta: EmitMeta,
}

/// Metadata describing the emitted control structure.
#[derive(Debug, Clone, Default)]
pub struct EmitMeta {
    /// Whether the implicit `.*` prefix loop occupies addresses 0..=2.
    pub has_prefix: bool,
    /// Whether acceptance is partial (`AcceptPartial`) or exact.
    pub accept_partial: bool,
    /// Addresses of the root alternation's chain `SPLIT`s (empty when the
    /// root has a single alternative).
    pub root_splits: Vec<usize>,
    /// The root alternation's branches, in source order.
    pub root_branches: Vec<BranchMeta>,
    /// Address of the root acceptance op (the shared join).
    pub join_addr: usize,
    /// All nested alternations, indexed by the `nested` field of
    /// [`BranchMeta`].
    pub alts: Vec<AltMeta>,
}

/// One alternation's mapped structure.
#[derive(Debug, Clone)]
pub struct AltMeta {
    /// Addresses of the chain `SPLIT`s.
    pub splits: Vec<usize>,
    /// The branch code ranges.
    pub branches: Vec<BranchMeta>,
    /// Address of the join (a `JMP` for flattenable nested alternations).
    pub join: usize,
}

/// One branch of an alternation.
#[derive(Debug, Clone)]
pub struct BranchMeta {
    /// Half-open code range `[start, end)`, including the trailing jump to
    /// the join (when one exists).
    pub range: (usize, usize),
    /// When the branch body is exactly one unquantified group whose
    /// alternation has ≥2 branches, the index of that alternation in
    /// [`EmitMeta::alts`] — such branches flatten during restructuring.
    pub nested: Option<usize>,
}

/// Emit a parsed dynamic AST ([`crate::parser::parse`]) into mapped code.
///
/// # Errors
///
/// Returns [`LegacyError`] on malformed AST nodes (which a successful
/// parse never produces).
pub fn emit(root: &Value) -> Result<MappedProgram, LegacyError> {
    if root.node_type() != Some("root") {
        return Err(LegacyError::new("expected a root node"));
    }
    let has_prefix = root
        .get("has_prefix")
        .and_then(Value::as_bool)
        .ok_or_else(|| LegacyError::new("root lacks has_prefix"))?;
    let has_suffix = root
        .get("has_suffix")
        .and_then(Value::as_bool)
        .ok_or_else(|| LegacyError::new("root lacks has_suffix"))?;
    let alternatives = root
        .get("alternatives")
        .and_then(Value::as_list)
        .ok_or_else(|| LegacyError::new("root lacks alternatives"))?;

    let mut e = Emitter::new();
    if has_prefix {
        // L: SPLIT @body; MATCH_ANY; JMP @L (Listing 2).
        let body = e.fresh();
        e.emit_branchy("SPLIT", body);
        e.emit_plain("MATCH_ANY");
        let back = e.fresh();
        e.place_at(back, 0);
        e.emit_branchy("JMP", back);
        e.place(body);
    }
    let accept_op = if has_suffix { "ACCEPT_PARTIAL" } else { "ACCEPT" };
    let body_start = e.code.len();
    let root_nested = emit_branches(
        &mut e,
        alternatives,
        BranchStyle::Root,
        Next::Inline(Box::new(move |e: &mut Emitter| {
            e.emit_plain(accept_op);
        })),
    )?;

    let (root_splits, root_branches, join_addr) = match root_nested {
        BranchKind::Alt(index) => {
            let alt = &e.alts[index];
            (alt.splits.clone(), alt.branches.clone(), alt.join)
        }
        // Single plain alternative: the acceptance is the last instruction.
        BranchKind::Plain => {
            let join_addr = e.code.len() - 1;
            (
                Vec::new(),
                vec![BranchMeta { range: (body_start, join_addr), nested: None }],
                join_addr,
            )
        }
        // Single pure-group alternative: the inner alternation's join *is*
        // the acceptance (it was emitted by our continuation).
        BranchKind::PureNested(index) => {
            let join_addr = e.alts[index].join;
            (
                Vec::new(),
                vec![BranchMeta { range: (body_start, join_addr), nested: Some(index) }],
                join_addr,
            )
        }
    };

    let code = e.resolve()?;
    Ok(MappedProgram {
        code,
        meta: EmitMeta {
            has_prefix,
            accept_partial: has_suffix,
            root_splits,
            root_branches,
            join_addr,
            alts: e.alts,
        },
    })
}

/// What a concatenation's emission turned out to be, for metadata.
enum BranchKind {
    /// Ordinary code.
    Plain,
    /// The concatenation was exactly one unquantified multi-branch group:
    /// its code *is* alternation `alts[index]`.
    PureNested(usize),
    /// Used for the root: `emit_branches` created alternation
    /// `alts[index]` directly.
    Alt(usize),
}

enum Next<'a> {
    Inline(Box<dyn FnOnce(&mut Emitter) + 'a>),
    Goto(usize),
}

impl<'a> Next<'a> {
    fn resolve(self, e: &mut Emitter) {
        match self {
            Next::Inline(f) => f(e),
            Next::Goto(label) => e.emit_branchy("JMP", label),
        }
    }
}

struct Emitter {
    code: Vec<Value>,
    /// Labels: `labels[id]` is the resolved address once placed.
    labels: Vec<Option<usize>>,
    /// Instructions whose `arg` is a label id awaiting resolution.
    patches: Vec<(usize, usize)>,
    alts: Vec<AltMeta>,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter { code: Vec::new(), labels: Vec::new(), patches: Vec::new(), alts: Vec::new() }
    }

    fn fresh(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    /// Place a label at the current end of code.
    fn place(&mut self, label: usize) {
        self.place_at(label, self.code.len());
    }

    fn place_at(&mut self, label: usize, address: usize) {
        debug_assert!(self.labels[label].is_none(), "label placed twice");
        self.labels[label] = Some(address);
    }

    fn emit_plain(&mut self, op: &str) {
        let mut ins = Value::dict();
        ins.set("op", Value::Str(op.to_owned()));
        self.code.push(ins);
    }

    fn emit_char_op(&mut self, op: &str, c: i64) {
        let mut ins = Value::dict();
        ins.set("op", Value::Str(op.to_owned()));
        ins.set("arg", Value::Int(c));
        self.code.push(ins);
    }

    /// Emit a SPLIT/JMP whose target is the given label.
    fn emit_branchy(&mut self, op: &str, label: usize) {
        let mut ins = Value::dict();
        ins.set("op", Value::Str(op.to_owned()));
        ins.set("arg", Value::Int(-1));
        self.patches.push((self.code.len(), label));
        self.code.push(ins);
    }

    /// Resolve label patches into absolute addresses.
    fn resolve(&mut self) -> Result<Vec<Value>, LegacyError> {
        for (address, label) in self.patches.drain(..) {
            let target = self.labels[label]
                .ok_or_else(|| LegacyError::new(format!("unplaced label {label}")))?;
            self.code[address].set("arg", Value::Int(target as i64));
        }
        Ok(std::mem::take(&mut self.code))
    }
}

/// Layout discipline for an alternation's shared continuation (mirrors
/// the new compiler's lowering exactly, so unoptimized outputs match).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchStyle {
    /// Listing-2 root layout: branch 0, continuation, branches 1..n-1.
    Root,
    /// Classic layout: all branches (each ending in a jump to the join),
    /// then the continuation. Keeps nested constructs contiguous, which
    /// Code Restructuring relies on.
    Inner,
}

/// Emit an alternation.
fn emit_branches<'a>(
    e: &mut Emitter,
    branches: &'a [Value],
    style: BranchStyle,
    next: Next<'a>,
) -> Result<BranchKind, LegacyError> {
    if branches.len() == 1 {
        return emit_concat(e, &branches[0], next);
    }
    let join = e.fresh();
    let mut splits = Vec::new();
    let mut metas = Vec::with_capacity(branches.len());
    match style {
        BranchStyle::Root => {
            splits.push(e.code.len());
            let rest = e.fresh();
            e.emit_branchy("SPLIT", rest);
            let start = e.code.len();
            let nested0 = emit_concat(e, &branches[0], Next::Goto(join))?;
            metas.push(BranchMeta { range: (start, e.code.len()), nested: nested0.nested_index() });
            e.place(join);
            next.resolve(e);
            e.place(rest);
            for (i, branch) in branches.iter().enumerate().skip(1) {
                if i + 1 < branches.len() {
                    let after = e.fresh();
                    splits.push(e.code.len());
                    e.emit_branchy("SPLIT", after);
                    let start = e.code.len();
                    let nested = emit_concat(e, branch, Next::Goto(join))?;
                    metas.push(BranchMeta {
                        range: (start, e.code.len()),
                        nested: nested.nested_index(),
                    });
                    e.place(after);
                } else {
                    let start = e.code.len();
                    let nested = emit_concat(e, branch, Next::Goto(join))?;
                    metas.push(BranchMeta {
                        range: (start, e.code.len()),
                        nested: nested.nested_index(),
                    });
                }
            }
        }
        BranchStyle::Inner => {
            for (i, branch) in branches.iter().enumerate() {
                if i + 1 < branches.len() {
                    let after = e.fresh();
                    splits.push(e.code.len());
                    e.emit_branchy("SPLIT", after);
                    let start = e.code.len();
                    let nested = emit_concat(e, branch, Next::Goto(join))?;
                    metas.push(BranchMeta {
                        range: (start, e.code.len()),
                        nested: nested.nested_index(),
                    });
                    e.place(after);
                } else {
                    let start = e.code.len();
                    let nested = emit_concat(e, branch, Next::Goto(join))?;
                    metas.push(BranchMeta {
                        range: (start, e.code.len()),
                        nested: nested.nested_index(),
                    });
                }
            }
            e.place(join);
            next.resolve(e);
        }
    }
    let join_address = e.labels[join].expect("join placed");
    e.alts.push(AltMeta { splits, branches: metas, join: join_address });
    Ok(BranchKind::Alt(e.alts.len() - 1))
}

impl BranchKind {
    fn nested_index(&self) -> Option<usize> {
        match self {
            BranchKind::Alt(i) | BranchKind::PureNested(i) => Some(*i),
            BranchKind::Plain => None,
        }
    }
}

fn emit_concat<'a>(
    e: &mut Emitter,
    concat: &'a Value,
    next: Next<'a>,
) -> Result<BranchKind, LegacyError> {
    let pieces = concat
        .get("pieces")
        .and_then(Value::as_list)
        .ok_or_else(|| LegacyError::new("concat lacks pieces"))?;
    // Pure-nested detection for restructuring metadata: exactly one
    // unquantified group piece with a multi-branch alternation.
    if pieces.len() == 1 && pieces[0].get("min").is_none() {
        if let Some(atom) = pieces[0].get("atom") {
            if atom.node_type() == Some("group") {
                let alternatives = atom
                    .get("alternatives")
                    .and_then(Value::as_list)
                    .ok_or_else(|| LegacyError::new("group lacks alternatives"))?;
                if alternatives.len() >= 2 {
                    return emit_branches(e, alternatives, BranchStyle::Inner, next).map(|kind| {
                        match kind {
                            BranchKind::Alt(i) => BranchKind::PureNested(i),
                            other => other,
                        }
                    });
                }
            }
        }
    }
    emit_pieces(e, pieces, next)?;
    Ok(BranchKind::Plain)
}

fn emit_pieces<'a>(
    e: &mut Emitter,
    pieces: &'a [Value],
    next: Next<'a>,
) -> Result<(), LegacyError> {
    match pieces.split_first() {
        None => {
            next.resolve(e);
            Ok(())
        }
        Some((first, rest)) => {
            let continuation = Next::Inline(Box::new(move |e: &mut Emitter| {
                emit_pieces(e, rest, next).expect("piece emission cannot fail after the first");
            }));
            emit_piece(e, first, continuation)
        }
    }
}

fn emit_piece<'a>(e: &mut Emitter, piece: &'a Value, next: Next<'a>) -> Result<(), LegacyError> {
    let atom = piece.get("atom").ok_or_else(|| LegacyError::new("piece lacks atom"))?;
    match piece.get("min").and_then(Value::as_int) {
        None => emit_atom(e, atom, next),
        Some(min) => {
            let max = piece
                .get("max")
                .and_then(Value::as_int)
                .ok_or_else(|| LegacyError::new("piece lacks max"))?;
            emit_quantified(e, atom, min, max, next);
            Ok(())
        }
    }
}

/// Quantifier expansion, mirroring the new lowering's shapes exactly.
fn emit_quantified<'a>(e: &mut Emitter, atom: &'a Value, min: i64, max: i64, next: Next<'a>) {
    if min > 0 {
        if max == -1 && min == 1 {
            let back = e.fresh();
            e.place(back);
            let after = Next::Inline(Box::new(move |e: &mut Emitter| {
                e.emit_branchy("SPLIT", back);
                next.resolve(e);
            }));
            emit_atom(e, atom, after).expect("validated atom");
            return;
        }
        let continuation = Next::Inline(Box::new(move |e: &mut Emitter| {
            emit_quantified(e, atom, min - 1, if max == -1 { -1 } else { max - 1 }, next);
        }));
        emit_atom(e, atom, continuation).expect("validated atom");
        return;
    }
    match max {
        -1 => {
            let head = e.fresh();
            let exit = e.fresh();
            e.place(head);
            e.emit_branchy("SPLIT", exit);
            emit_atom(e, atom, Next::Goto(head)).expect("validated atom");
            e.place(exit);
            next.resolve(e);
        }
        0 => next.resolve(e),
        k => {
            let exit = e.fresh();
            emit_optional_chain(e, atom, k, exit, next);
        }
    }
}

fn emit_optional_chain<'a>(
    e: &mut Emitter,
    atom: &'a Value,
    remaining: i64,
    exit: usize,
    next: Next<'a>,
) {
    if remaining == 0 {
        e.place(exit);
        next.resolve(e);
        return;
    }
    e.emit_branchy("SPLIT", exit);
    let continuation = Next::Inline(Box::new(move |e: &mut Emitter| {
        emit_optional_chain(e, atom, remaining - 1, exit, next);
    }));
    emit_atom(e, atom, continuation).expect("validated atom");
}

fn emit_atom<'a>(e: &mut Emitter, atom: &'a Value, next: Next<'a>) -> Result<(), LegacyError> {
    match atom.node_type() {
        Some("char") => {
            let c = atom
                .get("value")
                .and_then(Value::as_int)
                .ok_or_else(|| LegacyError::new("char lacks value"))?;
            e.emit_char_op("MATCH", c);
            next.resolve(e);
            Ok(())
        }
        Some("any") => {
            e.emit_plain("MATCH_ANY");
            next.resolve(e);
            Ok(())
        }
        Some("class") => {
            let chars = atom
                .get("chars")
                .and_then(Value::as_list)
                .ok_or_else(|| LegacyError::new("class lacks chars"))?;
            emit_class(e, chars, next)
        }
        Some("group") => {
            let alternatives = atom
                .get("alternatives")
                .and_then(Value::as_list)
                .ok_or_else(|| LegacyError::new("group lacks alternatives"))?;
            emit_branches(e, alternatives, BranchStyle::Inner, next)?;
            Ok(())
        }
        other => Err(LegacyError::new(format!("unknown atom type {other:?}"))),
    }
}

/// Character class: same encoding choice as the new compiler (§3.3).
fn emit_class<'a>(e: &mut Emitter, chars: &'a [Value], next: Next<'a>) -> Result<(), LegacyError> {
    let members: Vec<i64> = chars.iter().filter_map(Value::as_int).collect();
    if members.len() != chars.len() {
        return Err(LegacyError::new("class member is not an int"));
    }
    let mut in_set = [false; 256];
    for m in &members {
        in_set[*m as usize] = true;
    }
    let complement: Vec<i64> = (0..256).filter(|i| !in_set[*i as usize]).collect();
    let positive_cost = 3 * members.len();
    let negated_cost = complement.len() + 1;
    if positive_cost <= negated_cost || complement.is_empty() {
        if members.len() == 1 {
            e.emit_char_op("MATCH", members[0]);
            next.resolve(e);
            return Ok(());
        }
        // Positive split tree in the classic (Inner) layout. Classes are
        // split chains like any alternation, so they get AltMeta too and
        // participate in Code Restructuring's balancing.
        let join = e.fresh();
        let mut splits = Vec::new();
        let mut metas = Vec::with_capacity(members.len());
        for (i, m) in members.iter().enumerate() {
            if i + 1 < members.len() {
                let after = e.fresh();
                splits.push(e.code.len());
                e.emit_branchy("SPLIT", after);
                let start = e.code.len();
                e.emit_char_op("MATCH", *m);
                e.emit_branchy("JMP", join);
                metas.push(BranchMeta { range: (start, e.code.len()), nested: None });
                e.place(after);
            } else {
                let start = e.code.len();
                e.emit_char_op("MATCH", *m);
                e.emit_branchy("JMP", join);
                metas.push(BranchMeta { range: (start, e.code.len()), nested: None });
            }
        }
        e.place(join);
        let join_address = e.labels[join].expect("join placed");
        e.alts.push(AltMeta { splits, branches: metas, join: join_address });
        next.resolve(e);
    } else {
        for c in complement {
            e.emit_char_op("NOT_MATCH", c);
        }
        e.emit_plain("MATCH_ANY");
        next.resolve(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn emit_pattern(pattern: &str) -> MappedProgram {
        emit(&parser::parse(pattern).unwrap()).unwrap()
    }

    #[test]
    fn listing2_addresses() {
        let mapped = emit_pattern("ab|cd");
        let ops: Vec<(&str, Option<i64>)> = mapped
            .code
            .iter()
            .map(|i| {
                (i.get("op").and_then(Value::as_str).unwrap(), i.get("arg").and_then(Value::as_int))
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                ("SPLIT", Some(3)),
                ("MATCH_ANY", None),
                ("JMP", Some(0)),
                ("SPLIT", Some(8)),
                ("MATCH", Some(97)),
                ("MATCH", Some(98)),
                ("JMP", Some(7)),
                ("ACCEPT_PARTIAL", None),
                ("MATCH", Some(99)),
                ("MATCH", Some(100)),
                ("JMP", Some(7)),
            ]
        );
    }

    #[test]
    fn metadata_records_root_alternation() {
        let mapped = emit_pattern("ab|cd");
        let meta = &mapped.meta;
        assert!(meta.has_prefix);
        assert!(meta.accept_partial);
        assert_eq!(meta.join_addr, 7);
        assert_eq!(meta.root_splits, vec![3]);
        assert_eq!(meta.root_branches.len(), 2);
        assert_eq!(meta.root_branches[0].range, (4, 7));
        assert_eq!(meta.root_branches[1].range, (8, 11));
    }

    #[test]
    fn pure_nested_groups_are_flagged() {
        let mapped = emit_pattern("^(a|(b|(c|d)))$");
        assert_eq!(mapped.meta.root_branches.len(), 1);
        let nested = mapped.meta.root_branches[0].nested;
        assert!(nested.is_some(), "{:?}", mapped.meta);
        let alt = &mapped.meta.alts[nested.unwrap()];
        assert_eq!(alt.branches.len(), 2);
        assert!(alt.branches[1].nested.is_some(), "inner (b|(c|d)) is pure too");
    }

    #[test]
    fn quantified_group_is_not_pure() {
        let mapped = emit_pattern("^(a|b)+$");
        assert_eq!(mapped.meta.root_branches[0].nested, None);
    }

    #[test]
    fn single_alternative_root() {
        let mapped = emit_pattern("abc");
        assert!(mapped.meta.root_splits.is_empty());
        assert_eq!(mapped.meta.root_branches.len(), 1);
        // prefix(3) + 3 matches, acceptance at 6.
        assert_eq!(mapped.meta.root_branches[0].range, (3, 6));
        assert_eq!(mapped.meta.join_addr, 6);
    }
}
