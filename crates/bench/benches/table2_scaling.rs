//! **Table 2** — average energy (W·µs) per RE execution on the old
//! multi-engine architecture: "the virtualized enumeration via
//! cross-engine load balancing stops scaling after 9 engines".
//!
//! Programs are compiled with the old compiler (Table 2 predates the new
//! flow). The reproduction target is the *shape*: energy falls from one
//! engine to the 4–9 knee, then rises as extra engines burn power without
//! adding useful parallelism.
//!
//! Besides the printed table, the driver exports the full telemetry —
//! per-run `sim.*` histograms plus one event per table row — as JSON
//! lines to `BENCH_telemetry.json` (override with
//! `CICERO_BENCH_TELEMETRY`, `-` for stdout, empty to disable).

use cicero_bench::{
    banner, f2, measure_with_telemetry, paper, suites, CompiledSuite, Scale, Table,
};
use cicero_sim::ArchConfig;
use cicero_telemetry::Telemetry;

fn main() {
    let scale = Scale::from_env();
    banner("Table 2", "energy per RE vs engine count (old architecture)", scale);
    let telemetry = Telemetry::new();
    let compiled: Vec<CompiledSuite> = suites(scale).iter().map(CompiledSuite::build).collect();

    let mut table = Table::new(vec![
        "Engine #".to_owned(),
        "PROTOMATA".to_owned(),
        "(paper)".to_owned(),
        "BRILL".to_owned(),
        "(paper)".to_owned(),
        "PROTOMATA4".to_owned(),
        "(paper)".to_owned(),
        "BRILL4".to_owned(),
        "(paper)".to_owned(),
    ]);
    let mut minima = [f64::INFINITY; 4];
    let mut minima_at = [0usize; 4];
    for (row, (name, paper_row)) in paper::TABLE2.iter().enumerate() {
        let engines = [1, 4, 9, 16, 32][row];
        let config = ArchConfig::old_organization(engines);
        let mut cells = vec![engines.to_string()];
        for (i, suite) in compiled.iter().enumerate() {
            let m = measure_with_telemetry(&suite.old_opt, &suite.chunks, &config, &telemetry);
            if m.avg_energy_wus < minima[i] {
                minima[i] = m.avg_energy_wus;
                minima_at[i] = engines;
            }
            cells.push(f2(m.avg_energy_wus));
            cells.push(format!("({})", f2(paper_row[i])));
        }
        let _ = name;
        table.row(cells);
    }
    table.print();
    println!();
    for (i, suite) in paper::SUITES.iter().enumerate() {
        println!("  {suite}: most efficient at {} engines (paper knee: 4-9 engines)", minima_at[i]);
    }

    table.record_into(&telemetry, "table2");
    let path = std::env::var("CICERO_BENCH_TELEMETRY")
        .unwrap_or_else(|_| "BENCH_telemetry.json".to_owned());
    if !path.is_empty() {
        match telemetry.write_jsonl_path(&path) {
            Ok(()) => println!("\n  telemetry (JSON lines) written to {path}"),
            Err(e) => eprintln!("  warning: could not write telemetry to {path}: {e}"),
        }
    }
}
