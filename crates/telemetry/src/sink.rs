//! Telemetry sinks: human-readable summary and JSON-lines export.

use std::fmt::Write as _;

use crate::json::JsonObject;
use crate::metrics::Metric;
use crate::Telemetry;

fn micros(d: std::time::Duration) -> f64 {
    // Round to nanosecond granularity so exported floats stay compact.
    (d.as_secs_f64() * 1e9).round() / 1e3
}

/// Render a human-readable report: indented span tree, then metrics,
/// then events.
pub fn render_summary(telemetry: &Telemetry) -> String {
    let inner = telemetry.lock();
    let mut out = String::new();

    if !inner.spans.is_empty() {
        out.push_str("spans:\n");
        let name_width = inner.spans.iter().map(|s| s.name.len() + 2 * s.depth).max().unwrap_or(0);
        for span in &inner.spans {
            let indent = "  ".repeat(span.depth);
            let label = format!("{indent}{}", span.name);
            let _ = write!(out, "  {label:<name_width$}  {:>10.1} us", micros(span.duration));
            if !span.closed {
                out.push_str("  (open)");
            }
            for (key, value) in &span.attrs {
                let _ = write!(out, "  {key}={value}");
            }
            out.push('\n');
        }
    }

    if !inner.metrics.is_empty() {
        out.push_str("metrics:\n");
        let name_width = inner.metrics.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, metric) in inner.metrics.iter() {
            match metric {
                Metric::Counter(total) => {
                    let _ = writeln!(out, "  {name:<name_width$}  counter    {total}");
                }
                Metric::Gauge(value) => {
                    let _ = writeln!(out, "  {name:<name_width$}  gauge      {value}");
                }
                Metric::Histogram(_) => {
                    // Re-borrow through the snapshot API for the derived stats.
                    let h = inner.metrics.histogram(name).expect("histogram exists");
                    let _ = writeln!(
                        out,
                        "  {name:<name_width$}  histogram  count={} min={} mean={:.1} max={}",
                        h.count,
                        h.min,
                        h.mean(),
                        h.max
                    );
                }
            }
        }
    }

    if !inner.events.is_empty() {
        out.push_str("events:\n");
        for (name, attrs) in &inner.events {
            let _ = write!(out, "  {name}");
            for (key, value) in attrs {
                let _ = write!(out, "  {key}={value}");
            }
            out.push('\n');
        }
    }

    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

/// Render the JSON-lines export: one self-describing object per line, in
/// the order spans → counters/gauges/histograms → events.
pub fn render_jsonl(telemetry: &Telemetry) -> String {
    let inner = telemetry.lock();
    let mut out = String::new();

    for span in &inner.spans {
        let mut obj = JsonObject::new()
            .field("type", "span")
            .field("name", span.name.as_str())
            .field("start_us", micros(span.start))
            .field("duration_us", micros(span.duration))
            .field("depth", span.depth);
        if !span.closed {
            obj = obj.field("open", true);
        }
        if !span.attrs.is_empty() {
            obj = obj.field_object("attrs", &span.attrs);
        }
        out.push_str(&obj.finish());
        out.push('\n');
    }

    for (name, metric) in inner.metrics.iter() {
        let line = match metric {
            Metric::Counter(total) => JsonObject::new()
                .field("type", "counter")
                .field("name", name)
                .field("value", *total)
                .finish(),
            Metric::Gauge(value) => JsonObject::new()
                .field("type", "gauge")
                .field("name", name)
                .field("value", *value)
                .finish(),
            Metric::Histogram(_) => {
                let h = inner.metrics.histogram(name).expect("histogram exists");
                let mut buckets = String::from("[");
                for (i, count) in h.bucket_counts.iter().enumerate() {
                    if i > 0 {
                        buckets.push(',');
                    }
                    let le =
                        h.bounds.get(i).map_or_else(|| "\"+inf\"".to_owned(), |b| format!("{b:?}"));
                    buckets.push_str(
                        &JsonObject::new().field_raw("le", &le).field("count", *count).finish(),
                    );
                }
                buckets.push(']');
                JsonObject::new()
                    .field("type", "histogram")
                    .field("name", name)
                    .field("count", h.count)
                    .field("sum", h.sum)
                    .field("min", h.min)
                    .field("max", h.max)
                    .field("mean", h.mean())
                    .field_raw("buckets", &buckets)
                    .finish()
            }
        };
        out.push_str(&line);
        out.push('\n');
    }

    for (name, attrs) in &inner.events {
        let mut obj = JsonObject::new().field("type", "event").field("name", name.as_str());
        if !attrs.is_empty() {
            obj = obj.field_object("attrs", attrs);
        }
        out.push_str(&obj.finish());
        out.push('\n');
    }

    out
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn histogram_jsonl_has_inf_overflow_bucket() {
        let t = Telemetry::new();
        t.observe_with("h", 2.0, &[1.0, 10.0]);
        let jsonl = t.render_jsonl();
        assert!(jsonl.contains(r#""le":"+inf""#), "{jsonl}");
        assert!(jsonl.contains(r#""le":1.0"#), "{jsonl}");
    }

    #[test]
    fn summary_marks_open_spans() {
        let t = Telemetry::new();
        let _open = t.span("still-running");
        let summary = t.render_summary();
        assert!(summary.contains("(open)"), "{summary}");
    }

    #[test]
    fn empty_collector_renders_placeholder() {
        let t = Telemetry::new();
        assert_eq!(t.render_summary(), "(no telemetry recorded)\n");
        assert_eq!(t.render_jsonl(), "");
    }
}
