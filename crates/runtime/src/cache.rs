//! LRU cache of compiled programs.
//!
//! Serving traffic repeats patterns: deep-packet rules are applied to
//! every packet, log-scan expressions to every shard. Compilation walks
//! the whole multi-dialect pass pipeline (parse → `regex` dialect passes →
//! lowering → Jump Simplification → codegen), which is pure overhead the
//! second time the same pattern arrives. The cache memoizes the finished
//! [`Program`] keyed by `(pattern, CompilerOptions)` — the options are
//! part of the key because every transformation toggle changes the emitted
//! code (that is the point of the paper's per-transformation flags).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use cicero_core::CompilerOptions;
use cicero_isa::Program;

/// Cache key: what was asked to be compiled, plus how.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    kind: KeyKind,
    options: CompilerOptions,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyKind {
    /// A single pattern.
    Pattern(String),
    /// A multi-matching set (order matters: it determines the reported
    /// match identifiers).
    Set(Vec<String>),
}

impl CacheKey {
    /// Key for one pattern compiled with `options`.
    pub fn pattern(pattern: &str, options: CompilerOptions) -> CacheKey {
        CacheKey { kind: KeyKind::Pattern(pattern.to_owned()), options }
    }

    /// Key for a multi-matching set compiled with `options`.
    pub fn set<S: AsRef<str>>(patterns: &[S], options: CompilerOptions) -> CacheKey {
        CacheKey {
            kind: KeyKind::Set(patterns.iter().map(|p| p.as_ref().to_owned()).collect()),
            options,
        }
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (1.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner {
    capacity: usize,
    entries: HashMap<CacheKey, Arc<Program>>,
    /// Keys in least-recently-used-first order.
    order: Vec<CacheKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe LRU cache of compiled programs.
///
/// Shared by every worker and every front-end thread of a
/// [`Runtime`](crate::Runtime); lookups and insertions take one short
/// mutex hold, while compilation itself runs outside the lock (two racing
/// misses may both compile, the second insert winning — compilation is
/// deterministic, so both produce the same program).
pub struct ProgramCache {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ProgramCache")
            .field("entries", &stats.entries)
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl ProgramCache {
    /// An empty cache holding at most `capacity` programs (minimum 1).
    pub fn new(capacity: usize) -> ProgramCache {
        ProgramCache {
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                entries: HashMap::new(),
                order: Vec::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Look up `key`, or compile it with `build` and insert the result.
    ///
    /// Returns the program and whether the lookup was a hit.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is inserted on failure.
    pub fn get_or_insert_with<E>(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<Program, E>,
    ) -> Result<(Arc<Program>, bool), E> {
        {
            let mut inner = self.lock();
            if let Some(program) = inner.entries.get(&key).cloned() {
                inner.hits += 1;
                // Refresh recency: move the key to most-recent.
                inner.order.retain(|k| *k != key);
                inner.order.push(key);
                return Ok((program, true));
            }
            inner.misses += 1;
        }
        // Compile outside the lock: patterns can take a while and other
        // requests must not serialize behind them.
        let program = Arc::new(build()?);
        let mut inner = self.lock();
        if !inner.entries.contains_key(&key) {
            while inner.entries.len() >= inner.capacity {
                let oldest = inner.order.remove(0);
                inner.entries.remove(&oldest);
                inner.evictions += 1;
            }
            inner.entries.insert(key.clone(), program.clone());
            inner.order.push(key);
        }
        Ok((program, false))
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            capacity: inner.capacity,
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cicero_isa::Instruction;

    fn tiny_program(ch: u8) -> Program {
        Program::from_instructions(vec![Instruction::Match(ch), Instruction::Accept]).unwrap()
    }

    fn key(pattern: &str) -> CacheKey {
        CacheKey::pattern(pattern, CompilerOptions::optimized())
    }

    #[test]
    fn second_lookup_hits_and_skips_the_builder() {
        let cache = ProgramCache::new(4);
        let (first, hit) =
            cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
        assert!(!hit);
        let (second, hit) =
            cache.get_or_insert_with::<()>(key("a"), || panic!("must not recompile")).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let cache = ProgramCache::new(4);
        let opt = CacheKey::pattern("a", CompilerOptions::optimized());
        let unopt = CacheKey::pattern("a", CompilerOptions::unoptimized());
        cache.get_or_insert_with::<()>(opt, || Ok(tiny_program(b'a'))).unwrap();
        let (_, hit) = cache.get_or_insert_with::<()>(unopt, || Ok(tiny_program(b'a'))).unwrap();
        assert!(!hit, "different options must not share an entry");
    }

    #[test]
    fn set_keys_are_order_sensitive_and_distinct_from_patterns() {
        let opts = CompilerOptions::optimized();
        assert_ne!(CacheKey::set(&["a", "b"], opts), CacheKey::set(&["b", "a"], opts));
        assert_ne!(CacheKey::set(&["a"], opts), CacheKey::pattern("a", opts));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ProgramCache::new(2);
        cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
        cache.get_or_insert_with::<()>(key("b"), || Ok(tiny_program(b'b'))).unwrap();
        // Touch "a" so "b" becomes the LRU entry.
        cache.get_or_insert_with::<()>(key("a"), || panic!("cached")).unwrap();
        cache.get_or_insert_with::<()>(key("c"), || Ok(tiny_program(b'c'))).unwrap();
        let (_, hit_a) =
            cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
        assert!(hit_a, "recently used entry survived");
        let (_, hit_b) =
            cache.get_or_insert_with::<()>(key("b"), || Ok(tiny_program(b'b'))).unwrap();
        assert!(!hit_b, "LRU entry was evicted");
        assert_eq!(cache.stats().evictions, 2, "c evicted b, then b evicted c");
    }

    /// With a single slot, every distinct key evicts the previous entry,
    /// while repeated lookups of the resident key keep hitting. Also pins
    /// the constructor's clamp: capacity 0 still holds one entry.
    #[test]
    fn capacity_one_keeps_only_the_latest_entry() {
        for requested in [0usize, 1] {
            let cache = ProgramCache::new(requested);
            assert_eq!(cache.stats().capacity, 1, "capacity clamps to >= 1");
            cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
            let (_, hit) = cache.get_or_insert_with::<()>(key("a"), || panic!("cached")).unwrap();
            assert!(hit);
            // A second key evicts the first…
            cache.get_or_insert_with::<()>(key("b"), || Ok(tiny_program(b'b'))).unwrap();
            assert_eq!(cache.stats().entries, 1);
            let (_, hit) =
                cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
            assert!(!hit, "the single slot now holds `b`");
            // …and re-requesting the first evicts the second right back.
            let (_, hit) =
                cache.get_or_insert_with::<()>(key("b"), || Ok(tiny_program(b'b'))).unwrap();
            assert!(!hit);
            assert_eq!(cache.stats().evictions, 3);
        }
    }

    /// Evictions happen strictly in least-recently-*used* order — a hit
    /// refreshes recency, an insert counts as a use, and untouched entries
    /// leave in insertion order.
    #[test]
    fn eviction_follows_exact_lru_order() {
        let cache = ProgramCache::new(3);
        for pattern in ["a", "b", "c"] {
            cache
                .get_or_insert_with::<()>(key(pattern), || Ok(tiny_program(pattern.as_bytes()[0])))
                .unwrap();
        }
        // Recency order is now a < b < c; touching `a` makes it b < c < a.
        cache.get_or_insert_with::<()>(key("a"), || panic!("cached")).unwrap();
        // Each insert evicts exactly the current LRU entry: d evicts b,
        // e evicts c.
        cache.get_or_insert_with::<()>(key("d"), || Ok(tiny_program(b'd'))).unwrap();
        cache.get_or_insert_with::<()>(key("e"), || Ok(tiny_program(b'e'))).unwrap();
        // Probe hits first: a missing probe inserts (and evicts), so the
        // resident keys must be confirmed before the evicted ones.
        for (pattern, resident) in
            [("a", true), ("d", true), ("e", true), ("b", false), ("c", false)]
        {
            let (_, hit) = cache
                .get_or_insert_with::<()>(key(pattern), || Ok(tiny_program(pattern.as_bytes()[0])))
                .unwrap();
            assert_eq!(hit, resident, "residency of {pattern:?}");
        }
    }

    /// A cached program is *the same artifact* as a fresh compile: equal
    /// instruction stream (the ISA types implement `Eq`) and identical
    /// encoded bytes. This is what makes the cache transparent to every
    /// downstream consumer.
    #[test]
    fn cache_hit_is_byte_identical_to_a_fresh_compile() {
        let pattern = "th(is|at|ose)|x[0-9]{2,4}$";
        let cache = ProgramCache::new(2);
        let compile = || {
            cicero_core::Compiler::with_options(CompilerOptions::optimized())
                .compile(pattern)
                .map(|c| c.into_program())
                .map_err(|e| e.to_string())
        };
        cache.get_or_insert_with(key(pattern), compile).unwrap();
        let (cached, hit) =
            cache.get_or_insert_with::<String>(key(pattern), || panic!("cached")).unwrap();
        assert!(hit);
        let fresh = compile().unwrap();
        assert_eq!(*cached, fresh, "instruction streams must be equal");
        assert_eq!(cached.instructions(), fresh.instructions());
        assert_eq!(
            cicero_isa::EncodedProgram::from_program(&cached).to_bytes(),
            cicero_isa::EncodedProgram::from_program(&fresh).to_bytes(),
            "encoded binaries must be byte-identical"
        );
    }

    #[test]
    fn build_errors_insert_nothing() {
        let cache = ProgramCache::new(2);
        let err = cache.get_or_insert_with(key("bad"), || Err("boom")).unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(cache.stats().entries, 0);
        let (_, hit) =
            cache.get_or_insert_with::<()>(key("bad"), || Ok(tiny_program(b'x'))).unwrap();
        assert!(!hit);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = ProgramCache::new(2);
        cache.get_or_insert_with::<()>(key("a"), || Ok(tiny_program(b'a'))).unwrap();
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 1);
    }
}
