//! Property-based tests over random patterns and inputs.
//!
//! The pattern strategy generates only the supported grammar; inputs are
//! drawn over a small alphabet that overlaps the patterns', so matches
//! actually occur. Each property is the load-bearing invariant of one
//! pipeline stage.

use proptest::prelude::*;

/// Strategy: a random supported pattern (as text).
fn pattern_strategy() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        4 => prop::char::range('a', 'e').prop_map(|c| c.to_string()),
        1 => Just(".".to_owned()),
        1 => prop::collection::vec(prop::char::range('a', 'f'), 1..4).prop_map(|cs| {
            let mut s = String::from("[");
            let negate = cs.len() == 3; // mix in some negated classes
            if negate {
                s.push('^');
            }
            for c in cs {
                s.push(c);
            }
            s.push(']');
            s
        }),
    ];
    let quantified = (
        atom,
        prop_oneof![
            5 => Just(String::new()),
            1 => Just("*".to_owned()),
            1 => Just("+".to_owned()),
            1 => Just("?".to_owned()),
            1 => (0u32..3, 1u32..3).prop_map(|(lo, extra)| format!("{{{lo},{}}}", lo + extra)),
        ],
    )
        .prop_map(|(a, q)| format!("{a}{q}"));
    let concat = prop::collection::vec(quantified, 1..5).prop_map(|ps| ps.concat());
    let alternation = prop::collection::vec(concat, 1..4).prop_map(|cs| cs.join("|"));
    // One level of grouping.
    let grouped =
        (alternation.clone(), prop::bool::ANY).prop_map(
            |(a, wrap)| {
                if wrap {
                    format!("x({a})y")
                } else {
                    a
                }
            },
        );
    grouped.prop_filter("pattern must parse", |p| regex_frontend::parse(p).is_ok())
}

fn input_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::num::u8::ANY.prop_map(|b| b'a' + b % 8), 0..30)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Both compilers, at both optimization levels, accept exactly the
    /// inputs the reference Pike VM accepts.
    #[test]
    fn compilers_match_oracle(pattern in pattern_strategy(), input in input_strategy()) {
        let oracle = regex_oracle::Oracle::new(&pattern).unwrap();
        let expected = oracle.is_match(&input);
        let new_opt = cicero_core::compile(&pattern).unwrap().into_program();
        let new_unopt = cicero_core::Compiler::with_options(
            cicero_core::CompilerOptions::unoptimized(),
        )
        .compile(&pattern)
        .unwrap()
        .into_program();
        let old_opt = cicero_legacy::LegacyCompiler::new(true).compile(&pattern).unwrap();
        let old_unopt = cicero_legacy::LegacyCompiler::new(false).compile(&pattern).unwrap();
        for (name, program) in [
            ("new O1", &new_opt),
            ("new O0", &new_unopt),
            ("old O1", &old_opt),
            ("old O0", &old_unopt),
        ] {
            prop_assert_eq!(
                cicero_isa::accepts(program, &input),
                expected,
                "{} disagreed on {:?} / {:?}",
                name,
                &pattern,
                String::from_utf8_lossy(&input)
            );
        }
    }

    /// The cycle-level simulator gives the interpreter's verdict on both
    /// organizations.
    #[test]
    fn simulator_matches_interpreter(pattern in pattern_strategy(), input in input_strategy()) {
        let program = cicero_core::compile(&pattern).unwrap().into_program();
        let expected = cicero_isa::accepts(&program, &input);
        for config in [
            cicero_sim::ArchConfig::old_organization(2),
            cicero_sim::ArchConfig::new_organization(8, 1),
        ] {
            let report = cicero_sim::simulate(&program, &input, &config);
            prop_assert!(!report.hit_cycle_limit);
            prop_assert_eq!(report.accepted, expected, "{}", config.name());
        }
    }

    /// Chunk-split invariance: feeding the input in arbitrary chunks to
    /// the resumable matchers gives byte-identical results to matching the
    /// whole input at once — for the functional interpreter and for the
    /// cycle-level simulator on both organizations.
    #[test]
    fn streaming_is_chunk_split_invariant(
        pattern in pattern_strategy(),
        input in input_strategy(),
        splits in prop::collection::vec(0usize..30, 0..6),
    ) {
        let program = cicero_core::compile(&pattern).unwrap().into_program();
        let chunks = cicero_difftest::apply_splits(&input, &splits);
        let whole = cicero_isa::run(&program, &input);
        let streamed = cicero_isa::run_chunked(&program, chunks.iter().map(Vec::as_slice));
        prop_assert_eq!(
            streamed,
            whole,
            "interpreter diverges on {:?} split at {:?}",
            &pattern,
            &splits
        );
        for config in [
            cicero_sim::ArchConfig::old_organization(2),
            cicero_sim::ArchConfig::new_organization(8, 1),
        ] {
            let whole = cicero_sim::simulate(&program, &input, &config);
            let streamed = cicero_sim::simulate_streaming(
                &program,
                chunks.iter().map(Vec::as_slice),
                &config,
            );
            prop_assert_eq!(
                streamed,
                whole,
                "simulator {} diverges on {:?} split at {:?}",
                config.name(),
                &pattern,
                &splits
            );
        }
    }

    /// Jump Simplification never increases code size: its rules only
    /// delete (jump-to-next, dead code) or replace in place (threading,
    /// acceptance duplication). `D_offset` improves in aggregate
    /// (Figure 10, checked by the fig10 bench) but not pointwise — jump
    /// threading can trade two short hops for one long one, e.g. on
    /// `x(a?|a*)y`.
    #[test]
    fn jump_simplification_never_grows_code(pattern in pattern_strategy()) {
        let unopt = cicero_core::Compiler::with_options(
            cicero_core::CompilerOptions::unoptimized(),
        )
        .compile(&pattern)
        .unwrap();
        let mut only_js = cicero_core::CompilerOptions::unoptimized();
        only_js.jump_simplification = true;
        let js = cicero_core::Compiler::with_options(only_js).compile(&pattern).unwrap();
        prop_assert!(js.code_size() <= unopt.code_size());
    }

    /// The compiled binary round-trips through the 16-bit wire encoding.
    #[test]
    fn binary_roundtrip(pattern in pattern_strategy()) {
        let program = cicero_core::compile(&pattern).unwrap().into_program();
        let bytes = cicero_isa::EncodedProgram::from_program(&program).to_bytes();
        let back = cicero_isa::EncodedProgram::from_bytes(&bytes).unwrap().decode().unwrap();
        prop_assert_eq!(back, program);
    }

    /// The mlir-lite textual printer/parser round-trips the regex IR.
    #[test]
    fn ir_text_roundtrip(pattern in pattern_strategy()) {
        let ast = regex_frontend::parse(&pattern).unwrap();
        let ir = regex_dialect::ast_to_ir(&ast);
        let reparsed = mlir_lite::parse(&ir.to_text()).unwrap();
        prop_assert_eq!(reparsed, ir);
    }

    /// `ir_to_ast` inverts `ast_to_ir` up to oracle equivalence.
    #[test]
    fn ast_ir_ast_equivalence(pattern in pattern_strategy(), input in input_strategy()) {
        let ast = regex_frontend::parse(&pattern).unwrap();
        let ir = regex_dialect::ast_to_ir(&ast);
        let back = regex_dialect::ir_to_ast(&ir);
        let a = regex_oracle::Oracle::from_ast(&ast);
        let b = regex_oracle::Oracle::from_ast(&back);
        prop_assert_eq!(a.is_match(&input), b.is_match(&input));
    }
}

/// Strategy: arbitrary *valid* ISA programs (not necessarily compiler
/// output) — stresses the simulator's semantics directly, including shapes
/// the compilers never emit (split chains into jumps, NotMatch loops…).
fn program_strategy() -> impl Strategy<Value = cicero_isa::Program> {
    use cicero_isa::Instruction;
    prop::collection::vec(0u8..7, 1..32).prop_flat_map(|kinds| {
        let len = kinds.len() + 1; // +1 for the forced terminator
        let targets = prop::collection::vec(0..len as u16, kinds.len());
        let chars =
            prop::collection::vec(prop::num::u8::ANY.prop_map(|b| b'a' + b % 4), kinds.len());
        (Just(kinds), targets, chars).prop_map(move |(kinds, targets, chars)| {
            let mut instructions: Vec<Instruction> = kinds
                .iter()
                .zip(&targets)
                .zip(&chars)
                .map(|((kind, target), c)| match kind {
                    0 => Instruction::MatchAny,
                    1 => Instruction::Match(*c),
                    2 => Instruction::NotMatch(*c),
                    3 => Instruction::Split(*target),
                    4 => Instruction::Jump(*target),
                    5 => Instruction::Accept,
                    _ => Instruction::AcceptPartialId(u16::from(*c)),
                })
                .collect();
            instructions.push(Instruction::AcceptPartial);
            cicero_isa::Program::from_instructions(instructions).expect("targets in range")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The cycle-level machine implements exactly the ISA interpreter's
    /// semantics for arbitrary valid programs, on both organizations.
    #[test]
    fn simulator_matches_interpreter_on_arbitrary_programs(
        program in program_strategy(),
        input in prop::collection::vec(prop::num::u8::ANY.prop_map(|b| b'a' + b % 4), 0..24),
    ) {
        let expected = cicero_isa::run(&program, &input);
        for config in [
            cicero_sim::ArchConfig::old_organization(1),
            cicero_sim::ArchConfig::old_organization(3),
            cicero_sim::ArchConfig::new_organization(4, 1),
            cicero_sim::ArchConfig::new_organization(8, 2),
        ] {
            let report = cicero_sim::simulate(&program, &input, &config);
            prop_assert!(!report.hit_cycle_limit, "{}", config.name());
            prop_assert_eq!(report.accepted, expected.accepted, "{}", config.name());
        }
    }

    /// The front-end never panics, whatever bytes it is fed.
    #[test]
    fn frontend_is_panic_free(pattern in "\\PC*") {
        let _ = regex_frontend::parse(&pattern);
    }

    /// Whenever the new front-end accepts a pattern, the legacy one agrees
    /// (and vice versa) — the compilers share one input language.
    #[test]
    fn frontends_accept_the_same_language(pattern in "[-a-e().|*+?{}\\[\\]^$\\\\0-9]{0,12}") {
        let new = regex_frontend::parse(&pattern).is_ok();
        let old = cicero_legacy::parser::parse(&pattern).is_ok();
        prop_assert_eq!(new, old, "pattern {:?}", &pattern);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The host-native backend gives the Pike-VM oracle's verdict *and*
    /// earliest match end over the full supported grammar, at both
    /// optimization levels — whichever engine tier (bit64 / bit128 /
    /// lazy-DFA) the program selects. The host engine is held to the
    /// oracle's single answer, not just any-match agreement.
    #[test]
    fn host_engine_matches_oracle(pattern in pattern_strategy(), input in input_strategy()) {
        let oracle = regex_oracle::Oracle::new(&pattern).unwrap();
        let want = oracle.is_match(&input);
        let want_end = oracle.match_end(&input);
        let opt = cicero_core::compile(&pattern).unwrap().into_program();
        let unopt = cicero_core::Compiler::with_options(
            cicero_core::CompilerOptions::unoptimized(),
        )
        .compile(&pattern)
        .unwrap()
        .into_program();
        for (level, program) in [("O2", &opt), ("O0", &unopt)] {
            let host = cicero::hostexec::HostProgram::compile(program);
            let outcome = host.run(&input);
            prop_assert_eq!(
                outcome.accepted,
                want,
                "host {} verdict diverged from oracle on {:?} / {:?} ({})",
                level,
                &pattern,
                String::from_utf8_lossy(&input),
                host.engine_kind()
            );
            prop_assert_eq!(
                outcome.match_position,
                want_end,
                "host {} match end diverged from oracle on {:?} / {:?} ({})",
                level,
                &pattern,
                String::from_utf8_lossy(&input),
                host.engine_kind()
            );
        }
    }

    /// On multi-pattern sets, the host engine's `run_all` reports the
    /// byte-identical per-pattern id set (and verdict) the interpreter
    /// reports — the invariant the server's `/scan` endpoint relies on
    /// when it swaps backends per request.
    #[test]
    fn host_run_all_matches_interpreter_on_sets(
        patterns in prop::collection::vec(pattern_strategy(), 1..4),
        input in input_strategy(),
    ) {
        let set = cicero_core::Compiler::new().compile_set(&patterns).unwrap();
        let program = set.program();
        let want = cicero_isa::run_all(program, &input);
        let host = cicero::hostexec::HostProgram::compile(program);
        let got = host.run_all(&input);
        prop_assert_eq!(
            got.accepted,
            want.accepted,
            "set verdict diverged on {:?} / {:?} ({})",
            &patterns,
            String::from_utf8_lossy(&input),
            host.engine_kind()
        );
        prop_assert_eq!(
            &got.matched_ids,
            &want.matched_ids,
            "per-pattern id sets diverged on {:?} / {:?} ({})",
            &patterns,
            String::from_utf8_lossy(&input),
            host.engine_kind()
        );
    }
}
