//! `cicero` — command-line front door to the workspace.
//!
//! ```text
//! cicero compile <pattern> [--old] [-O0] [--emit asm|bin|regex-ir|cicero-ir] [-o FILE]
//! cicero run     <pattern> [--text STR | --input FILE] [--config NxM] [--old] [-O0]
//!                [--jobs N] [--backend sim|host]
//! cicero scan    <pattern>... (--text STR | --input FILE) [--config NxM] [--jobs N]
//!                [--backend sim|host] [--stream] [--chunk-size N] [--fuel N]
//!                [--deadline-ms N]
//! cicero serve   [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!                [--drain-timeout-ms N] [--config NxM] [--jobs N] [--backend sim|host]
//!                [--trace-dump PATH] [--slow-trace-ms N] [--trace-capacity N]
//!                [--ruleset-dir PATH] [--tenant-quota N] [--tenant-rate R]
//!                [--tenant-burst B]
//! cicero ruleset put <id> <p1> <p2> ... [--addr HOST:PORT]
//! cicero ruleset get|rm <id> [--addr HOST:PORT]
//! cicero ruleset list [--addr HOST:PORT]
//! cicero trace   <pattern>... (--text STR | --input FILE) [--config NxM] [--jobs N]
//!                [--export tree|json|chrome] [-o FILE] [--request-id ID]
//! cicero tune    (--workload PACK | <pattern>...) [--budget N|Nms] [--seed N]
//!                [--out FILE] [--cost sim|host] [--space full|compiler]
//! cicero explain <pattern>
//! cicero configs
//! cicero difftest [--seed N] [--iters K] [--jobs J] [--corpus DIR] [--save]
//! ```
//!
//! `--config NxM` uses the paper's naming: `1x9` is the old organization
//! with nine engines, `16x1` the proposed one with sixteen cores.
//!
//! `cicero <pattern> ...` (no subcommand) is shorthand for `cicero run`.
//!
//! `--jobs N` switches `run`/`scan` to the parallel batch runtime: the
//! input is split into 500-byte chunks (the paper's §6 methodology) and
//! matched chunk-by-chunk on a pool of `N` workers (`auto` = all host
//! cores; a literal `0` is rejected as ambiguous), with the compiled
//! program served from the runtime's LRU cache.
//!
//! `--backend host` executes on the host-native bit-parallel NFA engine
//! (`cicero-hostexec`) instead of the cycle-level simulator: same
//! verdicts and match positions, no cycle model, wall-clock throughput
//! instead. `run`/`scan` default to `sim`; `serve` defaults to `host`
//! with the simulator still selectable per request via the
//! `X-Cicero-Backend` header.
//!
//! `scan --stream` switches to the streaming runtime: the input is read
//! chunk by chunk (`--chunk-size N` bytes, default 64 KiB) through a
//! bounded queue, so a file of any size is matched in O(chunk + machine
//! window) memory with a verdict byte-identical to the whole-input scan.
//! `--fuel N` caps simulated cycles and `--deadline-ms N` caps wall-clock
//! time; exceeding either concludes the session with a clean budget
//! error instead of a hang.
//!
//! `serve` starts the std-only HTTP front door (`crates/server`): `POST
//! /match`, `POST /scan`, `GET /metrics`, `GET /healthz`, the
//! `PUT/GET/DELETE /rulesets/{id}` registry, and `POST /shutdown` for a
//! graceful drain. It prints one `listening on ADDR` line at startup
//! (so `--addr host:0` ephemeral ports are discoverable), and exits `0`
//! only when the drain completed within `--drain-timeout-ms`.
//! `--ruleset-dir` persists installed rulesets and restores them on the
//! next start; `--tenant-quota`/`--tenant-rate`/`--tenant-burst` turn
//! on per-`X-Cicero-Tenant` admission limits.
//!
//! `cicero ruleset put|get|rm|list` manages that registry on a *running*
//! server over HTTP (default `--addr 127.0.0.1:8787`): a `put` over an
//! existing id hot-swaps it atomically with zero downtime. `scan
//! --ruleset ID` ships the input to the server (`POST /scan/stream`) so
//! the CLI matches against exactly the version the server is serving.
//!
//! `tune` searches pass orderings × architecture/runtime parameters for
//! the lowest-cost configuration on a workload (docs/TUNING.md) and
//! writes the winner to a strictly-validated `tune.toml`; `run`, `scan`,
//! and `serve` load one via `--tuned-config` (explicit flags still win,
//! and a file that fails validation aborts the command — `serve`
//! refuses to start).
//!
//! A `--` separator ends flag parsing; everything after it is positional,
//! which is how patterns beginning with `-` are expressed
//! (`cicero run --text a-b -- '-b'`).
//!
//! Observability: `--pass-timing` prints the per-pass timing table, and
//! `--metrics PATH` (with `--metrics-format summary|jsonl`) exports the
//! unified telemetry — compiler pass spans plus simulator histograms — to
//! a file, or to stdout when PATH is `-`.

use std::io::Write as _;
use std::process::ExitCode;

use cicero::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("ruleset") => cmd_ruleset(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("configs") => cmd_configs(),
        Some("difftest") => cmd_difftest(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        // `cicero <pattern> [flags]` is shorthand for `cicero run`; the
        // `--` form covers patterns that start with a dash.
        Some(other) if !other.starts_with('-') || other == "--" => cmd_run(&args),
        Some(other) => Err(format!("unknown flag `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cicero - regex-to-DSA compiler and cycle-level simulator

USAGE:
    cicero compile <pattern> [--old] [-O0|--O0] [--emit KIND] [-o|--output FILE]
                   [--pass-timing]
    cicero run     <pattern> [--text STR | --input FILE] [--config NxM] [--old] [-O0]
                   [--jobs N] [--backend sim|host] [--pass-timing] [--metrics PATH]
                   [--metrics-format FORMAT]
    cicero scan    <p1> <p2> ... (--text STR | --input FILE) [--config NxM] [--jobs N]
                   [--backend sim|host] [--stream] [--chunk-size N] [--fuel N]
                   [--deadline-ms N]
    cicero scan    --ruleset ID (--text STR | --input FILE) [--addr HOST:PORT]
                   [--backend sim|host] [--chunk-size N] [--fuel N] [--deadline-ms N]
    cicero serve   [--addr HOST:PORT] [--workers N] [--queue-depth N]
                   [--drain-timeout-ms N] [--config NxM] [--jobs N] [--backend sim|host]
                   [--metrics PATH] [--metrics-format FORMAT]
                   [--trace-dump PATH] [--slow-trace-ms N] [--trace-capacity N]
                   [--ruleset-dir PATH] [--tenant-quota N] [--tenant-rate R]
                   [--tenant-burst B]
    cicero ruleset put <id> <p1> <p2> ... [--addr HOST:PORT]
    cicero ruleset get|rm <id> [--addr HOST:PORT]
    cicero ruleset list [--addr HOST:PORT]
    cicero trace   <p1> <p2> ... (--text STR | --input FILE) [--config NxM]
                   [--jobs N] [--export tree|json|chrome] [-o|--output FILE]
                   [--request-id ID] [--fuel N] [--deadline-ms N]
    cicero tune    (--workload PACK | <p1> <p2> ...) [--budget N|Nms] [--seed N]
                   [--out FILE] [--cost sim|host] [--space full|compiler]
                   [--metrics PATH] [--metrics-format FORMAT]
    cicero explain <pattern>
    cicero configs
    cicero difftest [--seed N] [--iters K] [--jobs J] [--corpus DIR] [--save]
                    [--stream-splits K] [--no-replay] [--metrics PATH]
                    [--metrics-format FORMAT]
    cicero <pattern> [run flags]      shorthand for `cicero run` (empty input
                                      unless --text/--input is given)

A `--` ends flag parsing: every later argument is positional, so patterns
beginning with `-` are written e.g. `cicero run --text a-b -- '-b'`.

EMIT KINDS:
    asm        address-annotated assembly (default)
    bin        16-bit little-endian binary words
    regex-ir   high-level regex dialect after optimizations
    cicero-ir  low-level cicero dialect after Jump Simplification

OPTIONS:
    --old             use the legacy single-IR compiler (Code Restructuring)
    -O0, --O0         disable optimizations
    -o, --output FILE write `--emit` output to FILE instead of stdout
    --config          architecture: 1xM = old organization, Nx1/NxM = new (default 16x1)
    --jobs N          batch mode: split the input into 500-byte chunks and match
                      them on N runtime workers (N >= 1, or `auto` for all host
                      cores; a literal 0 is rejected as ambiguous)
    --backend KIND    `sim` runs the cycle-level DSA simulator, `host` the
                      host-native bit-parallel NFA engine. run/scan default to
                      sim (they report cycle counts); serve defaults to host
                      (requests can still pick with X-Cicero-Backend)
    --stream          scan: stream the input chunk by chunk in bounded memory
                      (byte-identical verdict to a whole-input scan); not
                      combinable with --jobs
    --chunk-size N    scan --stream: bytes read per chunk (default 65536;
                      must be at least 1)
    --fuel N          scan --stream: cap the session at N simulated cycles;
                      exceeding it exits with a budget error
    --deadline-ms N   scan --stream: cap the session at N milliseconds of
                      wall-clock time; exceeding it exits with a budget error
    --ruleset ID      scan: skip local compilation and ship the input to a
                      running server's registry ruleset ID instead (`POST
                      /scan/stream`); the response carries the version that
                      served it
    --addr HOST:PORT  serve: listen address (default 127.0.0.1:8787; port 0
                      binds an ephemeral port, printed as `listening on ADDR`);
                      ruleset / scan --ruleset: the server to contact
                      (default 127.0.0.1:8787, the serve default)
    --ruleset-dir PATH
                      serve: persist installed rulesets under PATH and restore
                      them (hash-verified) on the next start, so hot swaps
                      survive restarts
    --tenant-quota N  serve: max in-flight requests per X-Cicero-Tenant;
                      beyond it requests get 429 + Retry-After (0 = no quota,
                      the default)
    --tenant-rate R   serve: sustained admissions/second per tenant via a
                      token bucket (0 = no rate limit, the default)
    --tenant-burst B  serve: token-bucket capacity — how large a burst a
                      freshly idle tenant may send (clamped to >= 1 when
                      --tenant-rate is on)
    --workers N       serve: connection-handler threads (default 4)
    --queue-depth N   serve: bound on accepted-but-unserved connections; beyond
                      it new connections get 503 + Retry-After (default 64)
    --drain-timeout-ms N
                      serve: how long shutdown waits for queued + in-flight
                      requests before giving up (default 5000)
    --trace-dump PATH serve: on graceful drain, dump the flight recorder's
                      retained request traces to PATH as Chrome trace_event
                      JSON (loadable in Perfetto / chrome://tracing)
    --slow-trace-ms N serve: requests at or above N ms are retained in the
                      recorder's separate slow ring (default 250)
    --trace-capacity N
                      serve: how many recent request traces the flight
                      recorder retains (default 64)
    --export KIND     trace: rendering — `tree` (indented text, default),
                      `json` (span-tree JSON), or `chrome` (trace_event JSON
                      for Perfetto); `-o FILE` writes it to a file
    --request-id ID   trace: the request id stamped on the trace
                      (default cli-trace)
    --workload PACK   tune: a named workload pack (protomata, brill,
                      protomata4, brill4); positional patterns build a custom
                      workload with synthesized inputs instead
    --budget SPEC     tune: `N` caps cost-model evaluations (deterministic,
                      default 24); `Nms` caps wall-clock milliseconds
                      (machine-dependent)
    --out FILE        tune: where the winning config is written
                      (default tune.toml)
    --cost KIND       tune: `sim` scores by simulated cycles + icache misses
                      (default, reproducible); `host` scores by host
                      wall-clock (nondeterministic)
    --space KIND      tune: `full` searches pass orders x machines x cache
                      geometries x host tiers x runtime knobs (default);
                      `compiler` restricts to pass orderings only
    --tuned-config FILE
                      run/scan/serve: load a `cicero tune` result and use its
                      compiler, architecture, and runtime settings as the
                      defaults; explicit flags (--config, --jobs, --backend,
                      -O0) still win, and a file that fails validation aborts
                      the command (serve refuses to start)
    --seed N          difftest: base seed (default 42); the run is reproducible
                      for a fixed (seed, iters, jobs)
    --iters K         difftest: number of generated patterns (default 1000)
    --corpus DIR      difftest: regression corpus directory (default the
                      committed crates/difftest/corpus)
    --stream-splits K difftest: randomized chunk-split vectors per pattern on the
                      streaming axis (default 1), on top of the deterministic
                      all-1-byte and middle splits every case gets
    --save            difftest: write each minimized divergence into the corpus
    --no-replay       difftest: skip the corpus replay before fuzzing
    --pass-timing     print the per-pass timing table (time, %, op-count delta)
    --metrics PATH    export telemetry (pass spans + simulator histograms +
                      runtime counters) to PATH, or to stdout when PATH is `-`
    --metrics-format  `summary` (human-readable, default) or `jsonl` (one JSON
                      object per line)
";

/// Minimal flag scanner: returns (positional args, flag lookup).
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, Option<String>)>,
}

fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<Flags, String> {
    let mut positional = Vec::new();
    let mut pairs: Vec<(String, Option<String>)> = Vec::new();
    // A value-taking flag given twice is rejected, not last-one-wins:
    // `--jobs 2 --jobs 4` is almost always a script bug, and silently
    // dropping one of the values hides it.
    let push_value = |pairs: &mut Vec<(String, Option<String>)>,
                      name: &str,
                      value: String|
     -> Result<(), String> {
        if pairs.iter().any(|(n, v)| n == name && v.is_some()) {
            return Err(format!(
                "--{name} given more than once; value-taking flags accept a single value"
            ));
        }
        pairs.push((name.to_owned(), Some(value)));
        Ok(())
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == "--" {
            // Everything after the separator is positional, dashes and
            // all — the only way to express patterns like `-a+`.
            positional.extend(iter.cloned());
            break;
        }
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value =
                    iter.next().ok_or_else(|| format!("--{name} requires a value"))?.clone();
                push_value(&mut pairs, name, value)?;
            } else if bool_flags.contains(&name) {
                pairs.push((name.to_owned(), None));
            } else {
                return Err(format!("unknown flag `--{name}`\n\n{USAGE}"));
            }
        } else if arg == "-O0" {
            pairs.push(("O0".to_owned(), None));
        } else if arg == "-o" {
            let value = iter.next().ok_or("-o requires a file name")?.clone();
            // `-o` and `--output` are one flag; doubling up across the
            // two spellings is rejected like any other duplicate.
            push_value(&mut pairs, "output", value)?;
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Flags { positional, pairs })
}

impl Flags {
    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }
}

fn parse_config(spec: Option<&str>) -> Result<ArchConfig, String> {
    let spec = spec.unwrap_or("16x1");
    let (n, m) =
        spec.split_once('x').ok_or_else(|| format!("config `{spec}` is not of the form NxM"))?;
    let n: usize = n.parse().map_err(|_| format!("bad core count in `{spec}`"))?;
    let m: usize = m.parse().map_err(|_| format!("bad engine count in `{spec}`"))?;
    if n == 1 {
        Ok(ArchConfig::old_organization(m))
    } else if n.is_power_of_two() {
        Ok(ArchConfig::new_organization(n, m))
    } else {
        Err(format!("core count {n} must be 1 (old organization) or a power of two"))
    }
}

fn read_input(flags: &Flags) -> Result<Vec<u8>, String> {
    match (flags.value("text"), flags.value("input")) {
        (Some(text), None) => Ok(text.as_bytes().to_vec()),
        (None, Some(path)) => std::fs::read(path).map_err(|e| format!("reading {path}: {e}")),
        _ => Err("provide exactly one of --text STR or --input FILE".to_owned()),
    }
}

/// Load `--tuned-config FILE` if given. Any validation failure (unknown
/// keys, future version, corrupted values) is surfaced as the command's
/// error — a tuned run never silently falls back to defaults.
fn load_tuned(flags: &Flags) -> Result<Option<cicero::tune::TuneFile>, String> {
    match flags.value("tuned-config") {
        Some(path) => cicero::tune::TuneFile::load(path).map(Some).map_err(|e| e.to_string()),
        None => Ok(None),
    }
}

/// Compiler-options precedence: `-O0` (explicit flag) > `--tuned-config`
/// > the built-in optimized default.
fn compiler_base(tuned: Option<&cicero::tune::TuneFile>, o0: bool) -> CompilerOptions {
    if o0 {
        CompilerOptions::unoptimized()
    } else {
        tuned.map_or_else(CompilerOptions::optimized, |t| t.compiler_options())
    }
}

/// Architecture precedence: `--config NxM` > `--tuned-config` > the
/// built-in 16x1 default.
fn resolve_config(
    flags: &Flags,
    tuned: Option<&cicero::tune::TuneFile>,
) -> Result<ArchConfig, String> {
    match (flags.value("config"), tuned) {
        (None, Some(t)) => Ok(t.arch_config()),
        (spec, _) => parse_config(spec),
    }
}

/// Compile with either compiler. The multi-dialect compiler also returns
/// its per-pass report (and streams spans into `telemetry` when given);
/// the legacy single-IR compiler has no pass pipeline, so it returns
/// `None`. `options` is the multi-dialect baseline (usually
/// [`compiler_base`]); `--old`/`-O0` still take precedence.
fn compile_one(
    pattern: &str,
    old: bool,
    o0: bool,
    options: CompilerOptions,
    telemetry: Option<&Telemetry>,
) -> Result<(Program, Option<cicero::mlir::PipelineReport>), String> {
    if old {
        let program = LegacyCompiler::new(!o0).compile(pattern).map_err(|e| e.to_string())?;
        Ok((program, None))
    } else {
        let options = if o0 { CompilerOptions::unoptimized() } else { options };
        let mut compiler = Compiler::with_options(options);
        if let Some(telemetry) = telemetry {
            compiler = compiler.with_telemetry(telemetry.clone());
        }
        let compiled = compiler.compile(pattern).map_err(|e| e.to_string())?;
        let report = compiled.pass_report().clone();
        Ok((compiled.into_program(), Some(report)))
    }
}

fn pass_timing_text(report: Option<&cicero::mlir::PipelineReport>) -> String {
    match report {
        Some(report) => format!("per-pass timing:\n{report}"),
        None => "per-pass timing: n/a (the legacy compiler has no pass pipeline)".to_owned(),
    }
}

/// Export the collected telemetry per `--metrics` / `--metrics-format`.
fn write_metrics(flags: &Flags, telemetry: &Telemetry) -> Result<(), String> {
    let Some(path) = flags.value("metrics") else {
        if flags.value("metrics-format").is_some() {
            return Err("--metrics-format requires --metrics PATH".to_owned());
        }
        return Ok(());
    };
    match flags.value("metrics-format").unwrap_or("summary") {
        "jsonl" => telemetry.write_jsonl_path(path).map_err(|e| format!("writing {path}: {e}")),
        "summary" => {
            let text = telemetry.render_summary();
            if path == "-" {
                print!("{text}");
                Ok(())
            } else {
                std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
            }
        }
        other => Err(format!("unknown metrics format `{other}` (use summary or jsonl)")),
    }
}

/// Sink for `--emit` output: stdout or `-o FILE`.
type OutputSink = Box<dyn FnOnce(&[u8]) -> Result<(), String>>;

fn cmd_compile(args: &[String]) -> Result<(), String> {
    // `output` and `O0` are read below via their long names, so they must
    // be registered here too (`-o`/`-O0` are shorthands handled inside
    // `parse_flags`); leaving them out rejected `--O0`/`--output FILE`
    // as unknown flags.
    let flags = parse_flags(args, &["emit", "output"], &["old", "pass-timing", "O0"])?;
    let [pattern] = flags.positional.as_slice() else {
        return Err("compile takes exactly one pattern".to_owned());
    };
    let emit = flags.value("emit").unwrap_or("asm");
    let old = flags.has("old");
    let o0 = flags.has("O0");
    let output: OutputSink = match flags.value("output") {
        Some(path) => {
            let path = path.to_owned();
            Box::new(move |bytes: &[u8]| {
                std::fs::write(&path, bytes).map_err(|e| format!("writing {path}: {e}"))
            })
        }
        None => {
            Box::new(|bytes: &[u8]| std::io::stdout().write_all(bytes).map_err(|e| e.to_string()))
        }
    };
    match emit {
        "asm" | "bin" => {
            let (program, pass_report) =
                compile_one(pattern, old, o0, CompilerOptions::optimized(), None)?;
            if emit == "asm" {
                output(program.to_asm().as_bytes())?;
            } else {
                output(&cicero::isa::EncodedProgram::from_program(&program).to_bytes())?;
            }
            if flags.has("pass-timing") {
                // To stderr: stdout may be carrying the emitted program.
                eprintln!("{}", pass_timing_text(pass_report.as_ref()));
            }
            Ok(())
        }
        "regex-ir" | "cicero-ir" => {
            if old {
                return Err("the legacy compiler has a single IR; use --emit asm".to_owned());
            }
            let options =
                if o0 { CompilerOptions::unoptimized() } else { CompilerOptions::optimized() };
            let artifacts = Compiler::with_options(options)
                .compile_with_artifacts(pattern)
                .map_err(|e| e.to_string())?;
            let text = if emit == "regex-ir" {
                artifacts.regex_ir_optimized.to_text()
            } else {
                artifacts.cicero_ir_optimized.to_text()
            };
            output(text.as_bytes())?;
            if flags.has("pass-timing") {
                eprintln!("{}", pass_timing_text(Some(artifacts.compiled.pass_report())));
            }
            Ok(())
        }
        other => Err(format!("unknown emit kind `{other}`")),
    }
}

/// Parse a `--jobs` value: a positive worker count, or `auto` for all
/// host cores (mapped to the runtime's `0` sentinel). A literal `0` is
/// rejected: it historically meant "all cores", which reads as "no
/// workers", so the spelling is now explicit.
fn parse_jobs(value: &str) -> Result<usize, String> {
    match value {
        "auto" => Ok(0),
        "0" => Err("--jobs 0 is ambiguous; use `--jobs auto` for all host cores".to_owned()),
        _ => value.parse::<usize>().map_err(|_| format!("--jobs `{value}` is not a number")),
    }
}

/// Parse a `--backend` value for `run`/`scan`, defaulting to the
/// simulator: those commands report the paper's cycle counts, so the
/// host engine is opt-in there (the server defaults the other way).
fn parse_backend(flags: &Flags) -> Result<Backend, String> {
    match flags.value("backend") {
        None => Ok(Backend::Sim),
        Some(value) => value.parse(),
    }
}

/// Split an input into the paper's §6 batch granularity (500-byte
/// chunks); an empty input still yields one (empty) chunk so the batch
/// path reports something.
fn chunk_input(input: &[u8]) -> Vec<Vec<u8>> {
    if input.is_empty() {
        return vec![Vec::new()];
    }
    input.chunks(workloads::CHUNK_BYTES).map(<[u8]>::to_vec).collect()
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    // `O0` must be registered even though `-O0` is a shorthand, so the
    // long `--O0` spelling works too (same fix as `cmd_compile`).
    let flags = parse_flags(
        args,
        &[
            "text",
            "input",
            "config",
            "metrics",
            "metrics-format",
            "jobs",
            "backend",
            "tuned-config",
        ],
        &["old", "pass-timing", "O0"],
    )?;
    let [pattern] = flags.positional.as_slice() else {
        return Err("run takes exactly one pattern".to_owned());
    };
    // The implicit-run shorthand allows omitting the input entirely.
    let input = match (flags.value("text"), flags.value("input")) {
        (None, None) => Vec::new(),
        _ => read_input(&flags)?,
    };
    let tuned = load_tuned(&flags)?;
    let config = resolve_config(&flags, tuned.as_ref())?;
    let backend = parse_backend(&flags)?;
    if let Some(jobs) = flags.value("jobs") {
        return run_batch_mode(
            pattern,
            &input,
            &config,
            parse_jobs(jobs)?,
            backend,
            tuned.as_ref(),
            &flags,
        );
    }
    if backend == Backend::Host {
        return run_host_mode(pattern, &input, tuned.as_ref(), &flags);
    }
    let telemetry = Telemetry::new();
    let base = compiler_base(tuned.as_ref(), flags.has("O0"));
    let (program, pass_report) =
        compile_one(pattern, flags.has("old"), flags.has("O0"), base, Some(&telemetry))?;
    let report = simulate_with_telemetry(&program, &input, &config, &telemetry);
    println!("pattern    : {pattern}");
    println!("config     : {} @ {} MHz", config.name(), config.clock_mhz());
    println!("verdict    : {}", if report.accepted { "MATCH" } else { "no match" });
    if let Some(position) = report.match_position {
        println!("match ends : {position}");
    }
    println!("cycles     : {}", report.cycles);
    println!("time       : {:.3} us", report.time_us(config.clock_mhz()));
    println!(
        "energy     : {:.3} W·µs",
        report.energy_wus(config.clock_mhz(), cicero::sim::power_watts(&config))
    );
    println!("instructions: {}", report.instructions);
    println!("icache      : {:.1}% hits", report.icache_hit_rate() * 100.0);
    if flags.has("pass-timing") {
        println!();
        println!("{}", pass_timing_text(pass_report.as_ref()));
    }
    write_metrics(&flags, &telemetry)
}

/// `run --backend host` (sequential): one pass over the whole input on
/// the host-native engine — same verdict and match position as the
/// simulator, but no cycle model, so the summary reports wall-clock
/// throughput and which engine tier the lowering picked.
fn run_host_mode(
    pattern: &str,
    input: &[u8],
    tuned: Option<&cicero::tune::TuneFile>,
    flags: &Flags,
) -> Result<(), String> {
    let telemetry = Telemetry::new();
    let base = compiler_base(tuned, flags.has("O0"));
    let (program, pass_report) =
        compile_one(pattern, flags.has("old"), flags.has("O0"), base, Some(&telemetry))?;
    let tiers = tuned.map(|t| t.host_tiers()).unwrap_or_default();
    let host = HostProgram::compile_with_tiers(&program, tiers);
    let start = std::time::Instant::now();
    let outcome = host.run(input);
    let wall = start.elapsed();
    println!("pattern    : {pattern}");
    println!(
        "backend    : host ({}, {} state(s), {} byte class(es))",
        host.engine_kind(),
        host.state_count(),
        host.byte_class_count()
    );
    println!("verdict    : {}", if outcome.accepted { "MATCH" } else { "no match" });
    if let Some(position) = outcome.match_position {
        println!("match ends : {position}");
    }
    println!("bytes      : {}", input.len());
    println!(
        "host wall  : {:.3} ms ({:.1} MB/s)",
        wall.as_secs_f64() * 1e3,
        input.len() as f64 / wall.as_secs_f64().max(1e-9) / 1e6
    );
    if flags.has("pass-timing") {
        println!();
        println!("{}", pass_timing_text(pass_report.as_ref()));
    }
    write_metrics(flags, &telemetry)
}

/// `run --jobs N`: chunk the input and match it on the parallel runtime
/// (the simulator worker pool, or the host engine under
/// `--backend host`).
fn run_batch_mode(
    pattern: &str,
    input: &[u8],
    config: &ArchConfig,
    jobs: usize,
    backend: Backend,
    tuned: Option<&cicero::tune::TuneFile>,
    flags: &Flags,
) -> Result<(), String> {
    let telemetry = Telemetry::new();
    let chunks = chunk_input(input);
    let o0 = flags.has("O0");
    let compiler = compiler_base(tuned, o0);
    let runtime = Runtime::new(RuntimeOptions {
        jobs,
        compiler,
        cache_shards: tuned.map_or(0, |t| t.config.cache_shards),
        host_tiers: tuned.map(|t| t.host_tiers()).unwrap_or_default(),
        ..RuntimeOptions::default()
    })
    .with_telemetry(telemetry.clone());
    if backend == Backend::Host {
        return run_batch_host(pattern, input, &chunks, config, &runtime, flags, &telemetry);
    }
    let batch = if flags.has("old") {
        // The legacy compiler is outside the runtime's cache; compile once
        // here and hand the program straight to the pool.
        let program = LegacyCompiler::new(!o0).compile(pattern).map_err(|e| e.to_string())?;
        runtime.run_batch(&program, &chunks, config)
    } else {
        runtime.match_batch(pattern, &chunks, config).map_err(|e| e.to_string())?
    };
    println!("pattern    : {pattern}");
    println!("config     : {} @ {} MHz", config.name(), config.clock_mhz());
    println!(
        "batch      : {} chunk(s) of <= {} B on {} worker(s)",
        chunks.len(),
        workloads::CHUNK_BYTES,
        batch.jobs
    );
    match batch.matches() {
        0 => println!("verdict    : no match"),
        n => println!("verdict    : MATCH in {n}/{} chunk(s)", chunks.len()),
    }
    println!("cycles     : {}", batch.aggregate.cycles);
    println!("time       : {:.3} us", batch.aggregate.time_us(config.clock_mhz()));
    println!("instructions: {}", batch.aggregate.instructions);
    println!("icache      : {:.1}% hits", batch.aggregate.icache_hit_rate() * 100.0);
    println!(
        "host wall  : {:.3} ms ({:.1} KB/s)",
        batch.wall.as_secs_f64() * 1e3,
        batch.throughput_bytes_per_sec(input.len()) / 1e3
    );
    if flags.has("pass-timing") {
        println!();
        println!("per-pass timing: n/a in --jobs batch mode (use a sequential run)");
    }
    write_metrics(flags, &telemetry)
}

/// `run --jobs N --backend host`: the same chunked batch, dispatched to
/// the host engine through the runtime's guarded path (per-worker
/// panic isolation, shared program cache).
fn run_batch_host(
    pattern: &str,
    input: &[u8],
    chunks: &[Vec<u8>],
    config: &ArchConfig,
    runtime: &Runtime,
    flags: &Flags,
    telemetry: &Telemetry,
) -> Result<(), String> {
    let batch = if flags.has("old") {
        let program =
            LegacyCompiler::new(!flags.has("O0")).compile(pattern).map_err(|e| e.to_string())?;
        runtime.run_batch_guarded_traced_on(
            Backend::Host,
            &program,
            chunks,
            config,
            &Budget::default(),
            None,
        )
    } else {
        runtime
            .match_batch_guarded_traced_on(
                Backend::Host,
                pattern,
                chunks,
                config,
                &Budget::default(),
                None,
            )
            .map_err(|e| e.to_string())?
    };
    println!("pattern    : {pattern}");
    println!("backend    : host");
    println!(
        "batch      : {} chunk(s) of <= {} B on {} worker(s)",
        chunks.len(),
        workloads::CHUNK_BYTES,
        batch.jobs
    );
    match batch.matches() {
        0 => println!("verdict    : no match"),
        n => println!("verdict    : MATCH in {n}/{} chunk(s)", chunks.len()),
    }
    println!("bytes      : {}", input.len());
    println!(
        "host wall  : {:.3} ms ({:.1} MB/s)",
        batch.wall.as_secs_f64() * 1e3,
        input.len() as f64 / batch.wall.as_secs_f64().max(1e-9) / 1e6
    );
    if flags.has("pass-timing") {
        println!();
        println!("per-pass timing: n/a in --jobs batch mode (use a sequential run)");
    }
    write_metrics(flags, telemetry)
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "text",
            "input",
            "config",
            "jobs",
            "chunk-size",
            "fuel",
            "deadline-ms",
            "backend",
            "ruleset",
            "addr",
            "tuned-config",
        ],
        &["stream"],
    )?;
    if let Some(id) = flags.value("ruleset") {
        if flags.value("tuned-config").is_some() {
            return Err(
                "--tuned-config only applies to local scans; `scan --ruleset` matches on the \
                 server with the server's configuration"
                    .to_owned(),
            );
        }
        return scan_ruleset_mode(id, &flags);
    }
    if flags.value("addr").is_some() {
        return Err("--addr only applies to `scan --ruleset`".to_owned());
    }
    if flags.positional.is_empty() {
        return Err("scan takes one or more patterns".to_owned());
    }
    let tuned = load_tuned(&flags)?;
    let config = resolve_config(&flags, tuned.as_ref())?;
    let backend = parse_backend(&flags)?;
    if flags.has("stream") {
        if flags.value("jobs").is_some() {
            return Err("--stream and --jobs cannot be combined; pick one runtime".to_owned());
        }
        return scan_stream_mode(&flags.positional, &config, backend, tuned.as_ref(), &flags);
    }
    for flag in ["chunk-size", "fuel", "deadline-ms"] {
        if flags.value(flag).is_some() {
            return Err(format!("--{flag} only applies to `scan --stream`"));
        }
    }
    let input = read_input(&flags)?;
    if let Some(jobs) = flags.value("jobs") {
        return scan_batch_mode(
            &flags.positional,
            &input,
            &config,
            parse_jobs(jobs)?,
            backend,
            tuned.as_ref(),
        );
    }
    let base = compiler_base(tuned.as_ref(), false);
    let set =
        Compiler::with_options(base).compile_set(&flags.positional).map_err(|e| e.to_string())?;
    if backend == Backend::Host {
        // One all-matches pass on the host engine: every set member that
        // fires is reported, like the sim path below, minus the cycle
        // count (the host engine has no cycle model).
        let tiers = tuned.as_ref().map(|t| t.host_tiers()).unwrap_or_default();
        let host = HostProgram::compile_with_tiers(set.program(), tiers);
        let all = host.run_all(&input);
        if all.matched_ids.is_empty() {
            println!("no match in {} bytes", input.len());
        } else {
            for &id in &all.matched_ids {
                println!("MATCH: pattern {} ({:?}) [host]", id, set.pattern(id).unwrap_or("?"));
            }
        }
        return Ok(());
    }
    let report = simulate(set.program(), &input, &config);
    // The cycle-level run halts at the first acceptance (hardware
    // semantics); the all-matches interpreter reports every set member
    // that fired, so overlapping patterns are no longer dropped.
    let all = cicero::isa::run_all(set.program(), &input);
    if all.matched_ids.is_empty() {
        println!("no match in {} cycles", report.cycles);
    } else {
        for &id in &all.matched_ids {
            println!(
                "MATCH: pattern {} ({:?}) in {} cycles",
                id,
                set.pattern(id).unwrap_or("?"),
                report.cycles
            );
        }
    }
    Ok(())
}

/// `scan --jobs N`: match the multi-pattern set chunk-by-chunk on the
/// parallel runtime and summarise per-pattern hits.
fn scan_batch_mode(
    patterns: &[String],
    input: &[u8],
    config: &ArchConfig,
    jobs: usize,
    backend: Backend,
    tuned: Option<&cicero::tune::TuneFile>,
) -> Result<(), String> {
    let chunks = chunk_input(input);
    let runtime = Runtime::new(RuntimeOptions {
        jobs,
        compiler: compiler_base(tuned, false),
        cache_shards: tuned.map_or(0, |t| t.config.cache_shards),
        host_tiers: tuned.map(|t| t.host_tiers()).unwrap_or_default(),
        ..RuntimeOptions::default()
    });
    let program = runtime.compile_set(patterns).map_err(|e| e.to_string())?;
    if backend == Backend::Host {
        return scan_batch_host(patterns, &chunks, config, &runtime, &program);
    }
    let batch = runtime.run_batch(&program, &chunks, config);
    println!(
        "{} chunk(s) of <= {} B on {} worker(s), {} cycles total",
        chunks.len(),
        workloads::CHUNK_BYTES,
        batch.jobs,
        batch.aggregate.cycles
    );
    // Per-chunk all-matches accounting: the cycle-level report halts at
    // the first acceptance, so a chunk matching several set members would
    // otherwise count only one of them. Re-running accepted chunks
    // through the functional all-matches interpreter recovers every
    // distinct id — the same accounting the server's `POST /scan` uses.
    let mut per_pattern = vec![0usize; patterns.len()];
    for (chunk, report) in chunks.iter().zip(&batch.reports) {
        if report.accepted {
            for id in cicero::isa::run_all(&program, chunk).matched_ids {
                if let Some(count) = per_pattern.get_mut(usize::from(id)) {
                    *count += 1;
                }
            }
        }
    }
    if batch.matches() == 0 {
        println!("no match");
    } else {
        for (id, count) in per_pattern.iter().enumerate() {
            if *count > 0 {
                println!("MATCH: pattern {} ({:?}) in {} chunk(s)", id, patterns[id], count);
            }
        }
    }
    Ok(())
}

/// `scan --jobs N --backend host`: the chunked set scan on the host
/// engine through the guarded path, with per-pattern counts from the
/// host `run_all` — the same accounting as the server's host `/scan`.
fn scan_batch_host(
    patterns: &[String],
    chunks: &[Vec<u8>],
    config: &ArchConfig,
    runtime: &Runtime,
    program: &Program,
) -> Result<(), String> {
    use cicero::runtime::MatchOutcome;
    let batch = runtime.run_batch_guarded_traced_on(
        Backend::Host,
        program,
        chunks,
        config,
        &Budget::default(),
        None,
    );
    println!(
        "{} chunk(s) of <= {} B on {} worker(s) [host backend, {:.3} ms]",
        chunks.len(),
        workloads::CHUNK_BYTES,
        batch.jobs,
        batch.wall.as_secs_f64() * 1e3
    );
    let host = runtime.host_program(program);
    let mut per_pattern = vec![0usize; patterns.len()];
    for (chunk, outcome) in chunks.iter().zip(&batch.outcomes) {
        if let MatchOutcome::Complete(report) = outcome {
            if report.accepted {
                for id in host.run_all(chunk).matched_ids {
                    if let Some(count) = per_pattern.get_mut(usize::from(id)) {
                        *count += 1;
                    }
                }
            }
        }
    }
    if batch.matches() == 0 {
        println!("no match");
    } else {
        for (id, count) in per_pattern.iter().enumerate() {
            if *count > 0 {
                println!("MATCH: pattern {} ({:?}) in {} chunk(s)", id, patterns[id], count);
            }
        }
    }
    Ok(())
}

/// `scan --stream`: feed the input through the bounded-memory streaming
/// runtime, with optional fuel / deadline budgets. `--backend host`
/// drives the same session on the host engine (fuel becomes a byte
/// budget there).
fn scan_stream_mode(
    patterns: &[String],
    config: &ArchConfig,
    backend: Backend,
    tuned: Option<&cicero::tune::TuneFile>,
    flags: &Flags,
) -> Result<(), String> {
    use cicero::runtime::{BudgetKind, MatchOutcome, StreamOptions};

    let mut options = StreamOptions::default();
    if let Some(value) = flags.value("chunk-size") {
        let chunk: usize =
            value.parse().map_err(|_| format!("--chunk-size `{value}` is not a number"))?;
        if chunk == 0 {
            return Err("--chunk-size 0 is invalid; chunks must be at least 1 byte".to_owned());
        }
        options.chunk_size = chunk;
    }
    if let Some(value) = flags.value("fuel") {
        let fuel: u64 = value.parse().map_err(|_| format!("--fuel `{value}` is not a number"))?;
        options.budget.fuel = Some(fuel);
    }
    if let Some(value) = flags.value("deadline-ms") {
        let ms: u64 =
            value.parse().map_err(|_| format!("--deadline-ms `{value}` is not a number"))?;
        options.budget.deadline = Some(std::time::Duration::from_millis(ms));
    }

    // The set keeps the id -> pattern mapping for the verdict line; the
    // runtime only needs the compiled program.
    let base = compiler_base(tuned, false);
    let set = Compiler::with_options(base).compile_set(patterns).map_err(|e| e.to_string())?;
    let source: Box<dyn std::io::Read + Send> = match (flags.value("text"), flags.value("input")) {
        (Some(text), None) => Box::new(std::io::Cursor::new(text.as_bytes().to_vec())),
        (None, Some(path)) => {
            let path = path.to_owned();
            Box::new(std::fs::File::open(&path).map_err(|e| format!("opening {path}: {e}"))?)
        }
        _ => return Err("provide exactly one of --text STR or --input FILE".to_owned()),
    };
    let runtime = Runtime::new(RuntimeOptions {
        compiler: base.with_backend(backend),
        cache_shards: tuned.map_or(0, |t| t.config.cache_shards),
        host_tiers: tuned.map(|t| t.host_tiers()).unwrap_or_default(),
        ..RuntimeOptions::default()
    });
    let report =
        runtime.scan_stream(set.program(), source, config, &options).map_err(|e| e.to_string())?;
    // The host engine has no cycle model: its reports count bytes
    // examined where the simulator counts cycles.
    let unit = match backend {
        Backend::Sim => "cycles",
        Backend::Host => "bytes",
    };

    println!("config     : {} @ {} MHz", config.name(), config.clock_mhz());
    println!(
        "stream     : {} chunk(s) of <= {} B, {} suspend(s), peak buffer {} B",
        report.chunks, options.chunk_size, report.suspends, report.peak_buffered
    );
    println!("bytes      : {}", report.bytes);
    println!("host wall  : {:.3} ms", report.wall.as_secs_f64() * 1e3);
    match &report.outcome {
        MatchOutcome::Complete(exec) => {
            match exec.matched_id {
                Some(id) => println!(
                    "verdict    : MATCH: pattern {} ({:?}) in {} {unit}",
                    id,
                    set.pattern(id).unwrap_or("?"),
                    exec.cycles
                ),
                None => println!("verdict    : no match in {} {unit}", exec.cycles),
            }
            Ok(())
        }
        MatchOutcome::Budget { kind, partial } => {
            let kind = match kind {
                BudgetKind::Fuel => "fuel",
                BudgetKind::Deadline => "deadline",
            };
            if let Some(partial) = partial {
                println!("partial    : {} {unit} before the cut-off", partial.cycles);
            }
            Err(format!("{kind} budget exceeded before the stream concluded"))
        }
        MatchOutcome::Fault(message) => Err(format!("worker fault: {message}")),
    }
}

/// The address `cicero serve` binds by default — and therefore the one
/// the `ruleset` / `scan --ruleset` client commands contact by default.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:8787";

/// One HTTP/1.1 request over a fresh connection; returns
/// (status, raw response head, body).
fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: &[u8],
) -> Result<(u16, String, String), String> {
    use std::io::Read as _;

    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("connecting to {addr}: {e} (is `cicero serve` running there?)"))?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).map_err(|e| e.to_string())?;
    let mut request = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!("content-length: {}\r\nconnection: close\r\n\r\n", body.len()));
    let mut bytes = request.into_bytes();
    bytes.extend_from_slice(body);
    stream.write_all(&bytes).map_err(|e| format!("sending the request: {e}"))?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response).map_err(|e| format!("reading the response: {e}"))?;
    let text = String::from_utf8_lossy(&response).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}: {text:?}"))?;
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    Ok((status, head.to_owned(), body.to_owned()))
}

/// Case-insensitive header lookup in a raw response head.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.trim().eq_ignore_ascii_case(name).then(|| v.trim().to_owned())
    })
}

/// `scan --ruleset ID`: ship the input to a running `cicero serve` and
/// match it against the named registry ruleset (`POST /scan/stream`), so
/// the CLI sees exactly the version the server is serving. `--backend`,
/// `--chunk-size`, `--fuel`, `--deadline-ms`, and `--config` map onto
/// the corresponding `X-Cicero-*` request headers.
fn scan_ruleset_mode(id: &str, flags: &Flags) -> Result<(), String> {
    if !flags.positional.is_empty() {
        return Err("scan --ruleset takes its patterns from the server's registry; \
             drop the positional patterns (or use `cicero ruleset put` to change them)"
            .to_owned());
    }
    if flags.value("jobs").is_some() || flags.has("stream") {
        return Err("--jobs/--stream do not apply to scan --ruleset; the server owns the runtime"
            .to_owned());
    }
    let input = read_input(flags)?;
    let addr = flags.value("addr").unwrap_or(DEFAULT_SERVE_ADDR);
    let mut headers: Vec<(&str, String)> = Vec::new();
    for (flag, header) in [
        ("backend", "x-cicero-backend"),
        ("chunk-size", "x-cicero-chunk-size"),
        ("fuel", "x-cicero-fuel"),
        ("deadline-ms", "x-cicero-deadline-ms"),
        ("config", "x-cicero-config"),
    ] {
        if let Some(value) = flags.value(flag) {
            headers.push((header, value.to_owned()));
        }
    }
    let (status, head, body) =
        http_request(addr, "POST", &format!("/scan/stream?ruleset={id}"), &headers, &input)?;
    if status != 200 {
        return Err(format!("scan against ruleset {id:?} failed ({status}): {body}"));
    }
    let version = header_value(&head, "x-cicero-ruleset-version").unwrap_or_default();
    println!("ruleset    : {id} @ {version}");
    println!("{body}");
    Ok(())
}

/// `cicero ruleset put|get|rm|list`: manage the live registry of a
/// running `cicero serve` over HTTP. A `put` over an existing id is an
/// atomic hot swap: in-flight requests drain on the old version while
/// new requests pin the new one.
fn cmd_ruleset(args: &[String]) -> Result<(), String> {
    use cicero::telemetry::escape_json;

    let flags = parse_flags(args, &["addr"], &[])?;
    let addr = flags.value("addr").unwrap_or(DEFAULT_SERVE_ADDR);
    let Some(verb) = flags.positional.first().map(String::as_str) else {
        return Err(format!("ruleset takes a subcommand: put|get|rm|list\n\n{USAGE}"));
    };
    match verb {
        "put" => {
            let id =
                flags.positional.get(1).ok_or("ruleset put takes <id> and one or more patterns")?;
            let patterns = &flags.positional[2..];
            if patterns.is_empty() {
                return Err("ruleset put takes at least one pattern".to_owned());
            }
            let members: Vec<String> =
                patterns.iter().map(|p| format!("\"{}\"", escape_json(p))).collect();
            let body = format!("{{\"patterns\":[{}]}}", members.join(","));
            let (status, head, response) =
                http_request(addr, "PUT", &format!("/rulesets/{id}"), &[], body.as_bytes())?;
            if status != 200 && status != 201 {
                return Err(format!("PUT /rulesets/{id} failed ({status}): {response}"));
            }
            let version = header_value(&head, "x-cicero-ruleset-version").unwrap_or_default();
            println!(
                "{} {id} @ {version} ({} pattern(s))",
                if status == 201 { "installed" } else { "swapped" },
                patterns.len()
            );
            Ok(())
        }
        "get" => {
            let id = flags.positional.get(1).ok_or("ruleset get takes <id>")?;
            let (status, _, response) =
                http_request(addr, "GET", &format!("/rulesets/{id}"), &[], b"")?;
            if status != 200 {
                return Err(format!("GET /rulesets/{id} failed ({status}): {response}"));
            }
            println!("{response}");
            Ok(())
        }
        "rm" => {
            let id = flags.positional.get(1).ok_or("ruleset rm takes <id>")?;
            let (status, _, response) =
                http_request(addr, "DELETE", &format!("/rulesets/{id}"), &[], b"")?;
            if status != 200 {
                return Err(format!("DELETE /rulesets/{id} failed ({status}): {response}"));
            }
            println!("deleted {id}");
            Ok(())
        }
        "list" => {
            let (status, _, response) = http_request(addr, "GET", "/rulesets", &[], b"")?;
            if status != 200 {
                return Err(format!("GET /rulesets failed ({status}): {response}"));
            }
            println!("{response}");
            Ok(())
        }
        other => Err(format!("unknown ruleset subcommand `{other}` (put|get|rm|list)")),
    }
}

/// `cicero serve`: run the HTTP match-serving front door until a
/// `POST /shutdown` begins the graceful drain.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use cicero::server::{Server, ServerOptions};

    let flags = parse_flags(
        args,
        &[
            "addr",
            "workers",
            "queue-depth",
            "drain-timeout-ms",
            "config",
            "jobs",
            "backend",
            "metrics",
            "metrics-format",
            "trace-dump",
            "slow-trace-ms",
            "trace-capacity",
            "ruleset-dir",
            "tenant-quota",
            "tenant-rate",
            "tenant-burst",
            "tuned-config",
        ],
        &[],
    )?;
    if !flags.positional.is_empty() {
        return Err("serve takes no positional arguments".to_owned());
    }
    let mut options =
        ServerOptions { config: parse_config(flags.value("config"))?, ..ServerOptions::default() };
    // `--tuned-config` is validated and applied before any explicit flag,
    // so flags below still win — and an invalid file returns here, long
    // before the listener binds: the server refuses to start on a config
    // it cannot trust.
    if let Some(tuned) = load_tuned(&flags)? {
        if flags.value("config").is_none() {
            options.config = tuned.arch_config();
        }
        // tune.toml does not carry a backend; keep the server's default
        // (host) unless `--backend` says otherwise below.
        let backend = options.runtime.compiler.backend;
        options.runtime.compiler = tuned.compiler_options().with_backend(backend);
        options.runtime.jobs = tuned.config.jobs;
        options.runtime.cache_shards = tuned.config.cache_shards;
        options.runtime.host_tiers = tuned.host_tiers();
    }
    if let Some(addr) = flags.value("addr") {
        options.addr = addr.to_owned();
    }
    if let Some(value) = flags.value("workers") {
        options.workers = match value.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("--workers `{value}` is not a positive number")),
        };
    }
    if let Some(value) = flags.value("queue-depth") {
        options.queue_depth = match value.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("--queue-depth `{value}` is not a positive number")),
        };
    }
    if let Some(value) = flags.value("drain-timeout-ms") {
        let ms: u64 =
            value.parse().map_err(|_| format!("--drain-timeout-ms `{value}` is not a number"))?;
        options.drain_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(value) = flags.value("jobs") {
        options.runtime.jobs = parse_jobs(value)?;
    }
    // The server default is the host-native engine; `--backend sim`
    // serves on the cycle-level simulator instead. Requests can still
    // override per call with the `X-Cicero-Backend` header.
    if let Some(value) = flags.value("backend") {
        options.runtime.compiler.backend = value.parse()?;
    }
    if let Some(path) = flags.value("trace-dump") {
        options.trace_dump = Some(std::path::PathBuf::from(path));
    }
    if let Some(value) = flags.value("slow-trace-ms") {
        let ms: u64 =
            value.parse().map_err(|_| format!("--slow-trace-ms `{value}` is not a number"))?;
        options.recorder.slow_threshold = std::time::Duration::from_millis(ms);
    }
    if let Some(value) = flags.value("trace-capacity") {
        options.recorder.capacity = value
            .parse::<usize>()
            .map_err(|_| format!("--trace-capacity `{value}` is not a number"))?;
    }
    if let Some(path) = flags.value("ruleset-dir") {
        options.ruleset_dir = Some(std::path::PathBuf::from(path));
    }
    if let Some(value) = flags.value("tenant-quota") {
        options.tenants.max_in_flight =
            value.parse().map_err(|_| format!("--tenant-quota `{value}` is not a number"))?;
    }
    if let Some(value) = flags.value("tenant-rate") {
        options.tenants.rate_per_sec = match value.parse::<f64>() {
            Ok(rate) if rate >= 0.0 && rate.is_finite() => rate,
            _ => return Err(format!("--tenant-rate `{value}` is not a non-negative number")),
        };
    }
    if let Some(value) = flags.value("tenant-burst") {
        options.tenants.burst = match value.parse::<f64>() {
            Ok(burst) if burst >= 0.0 && burst.is_finite() => burst,
            _ => return Err(format!("--tenant-burst `{value}` is not a non-negative number")),
        };
    }

    let telemetry = Telemetry::new();
    let server = Server::bind_with_telemetry(options, telemetry.clone())
        .map_err(|e| format!("binding the listener: {e}"))?;
    let addr = server.local_addr().map_err(|e| format!("querying the bound address: {e}"))?;
    // One parseable line so scripts (and the smoke tests) can discover an
    // ephemeral port from `--addr host:0`.
    println!("listening on {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    let report = server.run().map_err(|e| format!("serving: {e}"))?;
    println!("drained    : {}", if report.drained { "yes" } else { "TIMED OUT" });
    println!("requests   : {}", report.requests);
    println!("rejected   : {}", report.rejected);
    println!("drain wall : {:.3} ms", report.wall.as_secs_f64() * 1e3);
    write_metrics(&flags, &telemetry)?;
    if report.drained {
        Ok(())
    } else {
        Err("drain timed out with requests still in flight".to_owned())
    }
}

/// `cicero trace`: run one traced set-scan through the parallel runtime
/// and render the resulting span tree — the CLI twin of the server's
/// `GET /debug/traces/{id}` (same span names, same schema).
fn cmd_trace(args: &[String]) -> Result<(), String> {
    use cicero::telemetry::{render_chrome_trace, TraceContext};

    let flags = parse_flags(
        args,
        &[
            "text",
            "input",
            "config",
            "jobs",
            "export",
            "output",
            "request-id",
            "fuel",
            "deadline-ms",
        ],
        &[],
    )?;
    if flags.positional.is_empty() {
        return Err("trace takes one or more patterns".to_owned());
    }
    let config = parse_config(flags.value("config"))?;
    let input = read_input(&flags)?;
    let jobs = match flags.value("jobs") {
        Some(value) => parse_jobs(value)?,
        None => 1,
    };
    let mut budget = Budget::default();
    if let Some(value) = flags.value("fuel") {
        budget.fuel = Some(value.parse().map_err(|_| format!("--fuel `{value}` is not a number"))?);
    }
    if let Some(value) = flags.value("deadline-ms") {
        let ms: u64 =
            value.parse().map_err(|_| format!("--deadline-ms `{value}` is not a number"))?;
        budget.deadline = Some(std::time::Duration::from_millis(ms));
    }
    let request_id = flags.value("request-id").unwrap_or("cli-trace");

    let runtime = Runtime::new(RuntimeOptions { jobs, ..RuntimeOptions::default() });
    let chunks = chunk_input(&input);
    let ctx = TraceContext::new(request_id);
    {
        let root = ctx.root_span("request");
        root.annotate("patterns", flags.positional.len());
        root.annotate("input_bytes", input.len());
        root.annotate("config", config.name());
        let (program, _cache_hit) = runtime
            .compile_set_traced(&flags.positional, Some(&root))
            .map_err(|e| e.to_string())?;
        let batch =
            runtime.run_batch_guarded_traced(&program, &chunks, &config, &budget, Some(&root));
        root.annotate("completed", batch.completed());
    }
    let trace = ctx.finish();

    let export = flags.value("export").unwrap_or("tree");
    let rendered = match export {
        "tree" => trace.render_tree(),
        "json" => trace.render_json(false),
        "chrome" => render_chrome_trace(&[&trace]),
        other => return Err(format!("unknown export kind `{other}` (use tree, json, or chrome)")),
    };
    match flags.value("output") {
        Some(path) if path != "-" => {
            std::fs::write(path, &rendered).map_err(|e| format!("writing {path}: {e}"))
        }
        _ => {
            print!("{rendered}");
            if !rendered.ends_with('\n') {
                println!();
            }
            Ok(())
        }
    }
}

/// `cicero tune`: search the compiler × architecture space for the
/// lowest-cost configuration on a workload and persist the winner to a
/// `tune.toml` that `run`/`scan`/`serve` load via `--tuned-config`.
///
/// With `--budget N` (an eval count) the run is deterministic: the same
/// seed, workload, and budget produce a byte-identical `tune.toml`.
fn cmd_tune(args: &[String]) -> Result<(), String> {
    use cicero::tune::{
        tune, Budget as TuneBudget, CostModel, HostCostModel, SearchSpace, SimCostModel, TuneFile,
        Workload,
    };

    let flags = parse_flags(
        args,
        &["workload", "budget", "seed", "out", "cost", "space", "metrics", "metrics-format"],
        &[],
    )?;
    let workload = if !flags.positional.is_empty() {
        if flags.value("workload").is_some() {
            return Err("give either --workload PACK or positional patterns, not both".to_owned());
        }
        Workload::from_patterns(&flags.positional).map_err(|e| e.to_string())?
    } else if let Some(name) = flags.value("workload") {
        Workload::pack(name).map_err(|e| e.to_string())?
    } else {
        return Err(
            "tune needs a workload: --workload protomata|brill|protomata4|brill4, or one or \
             more positional patterns"
                .to_owned(),
        );
    };
    let spec = flags.value("budget").unwrap_or("24");
    let budget = match spec.strip_suffix("ms") {
        Some(ms) => TuneBudget::TimeMs(
            ms.parse().map_err(|_| format!("--budget `{spec}` is not `N` evals or `Nms`"))?,
        ),
        None => TuneBudget::Evals(
            spec.parse().map_err(|_| format!("--budget `{spec}` is not `N` evals or `Nms`"))?,
        ),
    };
    let seed: u64 = match flags.value("seed") {
        Some(v) => v.parse().map_err(|_| format!("--seed `{v}` is not a number"))?,
        None => 42,
    };
    let out = flags.value("out").unwrap_or("tune.toml");
    let space = match flags.value("space").unwrap_or("full") {
        "full" => SearchSpace::full(),
        "compiler" => SearchSpace::compiler_only(),
        other => return Err(format!("unknown search space `{other}` (use full or compiler)")),
    };
    let sim = SimCostModel;
    let host = HostCostModel::default();
    let (model, model_name): (&dyn CostModel, &str) = match flags.value("cost").unwrap_or("sim") {
        "sim" => (&sim, "sim"),
        "host" => (&host, "host"),
        other => return Err(format!("unknown cost model `{other}` (use sim or host)")),
    };

    let telemetry = Telemetry::new();
    let outcome = tune(&workload, &space, model, budget, seed, Some(&telemetry))
        .map_err(|e| e.to_string())?;
    let file = TuneFile::from_outcome(&workload, &outcome, model_name, seed);

    println!(
        "workload   : {} ({} pattern(s), {} B)",
        workload.name,
        workload.patterns.len(),
        workload.total_bytes()
    );
    println!("space      : {} point(s), strategy {}", space.size(), outcome.strategy);
    println!("evals      : {} ({} memo hit(s))", outcome.evals, outcome.memo_hits);
    println!(
        "default    : cost {:.3} ({} cycles, D_offset {})",
        outcome.default_report.cost, outcome.default_report.cycles, outcome.default_report.d_offset
    );
    println!(
        "tuned      : cost {:.3} ({} cycles, D_offset {})",
        outcome.best_report.cost, outcome.best_report.cycles, outcome.best_report.d_offset
    );
    let default_cost = outcome.default_report.cost;
    if outcome.best_report.cost < default_cost && default_cost > 0.0 {
        println!(
            "improvement: {:.1}% lower cost than the default",
            (1.0 - outcome.best_report.cost / default_cost) * 100.0
        );
    } else {
        println!("improvement: none — the default configuration is already the winner");
    }
    println!("pass order : {}", file.config.compiler.pass_order.to_token_string());
    println!("machine    : {}", file.config.arch.name());
    println!(
        "host tiers : bit64<= {}, bit128<= {}; jobs {}, cache shards {}",
        file.config.host.bit64_max,
        file.config.host.bit128_max,
        file.config.jobs,
        file.config.cache_shards
    );
    file.save(out).map_err(|e| e.to_string())?;
    println!("wrote      : {out}");
    write_metrics(&flags, &telemetry)
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[], &[])?;
    let [pattern] = flags.positional.as_slice() else {
        return Err("explain takes exactly one pattern".to_owned());
    };
    let artifacts = Compiler::new().compile_with_artifacts(pattern).map_err(|e| e.to_string())?;
    println!("== regex dialect (initial) ==\n{}", artifacts.regex_ir_initial.to_text());
    println!("== regex dialect (optimized) ==\n{}", artifacts.regex_ir_optimized.to_text());
    println!("== cicero dialect (lowered) ==\n{}", artifacts.cicero_ir_initial.to_text());
    println!("== cicero dialect (simplified) ==\n{}", artifacts.cicero_ir_optimized.to_text());
    println!("== assembly ==\n{}", artifacts.compiled.program().to_asm());
    println!(
        "code size {} instructions, D_offset {}",
        artifacts.compiled.code_size(),
        artifacts.compiled.d_offset()
    );
    Ok(())
}

/// `cicero difftest`: replay the committed regression corpus, then fuzz —
/// generated patterns and inputs through the full oracle-vs-compiler
/// equivalence matrix, minimizing any divergence found.
fn cmd_difftest(args: &[String]) -> Result<(), String> {
    use cicero::difftest;

    let flags = parse_flags(
        args,
        &["seed", "iters", "jobs", "corpus", "stream-splits", "metrics", "metrics-format"],
        &["save", "no-replay"],
    )?;
    if !flags.positional.is_empty() {
        return Err(format!("difftest takes no positional arguments, got {:?}", flags.positional));
    }
    let seed = match flags.value("seed") {
        Some(v) => v.parse::<u64>().map_err(|_| format!("--seed `{v}` is not a number"))?,
        None => 42,
    };
    let iters = match flags.value("iters") {
        Some(v) => v.parse::<usize>().map_err(|_| format!("--iters `{v}` is not a number"))?,
        None => 1000,
    };
    let jobs = match flags.value("jobs") {
        Some(v) => parse_jobs(v)?,
        None => 1,
    };
    let stream_splits = match flags.value("stream-splits") {
        Some(v) => {
            v.parse::<usize>().map_err(|_| format!("--stream-splits `{v}` is not a number"))?
        }
        None => 1,
    };
    let corpus_dir = match flags.value("corpus") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => difftest::default_corpus_dir(),
    };
    let telemetry = Telemetry::new();

    let mut failures = 0usize;
    if !flags.has("no-replay") {
        let replayed = difftest::replay_corpus(&corpus_dir)?;
        telemetry.counter_add("difftest.corpus_cases", replayed.len() as u64);
        let mut corpus_failures = 0usize;
        for (case, outcome) in &replayed {
            if let difftest::Outcome::Diverged(d) = outcome {
                eprintln!("corpus case `{}` ({:?}) diverges: {d}", case.name, case.pattern);
                corpus_failures += 1;
            }
        }
        println!(
            "corpus     : {} case(s) from {}, {} failing",
            replayed.len(),
            corpus_dir.display(),
            corpus_failures
        );
        failures += corpus_failures;
    }

    let report = difftest::fuzz(&difftest::FuzzOptions {
        seed,
        iters,
        jobs,
        stream_splits,
        telemetry: Some(telemetry.clone()),
    });
    println!("fuzz       : seed {seed}, {} pattern(s), {} case(s)", report.patterns, report.cases);
    println!("skipped    : {} pattern(s) (capacity limits)", report.skipped);
    println!("divergences: {}", report.divergences.len());
    for (i, finding) in report.divergences.iter().enumerate() {
        eprintln!("--- divergence {i} ---");
        eprintln!("found with : {:?}", finding.pattern);
        eprintln!("cell       : {}", finding.divergence);
        eprintln!(
            "minimized  : {:?} on {:?} ({} shrink steps)",
            finding.shrunk.pattern,
            finding
                .shrunk
                .inputs
                .iter()
                .map(|input| String::from_utf8_lossy(input).into_owned())
                .collect::<Vec<_>>(),
            finding.shrunk.steps
        );
        if let Some(splits) = &finding.splits {
            eprintln!("splits     : {splits:?} (streaming-axis divergence)");
        }
        eprintln!("now fails  : {}", finding.shrunk_divergence);
        if flags.has("save") {
            let case = finding.to_corpus_case(&format!("divergence-seed{seed}-{i}"));
            let path = case.save(&corpus_dir).map_err(|e| e.to_string())?;
            eprintln!("saved      : {}", path.display());
        }
    }
    failures += report.divergences.len();
    write_metrics(&flags, &telemetry)?;
    if failures > 0 {
        return Err(format!("{failures} divergence(s); the compiler and oracle disagree"));
    }
    Ok(())
}

fn cmd_configs() -> Result<(), String> {
    println!(
        "{:<16} {:>7} {:>7} {:>7} {:>8} {:>7} {:>6}",
        "config", "LUT%", "REG%", "BRAM%", "power W", "clock", "fits"
    );
    let mut configs: Vec<ArchConfig> =
        [1usize, 4, 9, 16, 32].iter().map(|m| ArchConfig::old_organization(*m)).collect();
    for (n, ms) in [(8usize, [1usize, 4, 9, 16].as_slice()), (16, &[1, 4, 9]), (32, &[1, 4, 9])] {
        for m in ms {
            configs.push(ArchConfig::new_organization(n, *m));
        }
    }
    for config in configs {
        let usage = cicero::sim::resource_usage(&config);
        println!(
            "{:<16} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.2} {:>4.0}MHz {:>6}",
            config.name(),
            usage.lut_fraction * 100.0,
            usage.reg_fraction * 100.0,
            usage.bram_fraction * 100.0,
            cicero::sim::power_watts(&config),
            config.clock_mhz(),
            if usage.fits() { "yes" } else { "NO" },
        );
    }
    Ok(())
}
