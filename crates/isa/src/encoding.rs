//! 16-bit binary encoding of Cicero programs.
//!
//! Each instruction packs into one little-endian `u16`: the top 3 bits carry
//! the [`Opcode`], the low 13 bits the operand (a character for matching
//! instructions, an absolute address for control flow). This mirrors the
//! instruction-memory word width of the RTL design, where programs are
//! streamed into the engines' central instruction memory at reconfiguration
//! time.

use std::fmt;

use crate::instruction::{Instruction, Opcode, MAX_OPERAND};
use crate::program::Program;

/// Number of bits used by the operand field.
pub const OPERAND_BITS: u32 = 13;

/// A binary-encoded Cicero program, as loaded into instruction memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct EncodedProgram {
    words: Vec<u16>,
}

/// Error produced when decoding a binary program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A matching instruction carried an operand above `u8::MAX`.
    OperandNotAChar {
        /// Instruction-memory address of the offending word.
        address: usize,
        /// The 13-bit operand value found.
        operand: u16,
    },
    /// A control-flow instruction targeted an address outside the program.
    TargetOutOfRange {
        /// Instruction-memory address of the offending word.
        address: usize,
        /// The out-of-range target.
        target: u16,
        /// Program length in instructions.
        len: usize,
    },
    /// The byte stream had an odd number of bytes.
    TruncatedWord,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::OperandNotAChar { address, operand } => write!(
                f,
                "matching instruction at address {address} has non-character operand {operand}"
            ),
            DecodeError::TargetOutOfRange { address, target, len } => write!(
                f,
                "control-flow target {target} at address {address} exceeds program length {len}"
            ),
            DecodeError::TruncatedWord => write!(f, "byte stream ends mid-word"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl EncodedProgram {
    /// Encode a validated [`Program`].
    pub fn from_program(program: &Program) -> EncodedProgram {
        let words = program.instructions().iter().map(|ins| encode_instruction(*ins)).collect();
        EncodedProgram { words }
    }

    /// The raw instruction-memory words.
    pub fn words(&self) -> &[u16] {
        &self.words
    }

    /// Serialize to little-endian bytes (the on-wire format the PYNQ runtime
    /// streams to the FPGA in the original artifact).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.words.len() * 2);
        for w in &self.words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes
    }

    /// Deserialize from little-endian bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TruncatedWord`] if `bytes` has odd length.
    /// Word-level validation happens in [`EncodedProgram::decode`].
    pub fn from_bytes(bytes: &[u8]) -> Result<EncodedProgram, DecodeError> {
        if !bytes.len().is_multiple_of(2) {
            return Err(DecodeError::TruncatedWord);
        }
        let words = bytes.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect();
        Ok(EncodedProgram { words })
    }

    /// Decode back into a validated [`Program`] (the disassembler).
    ///
    /// # Errors
    ///
    /// Rejects reserved opcodes, character operands above 255 and
    /// control-flow targets past the end of the program.
    pub fn decode(&self) -> Result<Program, DecodeError> {
        let len = self.words.len();
        let mut instructions = Vec::with_capacity(len);
        for (address, word) in self.words.iter().enumerate() {
            instructions.push(decode_word(*word, address, len)?);
        }
        Ok(Program::from_instructions_unchecked(instructions))
    }
}

/// Encode one instruction into its 16-bit word.
pub fn encode_instruction(ins: Instruction) -> u16 {
    let opcode = ins.opcode() as u16;
    let operand = ins.operand();
    debug_assert!(operand <= MAX_OPERAND);
    (opcode << OPERAND_BITS) | operand
}

/// Decode one word, validating operands against the program length.
fn decode_word(word: u16, address: usize, len: usize) -> Result<Instruction, DecodeError> {
    let opcode_bits = (word >> OPERAND_BITS) as u8;
    let operand = word & MAX_OPERAND;
    let opcode = Opcode::from_bits(opcode_bits).expect("3-bit field is always a known opcode");
    let char_operand =
        || u8::try_from(operand).map_err(|_| DecodeError::OperandNotAChar { address, operand });
    let target_operand = || {
        if usize::from(operand) < len {
            Ok(operand)
        } else {
            Err(DecodeError::TargetOutOfRange { address, target: operand, len })
        }
    };
    Ok(match opcode {
        Opcode::Accept => Instruction::Accept,
        Opcode::AcceptPartial => Instruction::AcceptPartial,
        Opcode::AcceptPartialId => Instruction::AcceptPartialId(operand),
        Opcode::MatchAny => Instruction::MatchAny,
        Opcode::Match => Instruction::Match(char_operand()?),
        Opcode::NotMatch => Instruction::NotMatch(char_operand()?),
        Opcode::Split => Instruction::Split(target_operand()?),
        Opcode::Jump => Instruction::Jump(target_operand()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn sample() -> Program {
        Program::from_instructions(vec![
            Instruction::Split(3),
            Instruction::MatchAny,
            Instruction::Jump(0),
            Instruction::Match(b'a'),
            Instruction::NotMatch(b'b'),
            Instruction::Accept,
            Instruction::AcceptPartial,
        ])
        .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let enc = EncodedProgram::from_program(&p);
        assert_eq!(enc.decode().unwrap(), p);
    }

    #[test]
    fn byte_roundtrip() {
        let p = sample();
        let enc = EncodedProgram::from_program(&p);
        let bytes = enc.to_bytes();
        assert_eq!(bytes.len(), p.len() * 2);
        let back = EncodedProgram::from_bytes(&bytes).unwrap();
        assert_eq!(back, enc);
    }

    #[test]
    fn odd_byte_stream_is_rejected() {
        assert_eq!(EncodedProgram::from_bytes(&[0x01]), Err(DecodeError::TruncatedWord));
    }

    #[test]
    fn word_layout_matches_spec() {
        // MATCH 'a' = opcode 2 in the top 3 bits, 0x61 in the low 13.
        assert_eq!(encode_instruction(Instruction::Match(b'a')), (2 << 13) | 0x61);
        // SPLIT 3 = opcode 1.
        assert_eq!(encode_instruction(Instruction::Split(3)), (1 << 13) | 3);
        assert_eq!(encode_instruction(Instruction::Accept), 0);
    }

    #[test]
    fn accept_id_roundtrips() {
        let p = Program::from_instructions(vec![
            Instruction::Match(b'a'),
            Instruction::AcceptPartialId(42),
        ])
        .unwrap();
        let enc = EncodedProgram::from_program(&p);
        assert_eq!(enc.words()[1], (4 << 13) | 42);
        assert_eq!(enc.decode().unwrap(), p);
    }

    #[test]
    fn bad_char_operand_rejected() {
        let enc = EncodedProgram { words: vec![(2 << 13) | 300] };
        assert!(matches!(
            enc.decode(),
            Err(DecodeError::OperandNotAChar { address: 0, operand: 300 })
        ));
    }

    #[test]
    fn out_of_range_target_rejected() {
        let enc = EncodedProgram { words: vec![(3 << 13) | 7] };
        assert!(matches!(
            enc.decode(),
            Err(DecodeError::TargetOutOfRange { target: 7, len: 1, .. })
        ));
    }
}
